#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

CI publishes BENCH_*.json per push; this closes the loop by diffing the
current run against the artifact from the last successful main run:

    bench_compare.py baseline.json current.json \
        --threshold 0.15 \
        --counter hit_rate:higher --counter warm_ms:lower

Rules
-----
* real_time is compared for every benchmark name present in both files
  (lower is better). A benchmark missing from either side is reported but
  never fails the run (benches come and go across PRs).
* --counter NAME:higher|lower tracks a user counter in the same way;
  counters absent from a benchmark are skipped.
* A tracked value regressing by more than --threshold (relative) fails
  with exit 1. Baseline values of 0 are skipped for relative comparison
  (a 0 -> x change has no meaningful ratio; it is reported as info).
* Shared CI runners are noisy: --threshold is deliberately generous, and
  the job should treat this as a tripwire, not a microbenchmark oracle.

Exit status: 0 ok / nothing comparable, 1 regression, 2 usage or parse
error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    benches = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name")
        # Skip aggregate rows (mean/median/stddev of repetitions); raw
        # iterations carry run_type "iteration" (or no run_type at all in
        # older formats).
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if name:
            benches[name] = bench
    return benches


def parse_counter_spec(spec):
    name, sep, direction = spec.partition(":")
    if not sep or direction not in ("higher", "lower") or not name:
        print(f"bench_compare: bad --counter '{spec}' "
              "(want NAME:higher or NAME:lower)", file=sys.stderr)
        sys.exit(2)
    return name, direction


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails (default 0.15)")
    parser.add_argument("--counter", action="append", default=[],
                        metavar="NAME:higher|lower",
                        help="also track this user counter; repeatable")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    counters = [parse_counter_spec(spec) for spec in args.counter]

    regressions = []
    compared = 0

    def check(bench_name, metric, base_value, cur_value, better):
        nonlocal compared
        if base_value is None or cur_value is None:
            return
        try:
            base_value = float(base_value)
            cur_value = float(cur_value)
        except (TypeError, ValueError):
            return
        if base_value == 0:
            print(f"  info {bench_name} {metric}: baseline 0, "
                  f"now {cur_value:g} (not compared)")
            return
        compared += 1
        if better == "lower":
            change = (cur_value - base_value) / base_value
        else:
            change = (base_value - cur_value) / base_value
        marker = "ok  "
        if change > args.threshold:
            marker = "FAIL"
            regressions.append(
                f"{bench_name} {metric}: {base_value:g} -> {cur_value:g} "
                f"({change:+.1%} worse, threshold {args.threshold:.0%})")
        print(f"  {marker} {bench_name} {metric}: "
              f"{base_value:g} -> {cur_value:g} ({change:+.1%} "
              f"{'worse' if change > 0 else 'better'})")

    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"  new  {name} (no baseline)")
            continue
        if name not in current:
            print(f"  gone {name} (baseline only)")
            continue
        base, cur = baseline[name], current[name]
        check(name, "real_time", base.get("real_time"),
              cur.get("real_time"), "lower")
        for counter_name, direction in counters:
            check(name, counter_name, base.get(counter_name),
                  cur.get(counter_name), direction)

    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) over "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: {compared} tracked values within "
          f"{args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
