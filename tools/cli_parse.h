// Strict numeric flag parsing shared by the command-line tools.
//
// strtoul alone would quietly read "74z1" as 74 and clamp overflow to
// ULLONG_MAX — an operator typo that binds the wrong port or disables a
// configured TTL deserves an error, not a surprise. One definition here
// instead of per-tool variants that drift apart.

#ifndef TICL_TOOLS_CLI_PARSE_H_
#define TICL_TOOLS_CLI_PARSE_H_

#include <cerrno>
#include <cstdlib>
#include <string>

namespace ticl::tools {

/// Strict decimal parse: the whole token must be digits (no sign, no
/// whitespace, no trailing junk), must not overflow, and must fit under
/// `max`.
inline bool ParseUnsigned(const std::string& value, unsigned long long max,
                          unsigned long long* out) {
  if (value.empty() || value[0] < '0' || value[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  if (parsed > max) return false;
  *out = parsed;
  return true;
}

/// Strict floating-point parse: the whole token must be consumed.
/// Range/sanity checks (e.g. epsilon in [0, 1)) stay with the caller —
/// they are flag semantics, not syntax.
inline bool ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace ticl::tools

#endif  // TICL_TOOLS_CLI_PARSE_H_
