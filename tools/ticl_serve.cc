// ticl_serve — batch query serving over a saved snapshot.
//
// Loads a snapshot once, builds the QueryEngine (core index + LRU result
// cache + thread pool), then answers a JSONL stream of queries: one JSON
// object per input line, one JSON result object per output line, in input
// order. A throughput summary goes to stderr so stdout stays pure JSONL.
//
// Query lines (unknown fields ignored; all fields optional except k/r
// defaults match ticl_query):
//   {"id": "q1", "k": 4, "r": 5, "f": "sum"}
//   {"id": 2, "k": 4, "r": 3, "s": 20, "f": "avg", "non_overlapping": true}
//   {"k": 2, "r": 1, "f": "sum-surplus", "alpha": 0.5}
//
// Result lines:
//   {"id": "q1", "query": "TIC k=4 r=5 f=sum", "cached": false,
//    "elapsed_seconds": 0.0123,
//    "communities": [{"influence": 42.0, "members": [1, 2, 3]}]}
// or, for a malformed/invalid line:
//   {"id": "q1", "error": "...", "kind": "parse"}
//
// Examples:
//   ticl_query --generate standin:dblp --save-snapshot dblp.snap \
//       --snapshot-index
//   ticl_serve --snapshot dblp.snap --mmap --queries batch.jsonl --threads 8
//   cat batch.jsonl | ticl_serve --snapshot dblp.snap
//
// With --mmap the snapshot (format v2) is served zero-copy straight from
// the mapping, and an embedded core index skips the start-up
// decomposition entirely — cold start does no work proportional to the
// graph beyond one validation pass.
//
// Exit status: 0 on success, 1 on usage errors, 2 on IO errors,
// 3 if any result fails validation (library bug — please report),
// 4 if any query line was malformed or invalid (remaining lines are
// still answered).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/search.h"
#include "core/verification.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "util/timing.h"

#include "cli_parse.h"

namespace {

using ticl::tools::ParseUnsigned;

struct CliOptions {
  std::string snapshot_path;
  std::vector<std::string> delta_paths;  // applied via engine ApplyDelta
  bool mmap = false;
  std::string queries_path = "-";  // "-" = stdin
  unsigned threads = 0;            // 0 = hardware concurrency
  std::size_t cache_member_budget = 1u << 20;
  std::uint64_t cache_ttl_ms = 0;
  bool cache_partial = true;
  std::string solver = "auto";
  double epsilon = 0.1;
  unsigned repeat = 1;
  bool validate = true;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: ticl_serve --snapshot PATH [options]\n"
      "\n"
      "  --snapshot PATH   snapshot written by ticl_query --save-snapshot\n"
      "  --delta PATH      delta snapshot (ticl_query --apply-delta\n"
      "                    --save-snapshot) applied on top; may repeat, in\n"
      "                    chain order. The core index is maintained\n"
      "                    incrementally, not rebuilt\n"
      "  --mmap            serve the snapshot zero-copy via mmap (needs a\n"
      "                    v2 file; uses its embedded core index if any)\n"
      "  --queries PATH    JSONL query file, or '-' for stdin (default -)\n"
      "  --threads N       worker threads (default: hardware concurrency)\n"
      "  --cache N         LRU result-cache budget in cached community\n"
      "                    members (size-aware), 0 disables "
      "(default 1048576)\n"
      "  --cache-ttl-ms N  per-entry result-cache TTL in milliseconds;\n"
      "                    0 = cached answers never expire (default 0)\n"
      "  --no-partial-invalidation\n"
      "                    deltas clear the whole result cache instead of\n"
      "                    only the affected k-levels (kill-switch)\n"
      "  --solver NAME     auto|naive|improved|approx|exact|local-greedy|\n"
      "                    local-random|min-peel|max-components "
      "(default auto)\n"
      "  --epsilon X       approximation ratio for --solver approx\n"
      "  --repeat N        run the batch N times (cache warm-up demo)\n"
      "  --no-validate     skip per-result ValidateResult\n"
      "\n"
      "Query lines: {\"id\": ..., \"k\": 4, \"r\": 5, \"s\": 0,\n"
      "              \"f\": \"sum\", \"alpha\": 1.0, \"beta\": 1.0,\n"
      "              \"non_overlapping\": false}\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options,
               std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = "missing value for " + arg;
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    unsigned long long number = 0;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--snapshot") {
      if (!take(&options->snapshot_path)) return false;
    } else if (arg == "--delta") {
      if (!take(&value)) return false;
      options->delta_paths.push_back(value);
    } else if (arg == "--mmap") {
      options->mmap = true;
    } else if (arg == "--queries") {
      if (!take(&options->queries_path)) return false;
    } else if (arg == "--threads") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --threads: " + value;
        return false;
      }
      options->threads = static_cast<unsigned>(number);
    } else if (arg == "--cache") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --cache: " + value;
        return false;
      }
      options->cache_member_budget = number;
    } else if (arg == "--cache-ttl-ms") {
      if (!take(&value)) return false;
      // A typo'd TTL silently parsing as 0 would disable the staleness
      // bound the operator asked for.
      if (!ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --cache-ttl-ms: " + value;
        return false;
      }
      options->cache_ttl_ms = number;
    } else if (arg == "--no-partial-invalidation") {
      options->cache_partial = false;
    } else if (arg == "--solver") {
      if (!take(&options->solver)) return false;
    } else if (arg == "--epsilon") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseDouble(value, &options->epsilon)) {
        *error = "invalid --epsilon: " + value;
        return false;
      }
    } else if (arg == "--repeat") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, 0xFFFFFFFFull, &number) || number == 0) {
        *error = "--repeat must be a positive integer";
        return false;
      }
      options->repeat = static_cast<unsigned>(number);
    } else if (arg == "--no-validate") {
      options->validate = false;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  return true;
}

// JSON parsing and formatting live in src/serve/protocol.{h,cc}, shared
// byte-for-byte with the network front end (tools/ticl_served) — the
// batch and streaming paths speak the same language by construction.

struct PendingQuery {
  std::string id_json;
  ticl::Query query;
  std::future<ticl::EngineResponse> future;
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::fprintf(stderr, "error: %s\n\n", error.c_str());
    PrintUsage();
    return 1;
  }
  if (options.help || argc == 1) {
    PrintUsage();
    return 0;
  }
  if (options.snapshot_path.empty()) {
    std::fprintf(stderr, "error: --snapshot is required\n\n");
    PrintUsage();
    return 1;
  }

  ticl::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.cache_member_budget = options.cache_member_budget;
  engine_options.cache_ttl_ms = options.cache_ttl_ms;
  engine_options.cache_partial_invalidation = options.cache_partial;
  engine_options.solve.epsilon = options.epsilon;
  if (!ticl::ParseSolverKind(options.solver, &engine_options.solve.solver)) {
    std::fprintf(stderr, "error: unknown solver: %s\n", options.solver.c_str());
    return 1;
  }
  const std::string options_problem =
      ticl::ValidateSolveOptions(engine_options.solve);
  if (!options_problem.empty()) {
    std::fprintf(stderr, "error: %s\n", options_problem.c_str());
    return 1;
  }

  ticl::WallTimer start_timer;
  const auto engine = ticl::QueryEngine::OpenSnapshot(
      options.snapshot_path,
      options.mmap ? ticl::SnapshotLoadMode::kMmap
                   : ticl::SnapshotLoadMode::kCopy,
      engine_options, &error);
  if (engine == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // Delta chain: each file names its parent by fingerprint, so a
  // mis-ordered chain fails with a chain error before any mutation;
  // ApplyDelta maintains the core index incrementally instead of
  // re-running the decomposition.
  for (const std::string& delta_path : options.delta_paths) {
    if (!engine->ApplyDeltaSnapshotFile(delta_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  const double start_seconds = start_timer.ElapsedSeconds();
  std::fprintf(stderr,
               "opened %s in %.3fs (n=%u m=%llu, %s, core index "
               "(k_max=%u) %s), %u worker threads\n",
               options.snapshot_path.c_str(), start_seconds,
               engine->graph().num_vertices(),
               static_cast<unsigned long long>(engine->graph().num_edges()),
               engine->snapshot_mapped() ? "mmap zero-copy" : "copy-load",
               engine->core_index().degeneracy(),
               engine->index_from_snapshot() ? "from snapshot" : "rebuilt",
               engine->num_threads());

  std::FILE* in = stdin;
  if (options.queries_path != "-") {
    in = std::fopen(options.queries_path.c_str(), "r");
    if (in == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   options.queries_path.c_str());
      return 2;
    }
  }

  // Read the whole batch up front (it is line-oriented and tiny relative
  // to the graph) so submission saturates the pool immediately.
  std::vector<std::string> lines;
  {
    std::string line;
    int ch;
    while ((ch = std::fgetc(in)) != EOF) {
      if (ch == '\n') {
        lines.push_back(std::move(line));
        line.clear();
      } else {
        line.push_back(static_cast<char>(ch));
      }
    }
    if (!line.empty()) lines.push_back(std::move(line));
  }
  if (in != stdin) std::fclose(in);

  bool had_bad_input = false;
  bool had_validation_failure = false;
  std::size_t answered = 0;
  ticl::WallTimer batch_timer;
  for (unsigned round = 0; round < options.repeat; ++round) {
    std::vector<PendingQuery> pending;
    pending.reserve(lines.size());
    std::size_t line_number = 0;
    for (const std::string& line : lines) {
      ++line_number;
      // Skip blanks and comment lines.
      std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;

      PendingQuery entry;
      if (!ticl::ParseQueryLine(line, line_number, &entry.query,
                                &entry.id_json, &error)) {
        std::fputs(ticl::FormatErrorLine(entry.id_json, error,
                                         ticl::kErrorKindParse)
                       .c_str(),
                   stdout);
        had_bad_input = true;
        continue;
      }
      const std::string problem = engine->Validate(entry.query);
      if (!problem.empty()) {
        std::fputs(ticl::FormatErrorLine(entry.id_json,
                                         "invalid query: " + problem,
                                         ticl::kErrorKindInvalid)
                       .c_str(),
                   stdout);
        had_bad_input = true;
        continue;
      }
      entry.future = engine->Submit(entry.query);
      pending.push_back(std::move(entry));
    }

    for (PendingQuery& entry : pending) {
      const ticl::EngineResponse response = entry.future.get();
      std::fputs(ticl::FormatResultLine(entry.id_json, entry.query,
                                        *response.result, response.cache_hit)
                     .c_str(),
                 stdout);
      ++answered;
      if (options.validate) {
        const std::string problem = ticl::ValidateResult(
            engine->graph(), entry.query, *response.result);
        if (!problem.empty()) {
          std::fprintf(stderr, "validation FAILED (id %s): %s\n",
                       entry.id_json.c_str(), problem.c_str());
          had_validation_failure = true;
        }
      }
    }
  }
  const double batch_seconds = batch_timer.ElapsedSeconds();

  const ticl::EngineStats stats = engine->stats();
  std::fprintf(stderr,
               "%zu queries in %.3fs (%.1f queries/s), cache %llu hits "
               "(%llu negative) / %llu misses / %llu coalesced / %llu "
               "uncacheable / %llu expired, %llu deltas applied (%llu "
               "entries kept / %llu evicted by partial invalidation)\n",
               answered, batch_seconds,
               batch_seconds > 0.0 ? answered / batch_seconds : 0.0,
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_negative_hits),
               static_cast<unsigned long long>(stats.cache_misses),
               static_cast<unsigned long long>(stats.cache_coalesced),
               static_cast<unsigned long long>(stats.cache_uncacheable),
               static_cast<unsigned long long>(stats.cache_expired),
               static_cast<unsigned long long>(stats.deltas_applied),
               static_cast<unsigned long long>(stats.cache_partial_kept),
               static_cast<unsigned long long>(stats.cache_partial_evicted));

  if (had_validation_failure) return 3;
  if (had_bad_input) return 4;
  return 0;
}
