// ticl_query — command-line front end for the library.
//
// Load (or generate) a weighted graph, run one top-r influential community
// query, print the results as text or JSON, and validate them.
//
// Examples:
//   ticl_query --graph g.txt --weight-scheme pagerank --k 4 --r 5 --f sum
//   ticl_query --generate standin:dblp --k 4 --r 3 --s 20 --f avg
//              --non-overlapping --output json
//   ticl_query --graph g.txt --weights w.txt --k 2 --r 10 --f min
//
// Snapshot workflow (generate/weight once, query many times — see also
// ticl_serve for batch serving):
//   ticl_query --generate standin:dblp --save-snapshot dblp.snap
//   ticl_query --snapshot dblp.snap --k 4 --r 5 --f sum
//
// Dynamic-graph workflow (delta snapshots; the graph evolves without full
// rewrites):
//   ticl_query --snapshot dblp.snap --apply-delta edits.txt \
//       --save-snapshot dblp.d1.snap      # child records (parent fp, delta)
//   ticl_query --snapshot dblp.snap --delta dblp.d1.snap --k 4 --r 5 --f sum
//
// Exit status: 0 on success, 1 on usage errors, 2 on IO errors,
// 3 if result validation fails (library bug — please report).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "gen/dataset_suite.h"
#include "graph/edge_list_io.h"
#include "graph/graph_delta.h"
#include "serve/core_index.h"
#include "serve/mapped_snapshot.h"
#include "serve/snapshot.h"

#include "cli_parse.h"

namespace {

struct CliOptions {
  std::string graph_path;
  std::string weights_path;
  std::string weight_scheme = "pagerank";
  std::string generate;  // "standin:<name>[@scale]" or "chung-lu:n,deg,gamma"
  std::string snapshot_path;       // load graph + weights from a snapshot
  std::vector<std::string> delta_paths;  // delta chain replayed onto it
  std::string apply_delta_path;    // text edit list applied before querying
  bool mmap = false;               // zero-copy view instead of a copy-load
  std::string save_snapshot_path;  // write the prepared graph and exit*
  bool snapshot_index = false;     // embed the CoreIndex when saving
  std::uint32_t snapshot_format = ticl::kSnapshotFormatVersion;
  std::uint64_t seed = 0;
  ticl::Query query;
  std::string solver = "auto";
  double epsilon = 0.1;
  double alpha = 1.0;
  double beta = 1.0;
  std::string aggregation = "sum";
  unsigned threads = 1;
  std::string output = "text";
  bool help = false;
  /// *unless a query/solver flag was also given, in which case the query
  /// still runs after the save.
  bool query_requested = false;
};

void PrintUsage() {
  std::printf(
      "usage: ticl_query (--graph PATH | --generate SPEC) [options]\n"
      "\n"
      "input:\n"
      "  --graph PATH          SNAP-style edge list ('u v' per line)\n"
      "  --weights PATH        'vertex weight' per line (optional)\n"
      "  --weight-scheme S     pagerank|degree|uniform|lognormal "
      "(default pagerank;\n"
      "                        used when --weights is absent)\n"
      "  --generate SPEC       standin:<email|dblp|youtube|orkut|"
      "livejournal|friendster>[@scale]\n"
      "                        or chung-lu:<n>,<avg_degree>,<gamma>\n"
      "  --snapshot PATH       load graph + weights from a binary snapshot\n"
      "  --delta PATH          replay a delta snapshot onto --snapshot (may\n"
      "                        repeat; applied in order, parent fingerprints\n"
      "                        are verified)\n"
      "  --apply-delta PATH    apply a text edit list ('+ u v' insert,\n"
      "                        '- u v' delete, 'w v X' reweight) to the\n"
      "                        loaded graph before querying; with\n"
      "                        --save-snapshot the child is written as a\n"
      "                        delta snapshot recording (parent fingerprint,\n"
      "                        delta) instead of a full rewrite\n"
      "  --mmap                with --snapshot: zero-copy mmap view (needs a\n"
      "                        v2 file; uses its core index when embedded)\n"
      "  --save-snapshot PATH  write the prepared graph (weights included)\n"
      "                        as a snapshot; exits after saving unless a\n"
      "                        query flag is also given\n"
      "  --snapshot-index      embed the precomputed CoreIndex in the saved\n"
      "                        snapshot (v2 only) so serving skips the\n"
      "                        decomposition\n"
      "  --snapshot-format N   snapshot version to write: 2 (default) or 1\n"
      "  --seed N              seed for random weight schemes/generators\n"
      "\n"
      "query:\n"
      "  --k N                 degree constraint (default 1)\n"
      "  --r N                 number of communities (default 1)\n"
      "  --s N                 size constraint (default: unconstrained)\n"
      "  --f NAME              min|max|sum|sum-surplus|avg|weight-density|"
      "balanced-density\n"
      "  --alpha X             sum-surplus parameter (default 1)\n"
      "  --beta X              weight-density parameter (default 1)\n"
      "  --non-overlapping     solve TONIC (disjoint results)\n"
      "\n"
      "solver:\n"
      "  --solver NAME         auto|naive|improved|approx|exact|local-greedy|"
      "local-random|\n"
      "                        min-peel|max-components (default auto)\n"
      "  --epsilon X           approximation ratio for --solver approx\n"
      "  --threads N           parallel local search workers\n"
      "\n"
      "output:\n"
      "  --output FMT          text|json (default text)\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options,
               std::string* error) {
  const auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](std::string* out) {
      const char* value = need_value(i);
      if (value == nullptr) {
        *error = "missing value for " + arg;
        return false;
      }
      *out = value;
      ++i;
      return true;
    };
    std::string value;
    unsigned long long number = 0;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--graph") {
      if (!take(&options->graph_path)) return false;
    } else if (arg == "--weights") {
      if (!take(&options->weights_path)) return false;
    } else if (arg == "--weight-scheme") {
      if (!take(&options->weight_scheme)) return false;
    } else if (arg == "--generate") {
      if (!take(&options->generate)) return false;
    } else if (arg == "--snapshot") {
      if (!take(&options->snapshot_path)) return false;
    } else if (arg == "--delta") {
      if (!take(&value)) return false;
      options->delta_paths.push_back(value);
    } else if (arg == "--apply-delta") {
      if (!take(&options->apply_delta_path)) return false;
    } else if (arg == "--mmap") {
      options->mmap = true;
    } else if (arg == "--save-snapshot") {
      if (!take(&options->save_snapshot_path)) return false;
    } else if (arg == "--snapshot-index") {
      options->snapshot_index = true;
    } else if (arg == "--snapshot-format") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --snapshot-format: " + value;
        return false;
      }
      options->snapshot_format = static_cast<std::uint32_t>(number);
    } else if (arg == "--seed") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --seed: " + value;
        return false;
      }
      options->seed = number;
    } else if (arg == "--k") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --k: " + value;
        return false;
      }
      options->query.k = static_cast<ticl::VertexId>(number);
      options->query_requested = true;
    } else if (arg == "--r") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --r: " + value;
        return false;
      }
      options->query.r = static_cast<std::uint32_t>(number);
      options->query_requested = true;
    } else if (arg == "--s") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --s: " + value;
        return false;
      }
      options->query.size_limit = static_cast<ticl::VertexId>(number);
      options->query_requested = true;
    } else if (arg == "--f") {
      if (!take(&options->aggregation)) return false;
      options->query_requested = true;
    } else if (arg == "--alpha") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseDouble(value, &options->alpha)) {
        *error = "invalid --alpha: " + value;
        return false;
      }
    } else if (arg == "--beta") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseDouble(value, &options->beta)) {
        *error = "invalid --beta: " + value;
        return false;
      }
    } else if (arg == "--non-overlapping") {
      options->query.non_overlapping = true;
      options->query_requested = true;
    } else if (arg == "--solver") {
      if (!take(&options->solver)) return false;
      options->query_requested = true;
    } else if (arg == "--epsilon") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseDouble(value, &options->epsilon)) {
        *error = "invalid --epsilon: " + value;
        return false;
      }
    } else if (arg == "--threads") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --threads: " + value;
        return false;
      }
      options->threads = static_cast<unsigned>(number);
    } else if (arg == "--output") {
      if (!take(&options->output)) return false;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  return true;
}

bool ResolveAggregation(const CliOptions& options, ticl::AggregationSpec* spec,
                        std::string* error) {
  const std::string& name = options.aggregation;
  if (name == "min") {
    *spec = ticl::AggregationSpec::Min();
  } else if (name == "max") {
    *spec = ticl::AggregationSpec::Max();
  } else if (name == "sum") {
    *spec = ticl::AggregationSpec::Sum();
  } else if (name == "sum-surplus") {
    *spec = ticl::AggregationSpec::SumSurplus(options.alpha);
  } else if (name == "avg") {
    *spec = ticl::AggregationSpec::Avg();
  } else if (name == "weight-density") {
    *spec = ticl::AggregationSpec::WeightDensity(options.beta);
  } else if (name == "balanced-density") {
    *spec = ticl::AggregationSpec::BalancedDensity();
  } else {
    *error = "unknown aggregation: " + name;
    return false;
  }
  return true;
}

bool ResolveSolver(const std::string& name, ticl::SolverKind* kind,
                   std::string* error) {
  if (ticl::ParseSolverKind(name, kind)) return true;
  *error = "unknown solver: " + name;
  return false;
}

bool BuildGraph(const CliOptions& options, ticl::Graph* g,
                std::string* error) {
  if (!options.snapshot_path.empty()) {
    if (!options.generate.empty() || !options.graph_path.empty()) {
      *error = "--snapshot excludes --graph and --generate";
      return false;
    }
    return ticl::LoadSnapshotChain(options.snapshot_path, options.delta_paths,
                                   g, error);
  }
  if (!options.delta_paths.empty()) {
    *error = "--delta requires --snapshot (deltas replay onto a base "
             "snapshot)";
    return false;
  }
  if (!options.generate.empty()) {
    const std::string& spec = options.generate;
    if (spec.rfind("standin:", 0) == 0) {
      std::string name = spec.substr(8);
      double scale = 1.0;
      const std::size_t at = name.find('@');
      if (at != std::string::npos) {
        scale = std::strtod(name.c_str() + at + 1, nullptr);
        if (scale <= 0.0) {
          *error = "bad stand-in scale in " + spec;
          return false;
        }
        name = name.substr(0, at);
      }
      for (const ticl::StandIn dataset : ticl::AllStandIns()) {
        if (ticl::StandInName(dataset) == name) {
          *g = ticl::GenerateStandIn(dataset, scale);
          return true;
        }
      }
      *error = "unknown stand-in dataset: " + name;
      return false;
    }
    if (spec.rfind("chung-lu:", 0) == 0) {
      ticl::ChungLuOptions cl;
      unsigned long n = 0;
      double deg = 0.0;
      double gamma = 0.0;
      if (std::sscanf(spec.c_str() + 9, "%lu,%lf,%lf", &n, &deg, &gamma) !=
          3) {
        *error = "expected chung-lu:<n>,<avg_degree>,<gamma>";
        return false;
      }
      cl.num_vertices = static_cast<ticl::VertexId>(n);
      cl.target_average_degree = deg;
      cl.gamma = gamma;
      cl.seed = options.seed;
      *g = ticl::GenerateChungLu(cl);
      return true;
    }
    *error = "unknown --generate spec: " + spec;
    return false;
  }
  if (options.graph_path.empty()) {
    *error = "one of --graph, --generate or --snapshot is required";
    return false;
  }
  return ticl::LoadEdgeList(options.graph_path, g, error);
}

bool InstallWeights(const CliOptions& options, ticl::Graph* g,
                    std::string* error) {
  if (!options.weights_path.empty()) {
    return ticl::LoadWeights(options.weights_path, g, error);
  }
  // Snapshot weights win unless explicitly overridden with --weights.
  if (g->has_weights()) return true;
  const std::string& scheme = options.weight_scheme;
  if (scheme == "pagerank") {
    ticl::AssignWeights(g, ticl::WeightScheme::kPageRank, options.seed);
  } else if (scheme == "degree") {
    ticl::AssignWeights(g, ticl::WeightScheme::kDegree, options.seed);
  } else if (scheme == "uniform") {
    ticl::AssignWeights(g, ticl::WeightScheme::kUniform, options.seed);
  } else if (scheme == "lognormal") {
    ticl::AssignWeights(g, ticl::WeightScheme::kLogNormal, options.seed);
  } else {
    *error = "unknown weight scheme: " + scheme;
    return false;
  }
  return true;
}

void PrintText(const ticl::Query& query, const ticl::SearchResult& result) {
  std::printf("%s -> %zu communities in %.2f ms\n",
              ticl::QueryToString(query).c_str(), result.communities.size(),
              result.stats.elapsed_seconds * 1e3);
  for (std::size_t i = 0; i < result.communities.size(); ++i) {
    // Cap the listing; use --output json for complete member lists.
    std::printf("#%zu %s\n", i + 1,
                ticl::CommunityToString(result.communities[i], 32).c_str());
  }
}

void PrintJson(const ticl::Query& query, const ticl::SearchResult& result) {
  std::printf("{\n  \"query\": \"%s\",\n  \"elapsed_seconds\": %.6f,\n",
              ticl::QueryToString(query).c_str(),
              result.stats.elapsed_seconds);
  std::printf("  \"communities\": [\n");
  for (std::size_t i = 0; i < result.communities.size(); ++i) {
    const ticl::Community& c = result.communities[i];
    std::printf("    {\"influence\": %.17g, \"members\": [", c.influence);
    for (std::size_t j = 0; j < c.members.size(); ++j) {
      std::printf("%s%u", j == 0 ? "" : ", ", c.members[j]);
    }
    std::printf("]}%s\n", i + 1 < result.communities.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::fprintf(stderr, "error: %s\n\n", error.c_str());
    PrintUsage();
    return 1;
  }
  if (options.help || argc == 1) {
    PrintUsage();
    return 0;
  }
  if (!ResolveAggregation(options, &options.query.aggregation, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  ticl::SolveOptions solve_options;
  if (!ResolveSolver(options.solver, &solve_options.solver, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  solve_options.epsilon = options.epsilon;
  solve_options.local.num_threads = options.threads;
  const std::string options_problem =
      ticl::ValidateSolveOptions(solve_options);
  if (!options_problem.empty()) {
    std::fprintf(stderr, "error: %s\n", options_problem.c_str());
    return 1;
  }

  ticl::Graph graph;
  std::unique_ptr<ticl::MappedSnapshot> mapped;
  const ticl::Graph* query_graph = &graph;
  if (options.mmap) {
    if (options.snapshot_path.empty()) {
      std::fprintf(stderr, "error: --mmap requires --snapshot\n");
      return 1;
    }
    if (!options.generate.empty() || !options.graph_path.empty()) {
      std::fprintf(stderr, "error: --snapshot excludes --graph and "
                           "--generate\n");
      return 1;
    }
    if (!options.weights_path.empty()) {
      std::fprintf(stderr,
                   "error: --mmap serves the snapshot read-only; --weights "
                   "cannot be applied\n");
      return 1;
    }
    if (!options.delta_paths.empty() || !options.apply_delta_path.empty()) {
      std::fprintf(stderr,
                   "error: --mmap serves the snapshot read-only; drop --mmap "
                   "to apply deltas (the result is heap-owned anyway)\n");
      return 1;
    }
    mapped = ticl::MappedSnapshot::Open(options.snapshot_path, &error);
    if (mapped == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    if (!mapped->graph().has_weights()) {
      std::fprintf(stderr,
                   "error: snapshot has no vertex weights; re-save it from "
                   "a weighted graph\n");
      return 2;
    }
    query_graph = &mapped->graph();
    if (mapped->has_core_index()) {
      solve_options.core_index = &mapped->core_index();
    }
  } else if (!BuildGraph(options, &graph, &error) ||
             !InstallWeights(options, &graph, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  // Text delta: validated against (and recorded as a child of) the graph
  // as loaded, then applied so queries see the post-edit graph.
  ticl::GraphDelta text_delta;
  ticl::GraphFingerprint delta_parent;
  const bool have_text_delta = !options.apply_delta_path.empty();
  if (have_text_delta) {
    if (!ticl::LoadDeltaText(options.apply_delta_path, &text_delta, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    const std::string problem = ticl::ValidateDelta(graph, text_delta);
    if (!problem.empty()) {
      std::fprintf(stderr, "error: delta %s does not apply: %s\n",
                   options.apply_delta_path.c_str(), problem.c_str());
      return 1;
    }
    delta_parent = graph.fingerprint();
    graph = ticl::ApplyValidatedDelta(graph, text_delta);
  }

  if (!options.save_snapshot_path.empty()) {
    if (have_text_delta) {
      // Child release: record (parent fingerprint, delta), kilobytes
      // instead of a full CSR rewrite.
      if (options.snapshot_index || options.snapshot_format != 2) {
        std::fprintf(stderr,
                     "error: a delta snapshot carries only edits; "
                     "--snapshot-index / --snapshot-format do not apply\n");
        return 1;
      }
      if (!ticl::SaveDeltaSnapshot(options.save_snapshot_path, text_delta,
                                   delta_parent, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::fprintf(stderr,
                   "saved delta snapshot %s (+%zu -%zu ~%zu edits, parent "
                   "n=%llu)\n",
                   options.save_snapshot_path.c_str(),
                   text_delta.insert_edges.size(),
                   text_delta.delete_edges.size(),
                   text_delta.weight_updates.size(),
                   static_cast<unsigned long long>(
                       delta_parent.num_vertices));
      if (!options.query_requested) return 0;
    } else {
      ticl::SaveSnapshotOptions save_options;
      save_options.version = options.snapshot_format;
      std::unique_ptr<ticl::CoreIndex> built_index;
      if (options.snapshot_index) {
        if (mapped != nullptr && mapped->has_core_index()) {
          save_options.core_index = &mapped->core_index();
        } else {
          built_index = std::make_unique<ticl::CoreIndex>(*query_graph);
          save_options.core_index = built_index.get();
        }
      }
      if (!ticl::SaveSnapshot(options.save_snapshot_path, *query_graph,
                              save_options, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::fprintf(stderr, "saved snapshot %s (v%u, n=%u m=%llu%s%s)\n",
                   options.save_snapshot_path.c_str(),
                   options.snapshot_format, query_graph->num_vertices(),
                   static_cast<unsigned long long>(query_graph->num_edges()),
                   query_graph->has_weights() ? ", weighted" : "",
                   options.snapshot_index ? ", core index embedded" : "");
      if (!options.query_requested) return 0;
    }
  }

  const std::string query_problem =
      ticl::ValidateQuery(options.query, *query_graph);
  if (!query_problem.empty()) {
    std::fprintf(stderr, "error: invalid query: %s\n", query_problem.c_str());
    return 1;
  }

  const ticl::SearchResult result =
      ticl::Solve(*query_graph, options.query, solve_options);

  if (options.output == "json") {
    PrintJson(options.query, result);
  } else {
    PrintText(options.query, result);
  }

  const std::string problem =
      ticl::ValidateResult(*query_graph, options.query, result);
  if (!problem.empty()) {
    std::fprintf(stderr, "validation FAILED: %s\n", problem.c_str());
    return 3;
  }
  return 0;
}
