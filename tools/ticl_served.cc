// ticl_served — streaming network front end over a saved snapshot.
//
// Loads a snapshot once, builds the QueryEngine (core index + LRU result
// cache + thread pool), then listens on a TCP port and answers
// newline-delimited JSON requests: the exact same wire protocol as
// tools/ticl_serve's batch pipe (both are formatted and parsed by
// src/serve/protocol.{h,cc}, so the two front ends cannot drift). See
// src/serve/server.h for the event-loop, backpressure and admission
// control mechanics.
//
//   # one shell
//   ticl_query --generate standin:dblp --save-snapshot dblp.snap \
//       --snapshot-index
//   ticl_served --snapshot dblp.snap --mmap --port 7421 --threads 8
//
//   # another shell (any newline-JSON client works; nc is enough)
//   printf '%s\n' '{"id": 1, "k": 4, "r": 5, "f": "sum"}' \
//     | nc -N 127.0.0.1 7421
//
// Admin commands over the same connection (disable with --no-admin):
//   {"id": "a1", "admin": "apply_delta", "path": "dblp.d1.snap"}
//   {"id": "a2", "admin": "stats"}
//   {"id": "a3", "admin": "drain"}     # graceful shutdown, like SIGTERM
//   {"id": "a4", "admin": "ping"}
//
// SIGTERM/SIGINT start a graceful drain: the listener closes, in-flight
// queries finish, every reply is flushed, then the process exits 0.
//
// Exit status: 0 on clean drain, 1 on usage errors, 2 on IO/bind errors.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/search.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/timing.h"

#include "cli_parse.h"

namespace {

using ticl::tools::ParseUnsigned;

struct CliOptions {
  std::string snapshot_path;
  std::vector<std::string> delta_paths;
  bool mmap = false;
  std::string bind_address = "127.0.0.1";
  unsigned port = 7421;
  unsigned threads = 0;
  std::size_t cache_member_budget = 1u << 20;
  std::uint64_t cache_ttl_ms = 0;
  bool cache_partial = true;
  std::string solver = "auto";
  double epsilon = 0.1;
  std::size_t max_in_flight = 256;
  std::size_t max_in_flight_per_conn = 0;
  std::size_t max_connections = 1024;
  bool admin = true;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: ticl_served --snapshot PATH [options]\n"
      "\n"
      "  --snapshot PATH    snapshot written by ticl_query --save-snapshot\n"
      "  --delta PATH       delta snapshot applied on top at start-up; may\n"
      "                     repeat, in chain order (later deltas can also\n"
      "                     be applied live via the apply_delta admin\n"
      "                     command)\n"
      "  --mmap             serve the snapshot zero-copy via mmap\n"
      "  --bind ADDR        numeric IPv4 address to bind "
      "(default 127.0.0.1)\n"
      "  --port N           TCP port; 0 picks an ephemeral port "
      "(default 7421)\n"
      "  --threads N        worker threads (default: hardware "
      "concurrency)\n"
      "  --cache N          LRU result-cache budget in cached community\n"
      "                     members, 0 disables (default 1048576)\n"
      "  --cache-ttl-ms N   per-entry result-cache TTL in milliseconds;\n"
      "                     0 = cached answers never expire (default 0)\n"
      "  --no-partial-invalidation\n"
      "                     deltas clear the whole result cache instead\n"
      "                     of only the affected k-levels (kill-switch)\n"
      "  --solver NAME      auto|naive|improved|approx|exact|local-greedy|\n"
      "                     local-random|min-peel|max-components "
      "(default auto)\n"
      "  --epsilon X        approximation ratio for --solver approx\n"
      "  --max-in-flight N  admission control: queries inside the engine\n"
      "                     at once; excess load is rejected with a JSON\n"
      "                     error (default 256)\n"
      "  --max-in-flight-per-conn N\n"
      "                     fairness cap per connection; 0 = auto\n"
      "                     (max-in-flight / 4, min 1) so one chatty\n"
      "                     client cannot claim every slot (default 0)\n"
      "  --max-connections N  accepted sockets beyond this are closed\n"
      "                     (default 1024)\n"
      "  --no-admin         disable apply_delta/stats/drain/ping admin\n"
      "                     commands\n"
      "\n"
      "Wire protocol: one JSON request per line in, one JSON reply per\n"
      "line out — identical to ticl_serve's batch pipe. See README.\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options,
               std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = "missing value for " + arg;
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    unsigned long long number = 0;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "--snapshot") {
      if (!take(&options->snapshot_path)) return false;
    } else if (arg == "--delta") {
      if (!take(&value)) return false;
      options->delta_paths.push_back(value);
    } else if (arg == "--mmap") {
      options->mmap = true;
    } else if (arg == "--bind") {
      if (!take(&options->bind_address)) return false;
    } else if (arg == "--port") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, 65535, &number)) {
        *error = "invalid --port: " + value;
        return false;
      }
      options->port = static_cast<unsigned>(number);
    } else if (arg == "--threads") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, 0xFFFFFFFFull, &number)) {
        *error = "invalid --threads: " + value;
        return false;
      }
      options->threads = static_cast<unsigned>(number);
    } else if (arg == "--cache") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --cache: " + value;
        return false;
      }
      options->cache_member_budget = number;
    } else if (arg == "--cache-ttl-ms") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --cache-ttl-ms: " + value;
        return false;
      }
      options->cache_ttl_ms = number;
    } else if (arg == "--no-partial-invalidation") {
      options->cache_partial = false;
    } else if (arg == "--solver") {
      if (!take(&options->solver)) return false;
    } else if (arg == "--epsilon") {
      if (!take(&value)) return false;
      if (!ticl::tools::ParseDouble(value, &options->epsilon)) {
        *error = "invalid --epsilon: " + value;
        return false;
      }
    } else if (arg == "--max-in-flight") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number) || number == 0) {
        *error = "--max-in-flight must be a positive integer";
        return false;
      }
      options->max_in_flight = number;
    } else if (arg == "--max-in-flight-per-conn") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number)) {
        *error = "invalid --max-in-flight-per-conn: " + value;
        return false;
      }
      options->max_in_flight_per_conn = number;
    } else if (arg == "--max-connections") {
      if (!take(&value)) return false;
      if (!ParseUnsigned(value, ~0ull, &number) || number == 0) {
        *error = "--max-connections must be a positive integer";
        return false;
      }
      options->max_connections = number;
    } else if (arg == "--no-admin") {
      options->admin = false;
    } else {
      *error = "unknown argument: " + arg;
      return false;
    }
  }
  return true;
}

// Signal handlers may only touch this pointer and call RequestDrain
// (atomic flag + eventfd write, both async-signal-safe). main() nulls
// the pointer the moment Serve() returns, before the Server object is
// destroyed, so a late second SIGTERM during engine teardown cannot
// touch a dead object.
std::atomic<ticl::Server*> g_server{nullptr};

void HandleSignal(int) {
  ticl::Server* server = g_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::fprintf(stderr, "error: %s\n\n", error.c_str());
    PrintUsage();
    return 1;
  }
  if (options.help || argc == 1) {
    PrintUsage();
    return 0;
  }
  if (options.snapshot_path.empty()) {
    std::fprintf(stderr, "error: --snapshot is required\n\n");
    PrintUsage();
    return 1;
  }

  ticl::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.cache_member_budget = options.cache_member_budget;
  engine_options.cache_ttl_ms = options.cache_ttl_ms;
  engine_options.cache_partial_invalidation = options.cache_partial;
  engine_options.solve.epsilon = options.epsilon;
  if (!ticl::ParseSolverKind(options.solver, &engine_options.solve.solver)) {
    std::fprintf(stderr, "error: unknown solver: %s\n",
                 options.solver.c_str());
    return 1;
  }
  const std::string options_problem =
      ticl::ValidateSolveOptions(engine_options.solve);
  if (!options_problem.empty()) {
    std::fprintf(stderr, "error: %s\n", options_problem.c_str());
    return 1;
  }

  ticl::WallTimer start_timer;
  const auto engine = ticl::QueryEngine::OpenSnapshot(
      options.snapshot_path,
      options.mmap ? ticl::SnapshotLoadMode::kMmap
                   : ticl::SnapshotLoadMode::kCopy,
      engine_options, &error);
  if (engine == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  for (const std::string& delta_path : options.delta_paths) {
    if (!engine->ApplyDeltaSnapshotFile(delta_path, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  const double start_seconds = start_timer.ElapsedSeconds();

  ticl::ServerOptions server_options;
  server_options.bind_address = options.bind_address;
  server_options.port = static_cast<std::uint16_t>(options.port);
  server_options.max_in_flight = options.max_in_flight;
  server_options.max_in_flight_per_conn = options.max_in_flight_per_conn;
  server_options.max_connections = options.max_connections;
  server_options.enable_admin = options.admin;
  ticl::Server server(engine.get(), server_options);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  g_server.store(&server, std::memory_order_release);
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A peer vanishing mid-write must not kill the process (send() already
  // passes MSG_NOSIGNAL; this covers any stray stdio-to-pipe case).
  std::signal(SIGPIPE, SIG_IGN);

  std::fprintf(stderr,
               "opened %s in %.3fs (n=%u m=%llu, %s, core index (k_max=%u) "
               "%s), %u worker threads\n",
               options.snapshot_path.c_str(), start_seconds,
               engine->graph().num_vertices(),
               static_cast<unsigned long long>(engine->graph().num_edges()),
               engine->snapshot_mapped() ? "mmap zero-copy" : "copy-load",
               engine->core_index().degeneracy(),
               engine->index_from_snapshot() ? "from snapshot" : "rebuilt",
               engine->num_threads());
  std::fprintf(stderr,
               "listening on %s:%u (max %zu connections, %zu in-flight "
               "queries, admin %s) — SIGTERM drains gracefully\n",
               options.bind_address.c_str(), server.port(),
               options.max_connections, options.max_in_flight,
               options.admin ? "enabled" : "disabled");

  server.Serve();
  // Detach the handlers from the object before it dies; a straggler
  // signal from here on is a no-op instead of a use-after-lifetime.
  g_server.store(nullptr, std::memory_order_release);

  const ticl::ServerStats server_stats = server.stats();
  const ticl::EngineStats engine_stats = engine->stats();
  std::fprintf(
      stderr,
      "drained: %llu connections, %llu queries answered (%llu rejected, "
      "%llu per-conn rejected, %llu invalid, %llu parse errors, %llu "
      "dropped), cache %llu hits (%llu negative) / %llu misses / %llu "
      "coalesced / %llu expired, %llu deltas applied (%llu entries kept / "
      "%llu evicted by partial invalidation)\n",
      static_cast<unsigned long long>(server_stats.connections_accepted),
      static_cast<unsigned long long>(server_stats.responses_sent),
      static_cast<unsigned long long>(server_stats.server_rejected),
      static_cast<unsigned long long>(server_stats.server_rejected_per_conn),
      static_cast<unsigned long long>(server_stats.invalid_queries),
      static_cast<unsigned long long>(server_stats.parse_errors),
      static_cast<unsigned long long>(server_stats.responses_dropped),
      static_cast<unsigned long long>(engine_stats.cache_hits),
      static_cast<unsigned long long>(engine_stats.cache_negative_hits),
      static_cast<unsigned long long>(engine_stats.cache_misses),
      static_cast<unsigned long long>(engine_stats.cache_coalesced),
      static_cast<unsigned long long>(engine_stats.cache_expired),
      static_cast<unsigned long long>(engine_stats.deltas_applied),
      static_cast<unsigned long long>(engine_stats.cache_partial_kept),
      static_cast<unsigned long long>(engine_stats.cache_partial_evicted));
  return 0;
}
