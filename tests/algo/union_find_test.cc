#include "algo/union_find.h"

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.Find(v), v);
    EXPECT_EQ(uf.SetSize(v), 1u);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
}

TEST(UnionFindTest, RedundantUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFindTest, ChainCollapsesToOneSet) {
  const VertexId n = 1000;
  UnionFind uf(n);
  for (VertexId v = 0; v + 1 < n; ++v) uf.Union(v, v + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.SetSize(0), n);
  EXPECT_EQ(uf.Find(0), uf.Find(n - 1));
}

TEST(UnionFindTest, RepresentativeIsStableWithinSet) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(3, 4);
  const VertexId rep_a = uf.Find(0);
  EXPECT_EQ(uf.Find(1), rep_a);
  const VertexId rep_b = uf.Find(3);
  EXPECT_EQ(uf.Find(4), rep_b);
  EXPECT_NE(rep_a, rep_b);
}

}  // namespace
}  // namespace ticl
