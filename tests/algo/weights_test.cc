#include "algo/weights.h"

#include <gtest/gtest.h>

#include "algo/pagerank.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::StarGraph;
using testing::TwoTrianglesAndK4;

TEST(WeightsTest, PageRankSchemeMatchesComputePageRank) {
  Graph g = TwoTrianglesAndK4();
  AssignWeights(&g, WeightScheme::kPageRank);
  const auto pr = ComputePageRank(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.weight(v), pr.scores[v]);
  }
}

TEST(WeightsTest, DegreeSchemeNormalized) {
  Graph g = StarGraph(4);
  AssignWeights(&g, WeightScheme::kDegree);
  EXPECT_DOUBLE_EQ(g.weight(0), 1.0);       // center: degree 4 / max 4
  EXPECT_DOUBLE_EQ(g.weight(1), 0.25);      // leaf
}

TEST(WeightsTest, UniformBoundsAndDeterminism) {
  Graph g1 = StarGraph(50);
  Graph g2 = StarGraph(50);
  AssignWeights(&g1, WeightScheme::kUniform, 99);
  AssignWeights(&g2, WeightScheme::kUniform, 99);
  for (VertexId v = 0; v < g1.num_vertices(); ++v) {
    EXPECT_GE(g1.weight(v), 0.0);
    EXPECT_LT(g1.weight(v), 1.0);
    EXPECT_DOUBLE_EQ(g1.weight(v), g2.weight(v));
  }
}

TEST(WeightsTest, UniformSeedsDiffer) {
  Graph g1 = StarGraph(50);
  Graph g2 = StarGraph(50);
  AssignWeights(&g1, WeightScheme::kUniform, 1);
  AssignWeights(&g2, WeightScheme::kUniform, 2);
  int differences = 0;
  for (VertexId v = 0; v < g1.num_vertices(); ++v) {
    if (g1.weight(v) != g2.weight(v)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(WeightsTest, LogNormalPositiveHeavyTail) {
  Graph g = StarGraph(2000);
  AssignWeights(&g, WeightScheme::kLogNormal, 7);
  double max_w = 0.0;
  double sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GT(g.weight(v), 0.0);
    max_w = std::max(max_w, g.weight(v));
    sum += g.weight(v);
  }
  const double mean = sum / g.num_vertices();
  EXPECT_GT(max_w, 4.0 * mean);  // heavy tail
}

TEST(WeightsTest, SchemeNames) {
  EXPECT_EQ(WeightSchemeName(WeightScheme::kPageRank), "pagerank");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kDegree), "degree");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kUniform), "uniform");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kLogNormal), "lognormal");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kEigenvector), "eigenvector");
  EXPECT_EQ(WeightSchemeName(WeightScheme::kCoreNumber), "core-number");
}

TEST(WeightsTest, EigenvectorSchemeUnitMax) {
  Graph g = TwoTrianglesAndK4();
  AssignWeights(&g, WeightScheme::kEigenvector);
  double max_w = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.weight(v), 0.0);
    max_w = std::max(max_w, g.weight(v));
  }
  EXPECT_NEAR(max_w, 1.0, 1e-12);
  // K4 members dominate the looser triangles spectrally.
  EXPECT_GT(g.weight(9), g.weight(0));
}

TEST(WeightsTest, CoreNumberSchemeNormalized) {
  Graph g = TwoTrianglesAndK4();
  AssignWeights(&g, WeightScheme::kCoreNumber);
  // Fixture cores: 2 for the triangles component, 3 (degeneracy) for K4.
  EXPECT_DOUBLE_EQ(g.weight(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.weight(6), 1.0);
}

TEST(WeightsTest, TotalWeightMaintained) {
  Graph g = TwoTrianglesAndK4();
  AssignWeights(&g, WeightScheme::kPageRank);
  EXPECT_NEAR(g.total_weight(), 1.0, 1e-9);
}

}  // namespace
}  // namespace ticl
