#include "algo/eigenvector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::PathGraph;
using testing::StarGraph;

TEST(EigenvectorTest, RegularGraphIsUniform) {
  const auto result = ComputeEigenvectorCentrality(CycleGraph(9));
  for (const double score : result.scores) EXPECT_NEAR(score, 1.0, 1e-9);
  EXPECT_NEAR(result.eigenvalue, 2.0, 1e-9);  // 2-regular
}

TEST(EigenvectorTest, CompleteGraphEigenvalue) {
  const auto result = ComputeEigenvectorCentrality(CompleteGraph(6));
  EXPECT_NEAR(result.eigenvalue, 5.0, 1e-9);  // K_n has lambda = n-1
  for (const double score : result.scores) EXPECT_NEAR(score, 1.0, 1e-9);
}

TEST(EigenvectorTest, StarCenterDominates) {
  const auto result = ComputeEigenvectorCentrality(StarGraph(8));
  EXPECT_NEAR(result.scores[0], 1.0, 1e-12);  // center is max-normalized 1
  for (VertexId leaf = 1; leaf <= 8; ++leaf) {
    // Star eigenvector: leaf = center / sqrt(L).
    EXPECT_NEAR(result.scores[leaf], 1.0 / std::sqrt(8.0), 1e-9);
  }
  EXPECT_NEAR(result.eigenvalue, std::sqrt(8.0), 1e-9);
}

TEST(EigenvectorTest, PathEndpointsScoreLowest) {
  const auto result = ComputeEigenvectorCentrality(PathGraph(5));
  EXPECT_LT(result.scores[0], result.scores[1]);
  EXPECT_LT(result.scores[1], result.scores[2]);
  EXPECT_NEAR(result.scores[0], result.scores[4], 1e-9);  // symmetry
}

TEST(EigenvectorTest, IsolatedVerticesScoreZero) {
  GraphBuilder b;
  b.SetNumVertices(4);
  b.AddEdge(0, 1);
  const auto result = ComputeEigenvectorCentrality(b.Build());
  EXPECT_NEAR(result.scores[0], 1.0, 1e-9);
  EXPECT_NEAR(result.scores[2], 0.0, 1e-9);
  EXPECT_NEAR(result.scores[3], 0.0, 1e-9);
}

TEST(EigenvectorTest, EmptyAndEdgelessGraphs) {
  EXPECT_TRUE(ComputeEigenvectorCentrality(Graph()).scores.empty());
  GraphBuilder b;
  b.SetNumVertices(3);
  const auto result = ComputeEigenvectorCentrality(b.Build());
  for (const double score : result.scores) EXPECT_EQ(score, 0.0);
}

TEST(EigenvectorTest, ScoresNonNegativeAndUnitMax) {
  const auto result =
      ComputeEigenvectorCentrality(testing::TwoTrianglesAndK4());
  double max_score = 0.0;
  for (const double score : result.scores) {
    EXPECT_GE(score, 0.0);
    max_score = std::max(max_score, score);
  }
  EXPECT_NEAR(max_score, 1.0, 1e-12);
}

}  // namespace
}  // namespace ticl
