#include "algo/kcore_peeler.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "gen/erdos_renyi.h"
#include "testing/builders.h"
#include "util/rng.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

/// Reference: k-core of the induced subgraph via full decomposition.
VertexList ReferencePeel(const Graph& g, const VertexList& members,
                         VertexId k) {
  const InducedSubgraph sub = ExtractInducedSubgraph(g, members);
  const auto decomp = CoreDecomposition(sub.graph);
  VertexList out;
  for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    if (decomp.core[lv] >= k) out.push_back(sub.to_original[lv]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SubsetPeelerTest, WholeGraphPeel) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  VertexList all;
  for (VertexId v = 0; v < 10; ++v) all.push_back(v);
  EXPECT_EQ(peeler.Peel(all, 2).size(), 10u);
  EXPECT_EQ(peeler.Peel(all, 3), Members({6, 7, 8, 9}));
  EXPECT_TRUE(peeler.Peel(all, 4).empty());
}

TEST(SubsetPeelerTest, CascadeThroughBridge) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  // Remove vertex 0 from {0..5}: triangle A unravels, B survives.
  const auto components =
      peeler.RemoveAndSplit(Members({0, 1, 2, 3, 4, 5}), 0, 2);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], Members({3, 4, 5}));
  EXPECT_EQ(peeler.last_cascade_size(), 2u);  // vertices 1 and 2
}

TEST(SubsetPeelerTest, RemoveBridgeEndpointSplits) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  // Remove 3: triangle B loses a member and unravels; A survives.
  const auto components =
      peeler.RemoveAndSplit(Members({0, 1, 2, 3, 4, 5}), 3, 2);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], Members({0, 1, 2}));
}

TEST(SubsetPeelerTest, RemoveFromK4LeavesTriangle) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  const auto components =
      peeler.RemoveAndSplit(Members({6, 7, 8, 9}), 9, 2);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], Members({6, 7, 8}));
  EXPECT_EQ(peeler.last_cascade_size(), 0u);
}

TEST(SubsetPeelerTest, PeelAndSplitSeparatesComponents) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  VertexList all;
  for (VertexId v = 0; v < 10; ++v) all.push_back(v);
  const auto components = peeler.PeelAndSplit(all, 2);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 6u);
  EXPECT_EQ(components[1].size(), 4u);
}

TEST(SubsetPeelerTest, EmptySubset) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  EXPECT_TRUE(peeler.Peel({}, 2).empty());
  EXPECT_TRUE(peeler.PeelAndSplit({}, 2).empty());
}

TEST(SubsetPeelerTest, SubsetBelowKAllPeeled) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  EXPECT_TRUE(peeler.Peel(Members({0, 1}), 2).empty());
}

TEST(SubsetPeelerTest, ReusableAcrossEpochs) {
  const Graph g = TwoTrianglesAndK4();
  SubsetPeeler peeler(g);
  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(peeler.Peel(Members({6, 7, 8, 9}), 3),
              Members({6, 7, 8, 9}));
    EXPECT_EQ(peeler.Peel(Members({0, 1, 2}), 2), Members({0, 1, 2}));
  }
}

class PeelerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeelerPropertyTest, PeelMatchesReferenceOnRandomSubsets) {
  const std::uint64_t seed = GetParam();
  const Graph g = GenerateErdosRenyi(120, 400, seed);
  SubsetPeeler peeler(g);
  Rng rng(seed ^ 0xABCD);
  for (int trial = 0; trial < 20; ++trial) {
    VertexList members;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (rng.NextBernoulli(0.5)) members.push_back(v);
    }
    for (const VertexId k : {1u, 2u, 3u, 4u}) {
      EXPECT_EQ(peeler.Peel(members, k), ReferencePeel(g, members, k))
          << "seed=" << seed << " trial=" << trial << " k=" << k;
    }
  }
}

TEST_P(PeelerPropertyTest, RemoveAndSplitMatchesPeelOfReducedSet) {
  const std::uint64_t seed = GetParam();
  const Graph g = GenerateErdosRenyi(100, 350, seed);
  SubsetPeeler peeler(g);
  const VertexList core = MaximalKCore(g, 3);
  if (core.empty()) GTEST_SKIP() << "no 3-core at this seed";
  Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    const VertexId removed = core[rng.NextBounded(core.size())];
    VertexList reduced;
    for (const VertexId v : core) {
      if (v != removed) reduced.push_back(v);
    }
    // Survivor union of RemoveAndSplit == Peel of the reduced set, and the
    // split must match ComponentsOfSubset of those survivors.
    const auto components = peeler.RemoveAndSplit(core, removed, 3);
    VertexList survivors;
    for (const auto& comp : components) {
      survivors.insert(survivors.end(), comp.begin(), comp.end());
    }
    std::sort(survivors.begin(), survivors.end());
    EXPECT_EQ(survivors, ReferencePeel(g, reduced, 3));
    EXPECT_EQ(components.size(),
              ComponentsOfSubset(g, survivors).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeelerPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ticl
