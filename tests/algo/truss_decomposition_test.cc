#include "algo/truss_decomposition.h"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::Members;
using testing::PathGraph;
using testing::TwoTrianglesAndK4;

VertexId TrussOf(const TrussDecompositionResult& d, VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  for (std::size_t e = 0; e < d.edges.size(); ++e) {
    if (d.edges[e].u == u && d.edges[e].v == v) return d.truss[e];
  }
  ADD_FAILURE() << "edge " << u << "-" << v << " not found";
  return 0;
}

TEST(TrussDecompositionTest, TriangleFreeGraphsAreTwoTrusses) {
  for (const Graph& g : {PathGraph(6), CycleGraph(8)}) {
    const auto d = TrussDecomposition(g);
    for (const VertexId t : d.truss) EXPECT_EQ(t, 2u);
    EXPECT_EQ(d.max_truss, 2u);
  }
}

TEST(TrussDecompositionTest, CompleteGraphTruss) {
  // Every edge of K_n is in n-2 triangles: truss number n.
  for (const VertexId n : {3u, 4u, 5u, 6u}) {
    const auto d = TrussDecomposition(CompleteGraph(n));
    ASSERT_EQ(d.edges.size(), static_cast<std::size_t>(n) * (n - 1) / 2);
    for (const VertexId t : d.truss) EXPECT_EQ(t, n);
    EXPECT_EQ(d.max_truss, n);
  }
}

TEST(TrussDecompositionTest, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(TrussDecomposition(Graph()).max_truss, 0u);
  GraphBuilder b;
  b.SetNumVertices(4);
  EXPECT_EQ(TrussDecomposition(b.Build()).max_truss, 0u);
}

TEST(TrussDecompositionTest, TwoTrianglesSharingAnEdge) {
  // {0,1,2} and {1,2,3} share edge 1-2: all five edges form a 3-truss.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  const auto d = TrussDecomposition(b.Build());
  for (const VertexId t : d.truss) EXPECT_EQ(t, 3u);
}

TEST(TrussDecompositionTest, FixtureTrussNumbers) {
  const Graph g = TwoTrianglesAndK4();
  const auto d = TrussDecomposition(g);
  // Triangles: truss 3. Bridge 2-3: no triangle, truss 2. K4: truss 4.
  EXPECT_EQ(TrussOf(d, 0, 1), 3u);
  EXPECT_EQ(TrussOf(d, 3, 4), 3u);
  EXPECT_EQ(TrussOf(d, 2, 3), 2u);
  EXPECT_EQ(TrussOf(d, 6, 7), 4u);
  EXPECT_EQ(TrussOf(d, 8, 9), 4u);
  EXPECT_EQ(d.max_truss, 4u);
}

TEST(MaximalKTrussTest, FixtureLevels) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(MaximalKTruss(g, 2).size(), 10u);
  EXPECT_EQ(MaximalKTruss(g, 3).size(), 10u);  // both triangles + K4
  EXPECT_EQ(MaximalKTruss(g, 4), Members({6, 7, 8, 9}));
  EXPECT_TRUE(MaximalKTruss(g, 5).empty());
}

TEST(KTrussComponentsTest, BridgeDoesNotJoinTrussComponents) {
  const Graph g = TwoTrianglesAndK4();
  // At k = 3 the bridge edge (truss 2) is excluded, so the two triangles
  // are separate components even though they touch via the bridge.
  const auto components = KTrussComponents(g, 3);
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], Members({0, 1, 2}));
  EXPECT_EQ(components[1], Members({3, 4, 5}));
  EXPECT_EQ(components[2], Members({6, 7, 8, 9}));
}

TEST(TrussCorePropertyTest, KTrussIsInsideKMinusOneCore) {
  // Classic containment: a k-truss is a (k-1)-core.
  const Graph g = GenerateErdosRenyi(150, 700, 5);
  for (const VertexId k : {3u, 4u, 5u}) {
    const VertexList truss = MaximalKTruss(g, k);
    std::vector<std::uint8_t> in_truss(g.num_vertices(), 0);
    for (const VertexId v : truss) in_truss[v] = 1;
    // Each truss vertex has >= k-1 neighbours inside the truss.
    for (const VertexId v : truss) {
      VertexId deg = 0;
      for (const VertexId nbr : g.neighbors(v)) deg += in_truss[nbr];
      EXPECT_GE(deg, k - 1) << "k=" << k << " v=" << v;
    }
  }
}

class TrussPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrussPropertyTest, TrussSubgraphSupportsVerify) {
  // Definition check: within the edges of truss >= k, every edge must lie
  // in >= k - 2 triangles formed by such edges.
  const Graph g = GenerateErdosRenyi(100, 500, GetParam());
  const auto d = TrussDecomposition(g);
  for (const VertexId k : {3u, 4u}) {
    // Adjacency restricted to truss->=k edges.
    std::vector<std::vector<VertexId>> truss_adj(g.num_vertices());
    for (std::size_t e = 0; e < d.edges.size(); ++e) {
      if (d.truss[e] >= k) {
        truss_adj[d.edges[e].u].push_back(d.edges[e].v);
        truss_adj[d.edges[e].v].push_back(d.edges[e].u);
      }
    }
    for (auto& adj : truss_adj) std::sort(adj.begin(), adj.end());
    for (std::size_t e = 0; e < d.edges.size(); ++e) {
      if (d.truss[e] < k) continue;
      const VertexId u = d.edges[e].u;
      const VertexId v = d.edges[e].v;
      VertexId common = 0;
      for (const VertexId w : truss_adj[u]) {
        if (std::binary_search(truss_adj[v].begin(), truss_adj[v].end(),
                               w)) {
          ++common;
        }
      }
      EXPECT_GE(common + 2, k) << "edge " << u << "-" << v << " k=" << k;
    }
  }
}

TEST_P(TrussPropertyTest, ValidatorAcceptsTrussComponents) {
  const Graph g = GenerateErdosRenyi(120, 550, GetParam() + 100);
  for (const VertexId k : {3u, 4u}) {
    for (const VertexList& component : KTrussComponents(g, k)) {
      EXPECT_EQ(ValidateKTrussSubgraph(g, component, k), "")
          << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrussPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ValidateKTrussSubgraphTest, RejectsBadSets) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_NE(ValidateKTrussSubgraph(g, Members({0}), 3), "");       // no edge
  EXPECT_NE(ValidateKTrussSubgraph(g, Members({0, 1, 2, 3}), 3),
            "");  // vertex 3 only reaches the triangle via a truss-2 bridge
  EXPECT_NE(ValidateKTrussSubgraph(g, Members({0, 1, 2, 6, 7, 8}), 3),
            "");  // disconnected
  EXPECT_EQ(ValidateKTrussSubgraph(g, Members({0, 1, 2}), 3), "");
  EXPECT_EQ(ValidateKTrussSubgraph(g, Members({6, 7, 8, 9}), 4), "");
}

}  // namespace
}  // namespace ticl
