#include "algo/core_decomposition.h"

#include <gtest/gtest.h>

#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::Members;
using testing::PathGraph;
using testing::StarGraph;
using testing::TwoTrianglesAndK4;

TEST(CoreDecompositionTest, PathIsOneCore) {
  const auto d = CoreDecomposition(PathGraph(5));
  for (const VertexId c : d.core) EXPECT_EQ(c, 1u);
  EXPECT_EQ(d.degeneracy, 1u);
}

TEST(CoreDecompositionTest, CycleIsTwoCore) {
  const auto d = CoreDecomposition(CycleGraph(7));
  for (const VertexId c : d.core) EXPECT_EQ(c, 2u);
  EXPECT_EQ(d.degeneracy, 2u);
}

TEST(CoreDecompositionTest, CompleteGraphCore) {
  const auto d = CoreDecomposition(CompleteGraph(6));
  for (const VertexId c : d.core) EXPECT_EQ(c, 5u);
  EXPECT_EQ(d.degeneracy, 5u);
}

TEST(CoreDecompositionTest, StarIsOneCore) {
  const auto d = CoreDecomposition(StarGraph(8));
  for (const VertexId c : d.core) EXPECT_EQ(c, 1u);
}

TEST(CoreDecompositionTest, IsolatedVerticesZeroCore) {
  GraphBuilder b;
  b.SetNumVertices(3);
  b.AddEdge(0, 1);
  const auto d = CoreDecomposition(b.Build());
  EXPECT_EQ(d.core[2], 0u);
  EXPECT_EQ(d.core[0], 1u);
}

TEST(CoreDecompositionTest, EmptyGraph) {
  const auto d = CoreDecomposition(Graph());
  EXPECT_TRUE(d.core.empty());
  EXPECT_EQ(d.degeneracy, 0u);
}

TEST(CoreDecompositionTest, FixtureCores) {
  const auto d = CoreDecomposition(TwoTrianglesAndK4());
  // Triangles + bridge: everything is 2-core. K4: 3-core.
  for (VertexId v = 0; v <= 5; ++v) EXPECT_EQ(d.core[v], 2u) << v;
  for (VertexId v = 6; v <= 9; ++v) EXPECT_EQ(d.core[v], 3u) << v;
  EXPECT_EQ(d.degeneracy, 3u);
}

TEST(CoreDecompositionTest, CliqueWithTail) {
  // K4 {0..3} plus tail 3-4-5: tail is 1-core, clique 3-core.
  GraphBuilder b;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  const auto d = CoreDecomposition(b.Build());
  EXPECT_EQ(d.core[0], 3u);
  EXPECT_EQ(d.core[3], 3u);
  EXPECT_EQ(d.core[4], 1u);
  EXPECT_EQ(d.core[5], 1u);
}

TEST(MaximalKCoreTest, FixtureLevels) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(MaximalKCore(g, 1).size(), 10u);
  EXPECT_EQ(MaximalKCore(g, 2).size(), 10u);
  EXPECT_EQ(MaximalKCore(g, 3), Members({6, 7, 8, 9}));
  EXPECT_TRUE(MaximalKCore(g, 4).empty());
}

TEST(MaximalKCoreTest, KCorePropertyHolds) {
  const Graph g = GenerateChungLu({2000, 8.0, 2.5, 7});
  for (const VertexId k : {2u, 3u, 4u}) {
    const VertexList core = MaximalKCore(g, k);
    std::vector<std::uint8_t> in_core(g.num_vertices(), 0);
    for (const VertexId v : core) in_core[v] = 1;
    for (const VertexId v : core) {
      VertexId deg = 0;
      for (const VertexId nbr : g.neighbors(v)) deg += in_core[nbr];
      EXPECT_GE(deg, k);
    }
  }
}

TEST(KCoreComponentsTest, FixtureSplit) {
  const Graph g = TwoTrianglesAndK4();
  const auto components2 = KCoreComponents(g, 2);
  ASSERT_EQ(components2.size(), 2u);
  EXPECT_EQ(components2[0], Members({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(components2[1], Members({6, 7, 8, 9}));
  const auto components3 = KCoreComponents(g, 3);
  ASSERT_EQ(components3.size(), 1u);
  EXPECT_EQ(components3[0], Members({6, 7, 8, 9}));
}

class CoreCrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreCrossCheckTest, BucketMatchesNaiveReference) {
  const std::uint64_t seed = GetParam();
  const Graph g = GenerateErdosRenyi(200, 600, seed);
  const auto fast = CoreDecomposition(g);
  const auto slow = CoreDecompositionNaive(g);
  EXPECT_EQ(fast.degeneracy, slow.degeneracy);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(fast.core[v], slow.core[v]) << "vertex " << v;
  }
}

TEST_P(CoreCrossCheckTest, BucketMatchesNaiveOnPowerLaw) {
  const std::uint64_t seed = GetParam();
  const Graph g = GenerateChungLu({300, 6.0, 2.3, seed});
  const auto fast = CoreDecomposition(g);
  const auto slow = CoreDecompositionNaive(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(fast.core[v], slow.core[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreCrossCheckTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ticl
