// CoreMaintainer correctness: every sequence of maintained edits must
// leave core numbers bit-identical to a from-scratch CoreDecomposition of
// the edited graph — that equivalence is the oracle for the whole
// dynamic-graph feature, so it is hammered with randomized churn here.

#include "algo/core_maintenance.h"

#include <vector>

#include <gtest/gtest.h>

#include "algo/core_decomposition.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_delta.h"
#include "testing/builders.h"
#include "util/rng.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::PathGraph;
using testing::TwoTrianglesAndK4;

/// The oracle: maintained numbers vs a fresh decomposition of `edited`.
void ExpectCoresMatch(const CoreMaintainer& maintainer, const Graph& edited,
                      const char* context) {
  const CoreDecompositionResult fresh = CoreDecomposition(edited);
  ASSERT_EQ(maintainer.core_numbers(), fresh.core) << context;
  EXPECT_EQ(maintainer.ComputeDegeneracy(), fresh.degeneracy) << context;
}

TEST(CoreMaintainerTest, InsertBridgingEdgeKeepsCores) {
  const Graph g = TwoTrianglesAndK4();
  CoreMaintainer m(g);
  m.InsertEdge(5, 6);  // triangle B vertex to K4 vertex
  GraphDelta delta;
  delta.insert_edges = {Edge{5, 6}};
  ExpectCoresMatch(m, ApplyDeltaToGraph(g, delta), "bridge insert");
}

TEST(CoreMaintainerTest, InsertCompletingTriangleRaisesCores) {
  const Graph g = PathGraph(3);  // 0-1-2, all cores 1
  CoreMaintainer m(g);
  m.InsertEdge(0, 2);
  EXPECT_EQ(m.core_numbers(), (std::vector<VertexId>{2, 2, 2}));
  GraphDelta delta;
  delta.insert_edges = {Edge{0, 2}};
  ExpectCoresMatch(m, ApplyDeltaToGraph(g, delta), "triangle completion");
}

TEST(CoreMaintainerTest, InsertIntoEmptyCorePair) {
  GraphBuilder b;
  b.SetNumVertices(3);
  b.AddEdge(0, 1);
  const Graph g = b.Build();  // vertex 2 isolated, core 0
  CoreMaintainer m(g);
  m.InsertEdge(1, 2);
  EXPECT_EQ(m.core_numbers(), (std::vector<VertexId>{1, 1, 1}));
}

TEST(CoreMaintainerTest, DeleteCascadesThroughTheShell) {
  // Cycle: all cores 2; cutting one edge collapses the whole 2-shell to 1.
  const Graph g = CycleGraph(6);
  CoreMaintainer m(g);
  m.DeleteEdge(0, 5);
  EXPECT_EQ(m.core_numbers(), (std::vector<VertexId>(6, 1)));
  GraphDelta delta;
  delta.delete_edges = {Edge{0, 5}};
  ExpectCoresMatch(m, ApplyDeltaToGraph(g, delta), "cycle cut");
}

TEST(CoreMaintainerTest, DeleteToIsolation) {
  const Graph g = PathGraph(2);
  CoreMaintainer m(g);
  m.DeleteEdge(0, 1);
  EXPECT_EQ(m.core_numbers(), (std::vector<VertexId>{0, 0}));
}

TEST(CoreMaintainerTest, DeleteInsideCliqueDropsByOne) {
  const Graph g = CompleteGraph(5);  // cores all 4
  CoreMaintainer m(g);
  m.DeleteEdge(0, 1);
  GraphDelta delta;
  delta.delete_edges = {Edge{0, 1}};
  ExpectCoresMatch(m, ApplyDeltaToGraph(g, delta), "clique edge delete");
}

TEST(CoreMaintainerTest, ReinsertAfterDeleteRestoresOriginal) {
  const Graph g = TwoTrianglesAndK4();
  const CoreDecompositionResult original = CoreDecomposition(g);
  CoreMaintainer m(g);
  m.DeleteEdge(6, 7);
  m.DeleteEdge(2, 3);
  m.InsertEdge(2, 3);
  m.InsertEdge(6, 7);  // revives the masked base edge
  EXPECT_EQ(m.core_numbers(), original.core);
  EXPECT_TRUE(m.HasEdge(6, 7));
}

TEST(CoreMaintainerTest, HasEdgeTracksOverlay) {
  const Graph g = TwoTrianglesAndK4();
  CoreMaintainer m(g);
  EXPECT_TRUE(m.HasEdge(0, 1));
  EXPECT_FALSE(m.HasEdge(0, 9));
  m.InsertEdge(0, 9);
  EXPECT_TRUE(m.HasEdge(0, 9));
  m.DeleteEdge(0, 9);  // removes the overlay edge again
  EXPECT_FALSE(m.HasEdge(0, 9));
  m.DeleteEdge(0, 1);  // masks a base edge
  EXPECT_FALSE(m.HasEdge(0, 1));
}

/// Randomized churn: interleaved inserts and deletes, checking the oracle
/// after every single edit so a wrong intermediate state cannot be masked
/// by a later compensating mistake. The maintainer keeps viewing `base`
/// (its contract: a stable base graph plus its own overlay); `current`
/// evolves separately for the from-scratch oracle.
void ChurnTest(const Graph& base, std::uint64_t seed, int steps) {
  Rng rng(seed);
  CoreMaintainer m(base);
  Graph current = base;
  for (int step = 0; step < steps; ++step) {
    const bool do_insert =
        current.num_edges() == 0 || rng.NextBernoulli(0.5);
    GraphDelta delta;
    if (do_insert) {
      const GraphDelta random = RandomDelta(current, rng.Next(), 1, 0, 0);
      delta.insert_edges = random.insert_edges;
      m.InsertEdge(delta.insert_edges[0].u, delta.insert_edges[0].v);
    } else {
      const GraphDelta random = RandomDelta(current, rng.Next(), 0, 1, 0);
      delta.delete_edges = random.delete_edges;
      m.DeleteEdge(delta.delete_edges[0].u, delta.delete_edges[0].v);
    }
    current = ApplyDeltaToGraph(current, delta);
    const CoreDecompositionResult fresh = CoreDecomposition(current);
    ASSERT_EQ(m.core_numbers(), fresh.core)
        << "seed " << seed << " step " << step
        << (do_insert ? " (insert)" : " (delete)");
  }
}

TEST(CoreMaintainerRandomizedTest, SparseGraphChurn) {
  ChungLuOptions cl;
  cl.num_vertices = 200;
  cl.target_average_degree = 4.0;
  cl.gamma = 2.5;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    cl.seed = seed;
    ChurnTest(GenerateChungLu(cl), seed, 120);
  }
}

TEST(CoreMaintainerRandomizedTest, DenserGraphChurn) {
  for (const std::uint64_t seed : {11u, 12u}) {
    ChurnTest(GenerateErdosRenyi(/*n=*/120, /*m=*/600, seed), seed, 100);
  }
}

TEST(CoreMaintainerRandomizedTest, BatchDeltaMatchesRebuild) {
  // The ApplyDelta shape: one big batch (1% churn), oracle checked once.
  ChungLuOptions cl;
  cl.num_vertices = 2000;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = 99;
  const Graph g = GenerateChungLu(cl);
  const std::size_t churn = g.num_edges() / 100;
  const GraphDelta delta = RandomDelta(g, 5, churn, churn, 0);

  CoreMaintainer m(g);
  for (const Edge& e : delta.delete_edges) m.DeleteEdge(e.u, e.v);
  for (const Edge& e : delta.insert_edges) m.InsertEdge(e.u, e.v);
  const Graph edited = ApplyDeltaToGraph(g, delta);
  const CoreDecompositionResult fresh = CoreDecomposition(edited);
  EXPECT_EQ(m.core_numbers(), fresh.core);
  EXPECT_GT(m.changed_vertices() + m.visited_vertices(), 0u);
}

}  // namespace
}  // namespace ticl
