#include "algo/pagerank.h"

#include <numeric>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::StarGraph;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(PageRankTest, ScoresSumToOne) {
  const Graph g = StarGraph(9);
  const auto pr = ComputePageRank(g);
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
}

TEST(PageRankTest, RegularGraphIsUniform) {
  const Graph g = CycleGraph(8);
  const auto pr = ComputePageRank(g);
  for (const double score : pr.scores) EXPECT_NEAR(score, 0.125, 1e-9);
}

TEST(PageRankTest, CompleteGraphIsUniform) {
  const Graph g = CompleteGraph(5);
  const auto pr = ComputePageRank(g);
  for (const double score : pr.scores) EXPECT_NEAR(score, 0.2, 1e-9);
}

TEST(PageRankTest, StarCenterDominates) {
  const Graph g = StarGraph(6);
  const auto pr = ComputePageRank(g);
  for (VertexId leaf = 1; leaf <= 6; ++leaf) {
    EXPECT_GT(pr.scores[0], pr.scores[leaf]);
    EXPECT_NEAR(pr.scores[1], pr.scores[leaf], 1e-12);  // leaves symmetric
  }
}

TEST(PageRankTest, StarClosedForm) {
  // Undirected star, damping d: center = (1-d)/n + d * sum(leaf),
  // leaf = (1-d)/n + d * center / L with L leaves.
  const int kLeaves = 4;
  const Graph g = StarGraph(kLeaves);
  const auto pr = ComputePageRank(g, {0.85, 500, 1e-15});
  const double n = 5.0;
  const double d = 0.85;
  // Solve the 2-variable fixpoint directly.
  // center = (1-d)/n + d * L * leaf_share where leaf_share = leaf / 1
  // leaf = (1-d)/n + d * center / L
  // => center = (1-d)/n + d*L*((1-d)/n + d*center/L)
  //           = (1-d)/n * (1 + d*L) / (1 - d^2)
  const double center =
      (1.0 - d) / n * (1.0 + d * kLeaves) / (1.0 - d * d);
  const double leaf = (1.0 - d) / n + d * center / kLeaves;
  EXPECT_NEAR(pr.scores[0], center, 1e-9);
  EXPECT_NEAR(pr.scores[1], leaf, 1e-9);
}

TEST(PageRankTest, DanglingVerticesHandled) {
  GraphBuilder b;
  b.SetNumVertices(4);
  b.AddEdge(0, 1);
  const Graph g = b.Build();  // 2 and 3 isolated
  const auto pr = ComputePageRank(g);
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
  EXPECT_GT(pr.scores[0], pr.scores[2]);
  EXPECT_NEAR(pr.scores[2], pr.scores[3], 1e-12);
}

TEST(PageRankTest, ZeroDampingIsUniform) {
  const Graph g = StarGraph(5);
  const auto pr = ComputePageRank(g, {0.0, 10, 1e-12});
  for (const double score : pr.scores) EXPECT_NEAR(score, 1.0 / 6, 1e-12);
}

TEST(PageRankTest, ConvergesBeforeIterationCap) {
  const Graph g = CycleGraph(10);
  const auto pr = ComputePageRank(g, {0.85, 100, 1e-10});
  EXPECT_LT(pr.iterations, 100);
  EXPECT_LT(pr.final_delta, 1e-10);
}

TEST(PageRankTest, IterationCapRespected) {
  const Graph g = StarGraph(50);
  const auto pr = ComputePageRank(g, {0.85, 3, 0.0});
  EXPECT_EQ(pr.iterations, 3);
}

TEST(PageRankTest, EmptyGraph) {
  const auto pr = ComputePageRank(Graph());
  EXPECT_TRUE(pr.scores.empty());
}

TEST(PageRankTest, HigherDegreeHigherRankOnFixture) {
  const Graph g = testing::TwoTrianglesAndK4();
  const auto pr = ComputePageRank(g);
  // Bridge endpoints (degree 3) outrank their degree-2 triangle peers.
  EXPECT_GT(pr.scores[2], pr.scores[0]);
  EXPECT_GT(pr.scores[3], pr.scores[4]);
}

}  // namespace
}  // namespace ticl
