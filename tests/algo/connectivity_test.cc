#include "algo/connectivity.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::PathGraph;
using testing::TwoTrianglesAndK4;

TEST(ConnectedComponentsTest, FixtureHasTwoComponents) {
  const Graph g = TwoTrianglesAndK4();
  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 2u);
  EXPECT_EQ(labels.label[0], labels.label[5]);
  EXPECT_EQ(labels.label[6], labels.label[9]);
  EXPECT_NE(labels.label[0], labels.label[6]);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreSingletons) {
  GraphBuilder b;
  b.SetNumVertices(4);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 3u);
}

TEST(ConnectedComponentsTest, EmptyGraph) {
  const Graph g;
  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, 0u);
  EXPECT_TRUE(labels.label.empty());
}

TEST(ComponentsOfSubsetTest, SplitsBridgelessSubset) {
  const Graph g = TwoTrianglesAndK4();
  // Dropping the bridge endpoints splits {0,1} from {4,5}.
  const auto components = ComponentsOfSubset(g, Members({0, 1, 4, 5}));
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], Members({0, 1}));
  EXPECT_EQ(components[1], Members({4, 5}));
}

TEST(ComponentsOfSubsetTest, WholeComponentStaysTogether) {
  const Graph g = TwoTrianglesAndK4();
  const auto components =
      ComponentsOfSubset(g, Members({0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), 6u);
}

TEST(ComponentsOfSubsetTest, EmptySubset) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(ComponentsOfSubset(g, {}).empty());
}

TEST(ComponentsOfSubsetTest, SingletonsWithoutEdges) {
  const Graph g = TwoTrianglesAndK4();
  const auto components = ComponentsOfSubset(g, Members({0, 9}));
  EXPECT_EQ(components.size(), 2u);
}

TEST(IsSubsetConnectedTest, Cases) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(IsSubsetConnected(g, Members({0, 1, 2})));
  EXPECT_TRUE(IsSubsetConnected(g, Members({2, 3})));       // bridge
  EXPECT_FALSE(IsSubsetConnected(g, Members({0, 1, 4})));   // gap
  EXPECT_FALSE(IsSubsetConnected(g, Members({0, 6})));      // components
  EXPECT_TRUE(IsSubsetConnected(g, Members({7})));          // singleton
  EXPECT_TRUE(IsSubsetConnected(g, {}));                    // empty
}

TEST(CollectNearestNeighborsTest, LimitRespectedAndSeedFirst) {
  const Graph g = TwoTrianglesAndK4();
  const auto all = [](VertexId) { return true; };
  const VertexList got = CollectNearestNeighbors(g, 6, 3, all);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 6u);
  // Neighbours visited in ascending adjacency order.
  EXPECT_EQ(got[1], 7u);
  EXPECT_EQ(got[2], 8u);
}

TEST(CollectNearestNeighborsTest, ExpandsToTwoHops) {
  const Graph g = PathGraph(6);  // 0-1-2-3-4-5
  const auto all = [](VertexId) { return true; };
  const VertexList got = CollectNearestNeighbors(g, 0, 4, all);
  EXPECT_EQ(got, Members({0, 1, 2, 3}));
}

TEST(CollectNearestNeighborsTest, BfsOrderIsDistanceOrder) {
  const Graph g = TwoTrianglesAndK4();
  const auto all = [](VertexId) { return true; };
  // From vertex 0: 1-hop = {1, 2}; 2-hop adds 3 (via 2); 3-hop adds 4, 5.
  const VertexList got = CollectNearestNeighbors(g, 0, 6, all);
  EXPECT_EQ(got, Members({0, 1, 2, 3, 4, 5}));
}

TEST(CollectNearestNeighborsTest, FilterBlocksExpansion) {
  const Graph g = PathGraph(6);
  const auto not_two = [](VertexId v) { return v != 2; };
  // Vertex 2 blocked: BFS from 0 cannot pass it.
  const VertexList got = CollectNearestNeighbors(g, 0, 6, not_two);
  EXPECT_EQ(got, Members({0, 1}));
}

TEST(CollectNearestNeighborsTest, ComponentBoundary) {
  const Graph g = TwoTrianglesAndK4();
  const auto all = [](VertexId) { return true; };
  const VertexList got = CollectNearestNeighbors(g, 6, 10, all);
  EXPECT_EQ(got.size(), 4u);  // K4 only
}

TEST(CollectNearestNeighborsTest, ZeroLimitEmpty) {
  const Graph g = PathGraph(3);
  const auto all = [](VertexId) { return true; };
  EXPECT_TRUE(CollectNearestNeighbors(g, 0, 0, all).empty());
}

}  // namespace
}  // namespace ticl
