// Shared graph fixtures for the test suite.
//
// TwoTrianglesAndK4() is the canonical hand-analyzed instance; its complete
// ground truth (per aggregation, k = 2) is worked out in the comments below
// and asserted across the solver tests.

#ifndef TICL_TESTS_TESTING_BUILDERS_H_
#define TICL_TESTS_TESTING_BUILDERS_H_

#include <initializer_list>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace ticl::testing {

/// Materializes a span accessor (Graph::offsets(), CoreIndex::CoreMembers
/// and friends return views since the zero-copy refactor) so it can be
/// EXPECT_EQ'd against vectors.
template <typename T>
std::vector<T> ToVector(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

inline Graph PathGraph(VertexId n) {
  GraphBuilder b;
  b.SetNumVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return b.Build();
}

inline Graph CycleGraph(VertexId n) {
  GraphBuilder b;
  b.SetNumVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  if (n >= 3) b.AddEdge(n - 1, 0);
  return b.Build();
}

inline Graph CompleteGraph(VertexId n) {
  GraphBuilder b;
  b.SetNumVertices(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  return b.Build();
}

inline Graph StarGraph(VertexId leaves) {
  GraphBuilder b;
  b.SetNumVertices(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) b.AddEdge(0, v);
  return b.Build();
}

inline VertexList Members(std::initializer_list<VertexId> ids) {
  return VertexList(ids);
}

// The canonical 10-vertex instance. Structure:
//   triangle A = {0, 1, 2}, weights 10 / 20 / 30
//   triangle B = {3, 4, 5}, weights  5 /  6 /  7
//   bridge edge 2-3 joins A and B into one component
//   K4 = {6, 7, 8, 9}, weights 1 / 2 / 3 / 100 (separate component)
//
// Ground truth at k = 2 (hand-derived; the family of connected 2-core
// subgraphs reachable by deletions is: {0..5}, {0,1,2}, {3,4,5}, K4 and its
// four triangles):
//   sum,  top-5: K4=106, {7,8,9}=105, {6,8,9}=104, {6,7,9}=103, {0..5}=78
//   avg,  top-3 (exact enumeration): {7,8,9}=35, {6,8,9}=104/3,
//                                    {6,7,9}=103/3
//   min,  peel snapshots in order: K4@1, {7,8,9}@2, {0..5}@5, {0,1,2}@10;
//         top-2 = [{0,1,2}=10, {0..5}=5]
//   min,  TONIC top-3 = [{0,1,2}=10, {3,4,5}=5, {7,8,9}=2]
//   max,  top-2 = [K4=100, {0..5}=30]
//   sum with s=3 (exact): 105, 104, 103;  s=4 (exact): 106, 105, 104
inline Graph TwoTrianglesAndK4() {
  GraphBuilder b;
  b.SetNumVertices(10);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  b.AddEdge(2, 3);  // bridge
  b.AddEdge(6, 7);
  b.AddEdge(6, 8);
  b.AddEdge(6, 9);
  b.AddEdge(7, 8);
  b.AddEdge(7, 9);
  b.AddEdge(8, 9);
  Graph g = b.Build();
  g.SetWeights({10, 20, 30, 5, 6, 7, 1, 2, 3, 100});
  return g;
}

}  // namespace ticl::testing

#endif  // TICL_TESTS_TESTING_BUILDERS_H_
