#include "serve/snapshot.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "gen/chung_lu.h"
#include "serve/core_index.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ticl_snapshot_test_" + name;
}

void ExpectBitIdentical(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(testing::ToVector(a.offsets()), testing::ToVector(b.offsets()));
  EXPECT_EQ(testing::ToVector(a.adjacency()),
            testing::ToVector(b.adjacency()));
  ASSERT_EQ(a.has_weights(), b.has_weights());
  if (a.has_weights()) {
    ASSERT_EQ(a.weights().size(), b.weights().size());
    for (std::size_t v = 0; v < a.weights().size(); ++v) {
      // Bit-level, not epsilon: the snapshot stores the doubles verbatim.
      EXPECT_EQ(a.weights()[v], b.weights()[v]) << "vertex " << v;
    }
  }
}

TEST(SnapshotTest, RoundTripFixture) {
  const Graph original = TwoTrianglesAndK4();
  const std::string path = TempPath("fixture.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  ExpectBitIdentical(original, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripGeneratedGraphsProperty) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    ChungLuOptions cl;
    cl.num_vertices = 400;
    cl.target_average_degree = 6.0;
    cl.gamma = 2.5;
    cl.seed = seed;
    Graph original = GenerateChungLu(cl);
    AssignWeights(&original, WeightScheme::kPageRank, seed);

    const std::string path = TempPath("prop.snap");
    std::string error;
    ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
    Graph loaded;
    ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
    ExpectBitIdentical(original, loaded);
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, RoundTripUnweighted) {
  const Graph original = testing::CycleGraph(12);
  const std::string path = TempPath("unweighted.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  EXPECT_FALSE(loaded.has_weights());
  ExpectBitIdentical(original, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripEmptyGraph) {
  const Graph original;
  const std::string path = TempPath("empty.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  Graph loaded = TwoTrianglesAndK4();  // must be overwritten
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsMissingFile) {
  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(TempPath("does_not_exist.snap"), &loaded,
                            &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(SnapshotTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.snap");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a snapshot, padded to be long enough", f);
  std::fclose(f);
  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsWrongVersion) {
  const std::string path = TempPath("version.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  // Byte 8 is the low byte of the little-endian version field.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
  std::fputc(0x7f, f);
  std::fclose(f);
  Graph loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  // Rewrite the file minus its last 16 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<char> bytes;
  int ch;
  while ((ch = std::fgetc(f)) != EOF) bytes.push_back(static_cast<char>(ch));
  std::fclose(f);
  ASSERT_GT(bytes.size(), 16u);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size() - 16, f);
  std::fclose(f);

  Graph loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  // v2 truncation lands on the checksum (the digest is read from what is
  // now the middle of the payload).
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsFlippedPayloadByte) {
  const Graph original = TwoTrianglesAndK4();
  const std::string path = TempPath("corrupt.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  // Flip one byte in the middle of the payload; the checksum must notice.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  std::fputc(byte ^ 0xff, f);
  std::fclose(f);

  Graph loaded;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

// Writers for hand-crafted (hostile) snapshot bytes.
struct RawWriter {
  std::vector<unsigned char> bytes;

  void Append(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    bytes.insert(bytes.end(), p, p + size);
  }
  template <typename T>
  void AppendValue(T value) {
    Append(&value, sizeof(value));
  }
  /// FNV-1a 64 over everything appended so far (mirrors the file format).
  std::uint64_t Checksum() const {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const unsigned char byte : bytes) {
      hash ^= byte;
      hash *= 0x100000001b3ULL;
    }
    return hash;
  }
  void WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
};

TEST(SnapshotTest, RejectsNonMonotoneOffsetsWithoutOverread) {
  // offsets [0, 10, 2] with a 2-entry adjacency: front/back pass, but the
  // middle entry points past the array. Must be rejected as invalid, not
  // read out of bounds.
  RawWriter w;
  w.Append("TICLSNAP", 8);
  w.AppendValue<std::uint32_t>(1);  // v1 layout
  w.AppendValue<std::uint32_t>(0);                   // flags: no weights
  w.AppendValue<std::uint64_t>(2);                   // n
  w.AppendValue<std::uint64_t>(2);                   // adjacency length
  for (const std::uint64_t offset : {0ull, 10ull, 2ull}) {
    w.AppendValue<std::uint64_t>(offset);
  }
  w.AppendValue<std::uint32_t>(1);                   // adjacency
  w.AppendValue<std::uint32_t>(0);
  w.AppendValue<std::uint64_t>(w.Checksum());
  const std::string path = TempPath("nonmonotone.snap");
  w.WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("monotone"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsHugeAdjacencyLengthWithoutAllocating) {
  // adj_len = 2^62 makes `adj_len * sizeof(VertexId)` wrap to 0 in the
  // expected-size arithmetic; the loader must reject the header instead
  // of attempting a 2^62-element allocation.
  RawWriter w;
  w.Append("TICLSNAP", 8);
  w.AppendValue<std::uint32_t>(1);  // v1 layout
  w.AppendValue<std::uint32_t>(0);                   // flags
  w.AppendValue<std::uint64_t>(0);                   // n
  w.AppendValue<std::uint64_t>(1ull << 62);          // adjacency length
  w.AppendValue<std::uint64_t>(0);                   // offsets[0]
  w.AppendValue<std::uint64_t>(w.Checksum());
  const std::string path = TempPath("huge_adj.snap");
  w.WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("exceeds file size"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, FailedLoadLeavesOutputUntouched) {
  Graph out = TwoTrianglesAndK4();
  std::string error;
  ASSERT_FALSE(LoadSnapshot(TempPath("nope.snap"), &out, &error));
  EXPECT_EQ(out.num_vertices(), 10u);  // untouched
}

TEST(SnapshotTest, SaveToUnwritablePathFails) {
  std::string error;
  EXPECT_FALSE(SaveSnapshot("/nonexistent_dir_xyz/g.snap",
                            TwoTrianglesAndK4(), &error));
  EXPECT_FALSE(error.empty());
}

// -- Format compatibility ---------------------------------------------------

/// Builds syntactically valid v2 files section by section (the hostile /
/// forward-compatibility counterpart of the library writer).
struct V2Builder {
  struct Section {
    std::uint32_t type;
    std::vector<unsigned char> payload;
  };
  std::vector<Section> sections;

  template <typename T>
  void AddArraySection(std::uint32_t type, const std::vector<T>& values) {
    Section s;
    s.type = type;
    s.payload.resize(values.size() * sizeof(T));
    std::memcpy(s.payload.data(), values.data(), s.payload.size());
    sections.push_back(std::move(s));
  }

  RawWriter Build() const {
    RawWriter w;
    w.Append("TICLSNAP", 8);
    w.AppendValue<std::uint32_t>(2);
    w.AppendValue<std::uint32_t>(static_cast<std::uint32_t>(sections.size()));
    std::uint64_t cursor = 16 + 24ull * sections.size();
    for (const Section& s : sections) {
      w.AppendValue<std::uint32_t>(s.type);
      w.AppendValue<std::uint32_t>(0);
      w.AppendValue<std::uint64_t>(cursor);
      w.AppendValue<std::uint64_t>(s.payload.size());
      cursor += (s.payload.size() + 7) & ~7ull;
    }
    for (const Section& s : sections) {
      w.Append(s.payload.data(), s.payload.size());
      const std::size_t padding = ((s.payload.size() + 7) & ~7ull) -
                                  s.payload.size();
      for (std::size_t i = 0; i < padding; ++i) {
        w.AppendValue<unsigned char>(0);
      }
    }
    w.AppendValue<std::uint64_t>(w.Checksum());
    return w;
  }
};

/// Triangle on 3 vertices as raw v2 sections (types 1..3).
V2Builder TriangleV2() {
  V2Builder b;
  b.AddArraySection<std::uint64_t>(1, {3, 6});             // graph_meta
  b.AddArraySection<std::uint64_t>(2, {0, 2, 4, 6});       // offsets
  b.AddArraySection<std::uint32_t>(3, {1, 2, 0, 2, 0, 1}); // adjacency
  return b;
}

TEST(SnapshotCompatTest, CommittedV1GoldenFileStillLoads) {
  // tests/serve/testdata/tiny_v1.snap: weighted triangle written by the
  // PR-1 era v1 writer and committed verbatim. Old deployments' snapshot
  // stores must keep loading.
  Graph loaded;
  std::string error;
  ASSERT_TRUE(LoadSnapshot(std::string(TICL_TEST_DATA_DIR) + "/tiny_v1.snap",
                           &loaded, &error))
      << error;
  EXPECT_EQ(loaded.num_vertices(), 3u);
  EXPECT_EQ(loaded.num_edges(), 3u);
  EXPECT_TRUE(loaded.HasEdge(0, 1));
  EXPECT_TRUE(loaded.HasEdge(1, 2));
  EXPECT_TRUE(loaded.HasEdge(0, 2));
  ASSERT_TRUE(loaded.has_weights());
  EXPECT_EQ(loaded.weight(0), 1.0);
  EXPECT_EQ(loaded.weight(1), 2.0);
  EXPECT_EQ(loaded.weight(2), 3.0);
}

TEST(SnapshotCompatTest, V1WriterRoundTrips) {
  const Graph original = TwoTrianglesAndK4();
  const std::string path = TempPath("v1_writer.snap");
  SaveSnapshotOptions options;
  options.version = 1;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, options, &error)) << error;
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  ExpectBitIdentical(original, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, V1CannotEmbedCoreIndex) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);
  SaveSnapshotOptions options;
  options.version = 1;
  options.core_index = &index;
  std::string error;
  EXPECT_FALSE(SaveSnapshot(TempPath("v1_index.snap"), g, options, &error));
  EXPECT_NE(error.find("cannot embed"), std::string::npos) << error;
}

TEST(SnapshotCompatTest, CoreIndexSectionRoundTripsThroughLoadSnapshot) {
  const Graph original = TwoTrianglesAndK4();
  const CoreIndex index(original);
  SaveSnapshotOptions options;
  options.core_index = &index;
  const std::string path = TempPath("with_index.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, options, &error)) << error;
  // LoadSnapshot skips the core_index section; the graph is unaffected.
  Graph loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  ExpectBitIdentical(original, loaded);
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, MixedGraphAndDeltaSectionsAreRejected) {
  // A file carrying both families would serve the base graph with the
  // recorded edits silently dropped; both loaders must refuse it.
  V2Builder b = TriangleV2();
  // delta_meta (type 6): parent fingerprint + zero edit counts, 48 bytes.
  b.AddArraySection<std::uint64_t>(6, {3, 6, 0x1234, 0, 0, 0});
  const std::string path = TempPath("mixed_sections.snap");
  b.Build().WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("both graph and delta"), std::string::npos) << error;
  GraphDelta delta;
  GraphFingerprint parent;
  EXPECT_FALSE(LoadDeltaSnapshot(path, &delta, &parent, &error));
  EXPECT_NE(error.find("both graph and delta"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, UnknownOptionalSectionIsSkipped) {
  V2Builder b = TriangleV2();
  // A section type this reader has never heard of (a future delta table,
  // say). Forward compatibility: load fine, skip it.
  b.AddArraySection<std::uint64_t>(999, {0xdeadbeefull, 42});
  const std::string path = TempPath("unknown_section.snap");
  b.Build().WriteTo(path);

  Graph loaded;
  std::string error;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_vertices(), 3u);
  EXPECT_EQ(loaded.num_edges(), 3u);
  EXPECT_FALSE(loaded.has_weights());
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, TruncatedSectionTableRejected) {
  // Header declares 1000 sections; the file ends long before the table
  // does. Must fail with the specific table error, not a checksum read
  // somewhere past EOF.
  RawWriter w;
  w.Append("TICLSNAP", 8);
  w.AppendValue<std::uint32_t>(2);
  w.AppendValue<std::uint32_t>(1000);  // section count
  w.AppendValue<std::uint64_t>(0);     // a lone stub entry fragment
  w.AppendValue<std::uint64_t>(w.Checksum());
  const std::string path = TempPath("truncated_table.snap");
  w.WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("truncated section table"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, MissingRequiredSectionRejected) {
  V2Builder b;
  b.AddArraySection<std::uint64_t>(1, {3, 6});  // graph_meta only
  const std::string path = TempPath("missing_section.snap");
  b.Build().WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("missing required section"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotCompatTest, MisalignedSectionRejected) {
  // Hand-build a table whose adjacency section starts at a non-multiple
  // of 8: the zero-copy loader could never pointer-cast it safely.
  RawWriter w;
  w.Append("TICLSNAP", 8);
  w.AppendValue<std::uint32_t>(2);
  w.AppendValue<std::uint32_t>(1);
  w.AppendValue<std::uint32_t>(2);                  // type: offsets
  w.AppendValue<std::uint32_t>(0);
  w.AppendValue<std::uint64_t>(44);                 // misaligned offset
  w.AppendValue<std::uint64_t>(8);
  for (int i = 0; i < 12; ++i) w.AppendValue<unsigned char>(0);
  w.AppendValue<std::uint64_t>(w.Checksum());
  const std::string path = TempPath("misaligned.snap");
  w.WriteTo(path);

  Graph loaded;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(path, &loaded, &error));
  EXPECT_NE(error.find("misaligned"), std::string::npos) << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ticl
