// Delta snapshot persistence: round-trips, fingerprint parentage, chain
// replay, and cross-kind rejection (a delta file is not a full snapshot
// and vice versa).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_delta.h"
#include "serve/snapshot.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

GraphDelta SampleDelta() {
  GraphDelta delta;
  delta.insert_edges = {Edge{5, 6}, Edge{0, 9}};
  delta.delete_edges = {Edge{2, 3}};
  delta.weight_updates = {WeightUpdate{4, 12.5}};
  return delta;
}

TEST(DeltaSnapshotTest, SaveLoadRoundTrip) {
  const Graph g = TwoTrianglesAndK4();
  const GraphDelta delta = SampleDelta();
  const std::string path = TempPath("delta_roundtrip.snap");
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(path, delta, g.fingerprint(), &error))
      << error;

  GraphDelta loaded;
  GraphFingerprint parent;
  ASSERT_TRUE(LoadDeltaSnapshot(path, &loaded, &parent, &error)) << error;
  EXPECT_TRUE(parent == g.fingerprint());
  EXPECT_EQ(loaded.insert_edges, delta.insert_edges);
  EXPECT_EQ(loaded.delete_edges, delta.delete_edges);
  EXPECT_EQ(loaded.weight_updates, delta.weight_updates);
}

TEST(DeltaSnapshotTest, EmptyDeltaRoundTrips) {
  const Graph g = TwoTrianglesAndK4();
  const std::string path = TempPath("delta_empty.snap");
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(path, {}, g.fingerprint(), &error)) << error;
  GraphDelta loaded;
  GraphFingerprint parent;
  ASSERT_TRUE(LoadDeltaSnapshot(path, &loaded, &parent, &error)) << error;
  EXPECT_TRUE(loaded.empty());
  EXPECT_TRUE(parent == g.fingerprint());
}

TEST(DeltaSnapshotTest, FullLoaderRejectsDeltaFileWithPointedError) {
  const Graph g = TwoTrianglesAndK4();
  const std::string path = TempPath("delta_not_full.snap");
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(path, SampleDelta(), g.fingerprint(),
                                &error))
      << error;
  Graph out;
  EXPECT_FALSE(LoadSnapshot(path, &out, &error));
  EXPECT_NE(error.find("delta snapshot"), std::string::npos) << error;
}

TEST(DeltaSnapshotTest, DeltaLoaderRejectsFullFileWithPointedError) {
  const Graph g = TwoTrianglesAndK4();
  const std::string path = TempPath("full_not_delta.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, g, &error)) << error;
  GraphDelta delta;
  GraphFingerprint parent;
  EXPECT_FALSE(LoadDeltaSnapshot(path, &delta, &parent, &error));
  EXPECT_NE(error.find("full snapshot"), std::string::npos) << error;
}

TEST(DeltaSnapshotTest, CorruptedDeltaIsRejected) {
  const Graph g = TwoTrianglesAndK4();
  const std::string path = TempPath("delta_corrupt.snap");
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(path, SampleDelta(), g.fingerprint(),
                                &error))
      << error;
  // Flip one payload byte; the container checksum must catch it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 70, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, 70, SEEK_SET), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  GraphDelta delta;
  GraphFingerprint parent;
  EXPECT_FALSE(LoadDeltaSnapshot(path, &delta, &parent, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(SnapshotChainTest, ReplaysInOrder) {
  const Graph base = TwoTrianglesAndK4();
  const std::string base_path = TempPath("chain_base.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(base_path, base, &error)) << error;

  // d1: bridge the components; d2 (child of d1's result): cut a triangle.
  GraphDelta d1;
  d1.insert_edges = {Edge{5, 6}};
  const Graph after_d1 = ApplyDeltaToGraph(base, d1);
  GraphDelta d2;
  d2.delete_edges = {Edge{0, 1}};
  const Graph after_d2 = ApplyDeltaToGraph(after_d1, d2);

  const std::string d1_path = TempPath("chain_d1.snap");
  const std::string d2_path = TempPath("chain_d2.snap");
  ASSERT_TRUE(SaveDeltaSnapshot(d1_path, d1, base.fingerprint(), &error))
      << error;
  ASSERT_TRUE(
      SaveDeltaSnapshot(d2_path, d2, after_d1.fingerprint(), &error))
      << error;

  Graph out;
  ASSERT_TRUE(LoadSnapshotChain(base_path, {d1_path, d2_path}, &out, &error))
      << error;
  EXPECT_TRUE(out.fingerprint() == after_d2.fingerprint());
  EXPECT_TRUE(out.HasEdge(5, 6));
  EXPECT_FALSE(out.HasEdge(0, 1));

  // Wrong order: d2's parent is d1's result, not the base.
  EXPECT_FALSE(
      LoadSnapshotChain(base_path, {d2_path, d1_path}, &out, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(SnapshotChainTest, ForeignDeltaIsRejected) {
  const Graph base = TwoTrianglesAndK4();
  const std::string base_path = TempPath("chain_base2.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(base_path, base, &error)) << error;

  // A delta recorded against a different parent (fingerprint of a
  // different topology).
  GraphDelta d;
  d.insert_edges = {Edge{5, 6}};
  const Graph other = ApplyDeltaToGraph(base, d);
  const std::string foreign_path = TempPath("chain_foreign.snap");
  ASSERT_TRUE(
      SaveDeltaSnapshot(foreign_path, d, other.fingerprint(), &error))
      << error;

  Graph out;
  EXPECT_FALSE(LoadSnapshotChain(base_path, {foreign_path}, &out, &error));
  EXPECT_NE(error.find("different parent"), std::string::npos) << error;
}

}  // namespace
}  // namespace ticl
