// Loopback integration tests for the TCP front end: real sockets, real
// concurrent clients, answers compared byte-for-byte against inline
// Solve() through the shared protocol formatter.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/search.h"
#include "gen/chung_lu.h"
#include "graph/graph_delta.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"

namespace ticl {
namespace {

Graph WeightedChungLu(std::uint64_t seed, VertexId n = 400) {
  ChungLuOptions cl;
  cl.num_vertices = n;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

/// Minimal blocking loopback client: line-oriented send, line-oriented
/// receive with a deadline so a server bug fails the test instead of
/// hanging it.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendLine(const std::string& line) {
    const std::string framed = line + "\n";
    SendRaw(framed);
  }

  void SendRaw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t sent = ::send(fd_, bytes.data() + off,
                                  bytes.size() - off, MSG_NOSIGNAL);
      if (sent <= 0) {
        if (sent < 0 && errno == EINTR) continue;
        break;
      }
      off += static_cast<std::size_t>(sent);
    }
  }

  /// Half-close: tells the server this client has no more requests.
  void FinishSending() { ::shutdown(fd_, SHUT_WR); }

  /// Next complete line (without the newline); empty + eof() on EOF or
  /// deadline.
  std::string ReadLine(int timeout_ms = 30000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        eof_ = true;
        return "";
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      const int ready = ::poll(&pfd, 1, remaining);
      if (ready <= 0) {
        if (ready < 0 && errno == EINTR) continue;
        eof_ = true;
        return "";
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      eof_ = true;
      return "";
    }
  }

  /// True once ReadLine hit EOF/timeout with nothing buffered.
  bool eof() const { return eof_; }

 private:
  int fd_ = -1;
  bool connected_ = false;
  bool eof_ = false;
  std::string buffer_;
};

/// Engine + running server on an ephemeral loopback port; tears both
/// down in order.
class ServerHarness {
 public:
  ServerHarness(Graph graph, EngineOptions engine_options,
                ServerOptions server_options = {}) {
    engine_ = std::make_unique<QueryEngine>(std::move(graph),
                                            engine_options);
    server_options.port = 0;
    server_ = std::make_unique<Server>(engine_.get(), server_options);
    std::string error;
    start_ok_ = server_->Start(&error);
    EXPECT_TRUE(start_ok_) << error;
    if (start_ok_) {
      serve_thread_ = std::thread([this] { server_->Serve(); });
    }
  }

  ~ServerHarness() { Shutdown(); }

  void Shutdown() {
    if (serve_thread_.joinable()) {
      server_->RequestDrain();
      serve_thread_.join();
    }
  }

  QueryEngine& engine() { return *engine_; }
  Server& server() { return *server_; }
  std::uint16_t port() const { return server_->port(); }
  bool ok() const { return start_ok_; }

 private:
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  bool start_ok_ = false;
};

/// The answer portion of a response line, for bit-identical comparison
/// against inline Solve() (cached/elapsed_seconds legitimately differ
/// per execution).
std::string CommunitiesPortion(const std::string& response_line) {
  const std::size_t pos = response_line.find("\"communities\": ");
  if (pos == std::string::npos) return "<no communities in: " + response_line + ">";
  return response_line.substr(pos);
}

std::string ExpectedCommunitiesPortion(const Graph& g, const Query& query) {
  const SearchResult direct = Solve(g, query);
  return "\"communities\": " + FormatCommunitiesJson(direct) + "}";
}

TEST(ServerTest, ConcurrentClientsMatchInlineSolveBitIdentical) {
  Graph g = WeightedChungLu(17);
  const Graph reference = g;
  EngineOptions engine_options;
  engine_options.num_threads = 4;
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  const struct {
    const char* line;
    Query query;
  } kWorkload[] = {
      {R"({"k": 2, "r": 3, "f": "sum"})",
       [] {
         Query q;
         q.k = 2;
         q.r = 3;
         return q;
       }()},
      {R"({"k": 3, "r": 2, "f": "min"})",
       [] {
         Query q;
         q.k = 3;
         q.r = 2;
         q.aggregation = AggregationSpec::Min();
         return q;
       }()},
      {R"({"k": 2, "r": 2, "f": "avg", "s": 10})",
       [] {
         Query q;
         q.k = 2;
         q.r = 2;
         q.size_limit = 10;
         q.aggregation = AggregationSpec::Avg();
         return q;
       }()},
      {R"({"k": 2, "r": 2, "f": "max", "non_overlapping": true})",
       [] {
         Query q;
         q.k = 2;
         q.r = 2;
         q.non_overlapping = true;
         q.aggregation = AggregationSpec::Max();
         return q;
       }()},
  };

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      if (!client.connected()) {
        failures[c] = "connect failed";
        return;
      }
      // Interleave: send everything, then read everything — responses
      // carry ids, order across queries is not part of the contract.
      int expected = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& item : kWorkload) {
          std::string line = item.line;
          // Unique id per (client, round, query) so duplicates would be
          // visible.
          const std::string id =
              std::to_string(c * 1000 + round * 100 + expected);
          line.insert(1, "\"id\": " + id + ", ");
          client.SendLine(line);
          ++expected;
        }
      }
      client.FinishSending();
      int received = 0;
      while (true) {
        const std::string response = client.ReadLine();
        if (response.empty()) break;
        ++received;
        // Find which query this response answers via its "query" echo.
        bool matched = false;
        for (const auto& item : kWorkload) {
          const std::string echo =
              "\"query\": \"" + QueryToString(item.query) + "\"";
          if (response.find(echo) == std::string::npos) continue;
          matched = true;
          const std::string want =
              ExpectedCommunitiesPortion(reference, item.query);
          if (CommunitiesPortion(response) != want) {
            failures[c] = "mismatch for " + echo + ": " + response;
          }
          break;
        }
        if (!matched) failures[c] = "unrecognized response: " + response;
      }
      if (received != kRounds * 4) {
        failures[c] = "expected " + std::to_string(kRounds * 4) +
                      " responses, got " + std::to_string(received);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "") << "client " << c;

  harness.Shutdown();
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.queries_submitted, kClients * kRounds * 4u);
  EXPECT_EQ(stats.responses_sent, kClients * kRounds * 4u);
  EXPECT_EQ(stats.responses_dropped, 0u);
  EXPECT_EQ(stats.server_rejected, 0u);
}

TEST(ServerTest, AdmissionControlRejectsInsteadOfStalling) {
  Graph g = WeightedChungLu(23);
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.cache_member_budget = 0;
  engine_options.solve_started_hook_for_test = [release_future] {
    release_future.wait();
  };
  ServerOptions server_options;
  server_options.max_in_flight = 1;
  ServerHarness harness(std::move(g), engine_options, server_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.SendLine(R"({"id": 100, "k": 2, "r": 1, "f": "sum"})");

  // The first query occupies the single in-flight slot (its solve is
  // parked on the hook). Distinct follow-ups must be rejected
  // immediately — the loop stays responsive while the engine is busy.
  constexpr int kOverload = 3;
  for (int i = 0; i < kOverload; ++i) {
    client.SendLine("{\"id\": " + std::to_string(200 + i) +
                    ", \"k\": 2, \"r\": " + std::to_string(2 + i) +
                    ", \"f\": \"sum\"}");
  }
  int rejected = 0;
  for (int i = 0; i < kOverload; ++i) {
    const std::string response = client.ReadLine();
    ASSERT_FALSE(response.empty()) << "no rejection reply " << i;
    EXPECT_NE(response.find("\"kind\": \"rejected\""), std::string::npos)
        << response;
    EXPECT_NE(response.find("server at capacity"), std::string::npos)
        << response;
    ++rejected;
  }
  EXPECT_EQ(rejected, kOverload);

  release.set_value();
  const std::string answer = client.ReadLine();
  EXPECT_NE(answer.find("\"id\": 100"), std::string::npos) << answer;
  EXPECT_NE(answer.find("\"communities\""), std::string::npos) << answer;

  harness.Shutdown();
  EXPECT_EQ(harness.server().stats().server_rejected,
            static_cast<std::uint64_t>(kOverload));
}

TEST(ServerTest, PerConnectionCapKeepsFloodingClientFromStarvingOthers) {
  // One chatty connection used to be able to claim every global in-flight
  // slot (admission only checked the total), starving every other client.
  // With the per-connection cap (auto: max_in_flight / 4, min 1) the
  // flooder hits its own ceiling while global slots stay free for the
  // victim.
  Graph g = WeightedChungLu(67);
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.cache_member_budget = 0;
  engine_options.solve_started_hook_for_test = [release_future] {
    release_future.wait();
  };
  ServerOptions server_options;
  server_options.max_in_flight = 2;  // per-conn auto-cap: max(2/4, 1) = 1
  ServerHarness harness(std::move(g), engine_options, server_options);
  ASSERT_TRUE(harness.ok());

  TestClient flood(harness.port());
  ASSERT_TRUE(flood.connected());
  flood.SendLine(R"({"id": 100, "k": 2, "r": 1, "f": "sum"})");
  flood.SendLine(R"({"id": 101, "k": 2, "r": 2, "f": "sum"})");
  flood.SendLine(R"({"id": 102, "k": 2, "r": 3, "f": "sum"})");

  // The flooder's first query holds its single per-connection slot (its
  // solve is parked on the hook); the other two bounce off the cap even
  // though a global slot is still free.
  for (int i = 0; i < 2; ++i) {
    const std::string rejection = flood.ReadLine();
    ASSERT_FALSE(rejection.empty()) << "no rejection reply " << i;
    EXPECT_NE(rejection.find("\"kind\": \"rejected\""), std::string::npos)
        << rejection;
    EXPECT_NE(rejection.find("connection at capacity"), std::string::npos)
        << rejection;
  }

  // The victim's query must be admitted while the flooder's solve is
  // still parked — that is the starvation the cap exists to prevent.
  TestClient victim(harness.port());
  ASSERT_TRUE(victim.connected());
  victim.SendLine(R"({"id": 200, "k": 2, "r": 1, "f": "min"})");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (harness.server().stats().queries_submitted < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(harness.server().stats().queries_submitted, 2u);

  release.set_value();
  const std::string victim_answer = victim.ReadLine();
  EXPECT_NE(victim_answer.find("\"id\": 200"), std::string::npos)
      << victim_answer;
  EXPECT_NE(victim_answer.find("\"communities\""), std::string::npos)
      << victim_answer;
  const std::string flood_answer = flood.ReadLine();
  EXPECT_NE(flood_answer.find("\"id\": 100"), std::string::npos)
      << flood_answer;
  EXPECT_NE(flood_answer.find("\"communities\""), std::string::npos)
      << flood_answer;

  harness.Shutdown();
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.server_rejected_per_conn, 2u);
  EXPECT_EQ(stats.server_rejected, 0u);
  EXPECT_EQ(stats.queries_submitted, 2u);
  EXPECT_EQ(stats.responses_sent, 2u);  // rejections are not completions
}

TEST(ServerTest, GracefulDrainCompletesInFlightAndRefusesLateConnections) {
  Graph g = WeightedChungLu(29);
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::promise<void> started;
  std::atomic<bool> started_signalled{false};
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.cache_member_budget = 0;
  engine_options.solve_started_hook_for_test = [&, release_future] {
    if (!started_signalled.exchange(true)) started.set_value();
    release_future.wait();
  };
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.SendLine(R"({"id": 1, "k": 2, "r": 2, "f": "sum"})");
  started.get_future().wait();  // the query is inside the engine

  harness.server().RequestDrain();

  // Late connections: the listener closes during drain; within a bounded
  // window new connects must start failing (or be closed unanswered).
  bool refused = false;
  for (int attempt = 0; attempt < 100 && !refused; ++attempt) {
    TestClient late(harness.port());
    if (!late.connected()) {
      refused = true;
      break;
    }
    // Connected before the listener closed (or via the backlog): the
    // server must not answer it during drain — EOF without a response.
    late.SendLine(R"({"id": 9, "k": 2, "r": 1, "f": "sum"})");
    const std::string response = late.ReadLine(2000);
    if (response.empty()) refused = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(refused);

  // The in-flight query completes and its reply is flushed — exactly
  // once.
  release.set_value();
  const std::string answer = client.ReadLine();
  EXPECT_NE(answer.find("\"id\": 1,"), std::string::npos) << answer;
  EXPECT_NE(answer.find("\"communities\""), std::string::npos) << answer;
  const std::string extra = client.ReadLine(5000);
  EXPECT_EQ(extra, "");  // EOF after the drain, no duplicate

  harness.Shutdown();  // Serve() must have returned; join here
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.responses_sent, 1u);
  EXPECT_EQ(stats.responses_dropped, 0u);
}

TEST(ServerTest, AdminApplyDeltaSwapsLiveAndAnswersFromNewGraph) {
  Graph g = WeightedChungLu(31);
  const Graph reference = g;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  // Build a real delta snapshot file against the serving graph. The
  // delta must change the CSR structure (not just weights): the parent
  // fingerprint hashes structure only, and the wrong-parent check below
  // needs the post-delta fingerprint to differ.
  GraphDelta delta;
  delta.weight_updates.push_back(
      WeightUpdate{0, reference.weight(0) + 10.0});
  VertexId other = 1;
  {
    std::vector<bool> adjacent(reference.num_vertices(), false);
    adjacent[0] = true;
    for (const VertexId nbr : reference.neighbors(0)) adjacent[nbr] = true;
    while (other < reference.num_vertices() && adjacent[other]) ++other;
    ASSERT_LT(other, reference.num_vertices());
  }
  delta.insert_edges.push_back(Edge{0, other});
  ASSERT_EQ(ValidateDelta(reference, delta), "");
  const std::string delta_path =
      ::testing::TempDir() + "/server_test_delta.snap";
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(delta_path, delta,
                                reference.fingerprint(), &error))
      << error;

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.SendLine(R"({"id": "p", "admin": "ping"})");
  EXPECT_NE(client.ReadLine().find("\"admin\": \"ping\", \"ok\": true"),
            std::string::npos);

  client.SendLine("{\"id\": \"d\", \"admin\": \"apply_delta\", \"path\": \"" +
                  delta_path + "\"}");
  const std::string apply_reply = client.ReadLine();
  EXPECT_NE(apply_reply.find("\"admin\": \"apply_delta\", \"ok\": true"),
            std::string::npos)
      << apply_reply;
  EXPECT_NE(apply_reply.find("\"reweights\": 1"), std::string::npos)
      << apply_reply;

  // Queries after the swap answer from the mutated graph.
  const Graph mutated = ApplyValidatedDelta(reference, delta);
  Query query;
  query.k = 2;
  query.r = 3;
  client.SendLine(R"({"id": 5, "k": 2, "r": 3, "f": "sum"})");
  const std::string response = client.ReadLine();
  EXPECT_EQ(CommunitiesPortion(response),
            ExpectedCommunitiesPortion(mutated, query))
      << response;

  client.SendLine(R"({"id": "s", "admin": "stats"})");
  const std::string stats_reply = client.ReadLine();
  EXPECT_NE(stats_reply.find("\"deltas_applied\": 1"), std::string::npos)
      << stats_reply;

  // Wrong-parent delta (recorded against the pre-delta graph) must be
  // refused: the serving graph has moved on.
  client.SendLine("{\"id\": \"d2\", \"admin\": \"apply_delta\", \"path\": \"" +
                  delta_path + "\"}");
  const std::string second_reply = client.ReadLine();
  EXPECT_NE(second_reply.find("\"kind\": \"admin\""), std::string::npos)
      << second_reply;
  EXPECT_NE(second_reply.find("different parent"), std::string::npos)
      << second_reply;

  harness.Shutdown();
  EXPECT_EQ(harness.engine().stats().deltas_applied, 1u);
}

TEST(ServerTest, MalformedAndOversizedLinesGetErrorsStreamStaysUsable) {
  Graph g = WeightedChungLu(37);
  const Graph reference = g;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.SendLine(R"({"id": 1, "k": "four"})");
  std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"kind\": \"parse\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"id\": 1,"), std::string::npos) << response;

  client.SendLine("total garbage");
  response = client.ReadLine();
  EXPECT_NE(response.find("\"kind\": \"parse\""), std::string::npos)
      << response;

  // An oversized line is answered with an error and discarded up to its
  // newline; the stream resynchronizes after it.
  client.SendLine("{\"id\": 2, \"x\": \"" +
                  std::string(kMaxRequestLineBytes + 1024, 'a') + "\"}");
  response = client.ReadLine();
  EXPECT_NE(response.find("exceeds"), std::string::npos) << response;
  EXPECT_NE(response.find("\"kind\": \"parse\""), std::string::npos)
      << response;

  // Invalid (well-formed but semantically wrong) query: k = 0.
  client.SendLine(R"({"id": 3, "k": 0, "r": 1})");
  response = client.ReadLine();
  EXPECT_NE(response.find("\"kind\": \"invalid\""), std::string::npos)
      << response;

  // And a valid query still gets a correct answer on the same socket.
  Query query;
  query.k = 2;
  query.r = 2;
  client.SendLine(R"({"id": 4, "k": 2, "r": 2, "f": "sum"})");
  response = client.ReadLine();
  EXPECT_EQ(CommunitiesPortion(response),
            ExpectedCommunitiesPortion(reference, query))
      << response;

  harness.Shutdown();
  const ServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.parse_errors, 3u);  // bad k, garbage, oversized
  EXPECT_EQ(stats.oversized_lines, 1u);
  EXPECT_EQ(stats.invalid_queries, 1u);
}

TEST(ServerTest, AdminDisabledRefusesCommands) {
  Graph g = WeightedChungLu(41, 120);
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  ServerOptions server_options;
  server_options.enable_admin = false;
  ServerHarness harness(std::move(g), engine_options, server_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.SendLine(R"({"id": 1, "admin": "ping"})");
  const std::string response = client.ReadLine();
  EXPECT_NE(response.find("\"kind\": \"admin\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("disabled"), std::string::npos) << response;
  harness.Shutdown();
  EXPECT_EQ(harness.server().stats().admin_commands, 0u);
}

TEST(ServerTest, AdminDrainCommandShutsDownGracefully) {
  Graph g = WeightedChungLu(43, 120);
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.SendLine(R"({"id": 1, "k": 2, "r": 1, "f": "sum"})");
  const std::string answer = client.ReadLine();
  EXPECT_NE(answer.find("\"communities\""), std::string::npos) << answer;

  client.SendLine(R"({"id": "bye", "admin": "drain"})");
  const std::string ack = client.ReadLine();
  EXPECT_NE(ack.find("\"admin\": \"drain\", \"ok\": true"),
            std::string::npos)
      << ack;
  // The drain ack is flushed, then the server closes the connection.
  EXPECT_EQ(client.ReadLine(10000), "");
  harness.Shutdown();  // Serve() already returning; join must not hang
}

TEST(ServerTest, DrainDeadlineForceClosesNeverReadingPeer) {
  Graph g = WeightedChungLu(59);
  const Graph reference = g;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  ServerOptions server_options;
  server_options.drain_grace_ms = 300;
  // Let replies pile up in the server instead of pausing intake, so the
  // never-reading peer accumulates a provably unflushable buffer. The
  // per-connection fairness cap is lifted for the same reason: this test
  // wants one connection to flood.
  server_options.max_write_buffer_bytes = 1u << 30;
  server_options.max_in_flight_per_conn = 1u << 20;
  ServerHarness harness(std::move(g), engine_options, server_options);
  ASSERT_TRUE(harness.ok());

  Query query;
  query.k = 2;
  query.r = 100;
  const std::size_t reply_size =
      ExpectedCommunitiesPortion(reference, query).size() + 80;
  // Enough reply bytes that no kernel socket buffering can absorb them:
  // the connection must still hold unflushed data when the drain hits.
  const std::size_t target_bytes = 32u << 20;
  const std::size_t sends = target_bytes / reply_size + 1;

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  for (std::size_t i = 0; i < sends; ++i) {
    client.SendLine(R"({"k": 2, "r": 100, "f": "sum"})");
  }
  // Wait until the server has produced most of those replies (they are
  // cache hits after the first) — then drain against a peer that never
  // reads. Without the grace deadline Shutdown() would hang forever.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (harness.server().stats().responses_sent < sends / 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(harness.server().stats().responses_sent, sends / 2);

  harness.Shutdown();
  EXPECT_GE(harness.server().stats().drain_forced_closes, 1u);
}

TEST(ServerTest, SolverExceptionBecomesInternalErrorReply) {
  Graph g = WeightedChungLu(53, 150);
  const Graph reference = g;
  std::atomic<bool> threw{false};
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.cache_member_budget = 0;
  // First solve throws (the hook runs on the worker, inside Run's try);
  // later solves proceed. A crash or a leaked in-flight slot here would
  // hang the drain below.
  engine_options.solve_started_hook_for_test = [&threw] {
    if (!threw.exchange(true)) throw std::runtime_error("injected failure");
  };
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.SendLine(R"({"id": 1, "k": 2, "r": 1, "f": "sum"})");
  const std::string failed = client.ReadLine();
  EXPECT_NE(failed.find("\"kind\": \"internal\""), std::string::npos)
      << failed;
  EXPECT_NE(failed.find("injected failure"), std::string::npos) << failed;

  // The slot was returned and the pending entry retired: the same query
  // succeeds on retry.
  Query query;
  query.k = 2;
  query.r = 1;
  client.SendLine(R"({"id": 2, "k": 2, "r": 1, "f": "sum"})");
  const std::string answer = client.ReadLine();
  EXPECT_EQ(CommunitiesPortion(answer),
            ExpectedCommunitiesPortion(reference, query))
      << answer;

  harness.Shutdown();  // must not hang on a leaked in-flight count
}

TEST(ServerTest, HalfCloseDeliversAllPendingAnswers) {
  Graph g = WeightedChungLu(47);
  const Graph reference = g;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  ServerHarness harness(std::move(g), engine_options);
  ASSERT_TRUE(harness.ok());

  // Batch-style client: send everything, half-close, then read to EOF.
  TestClient client(harness.port());
  ASSERT_TRUE(client.connected());
  constexpr int kQueries = 6;
  for (int i = 0; i < kQueries; ++i) {
    client.SendLine("{\"id\": " + std::to_string(i) +
                    ", \"k\": 2, \"r\": " + std::to_string(1 + i % 3) +
                    ", \"f\": \"sum\"}");
  }
  client.FinishSending();
  int received = 0;
  while (true) {
    const std::string response = client.ReadLine();
    if (response.empty()) break;
    EXPECT_NE(response.find("\"communities\""), std::string::npos)
        << response;
    ++received;
  }
  EXPECT_EQ(received, kQueries);
  harness.Shutdown();
}

}  // namespace
}  // namespace ticl
