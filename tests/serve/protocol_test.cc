// The wire protocol is the trust boundary of the network front end: a
// TCP listener cannot assume well-formed input the way the batch pipe
// could. These tests are deliberately table-driven — every class of
// malformed line the parser must reject lives in one place, and adding a
// new attack is one row.

#include "serve/protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregation.h"
#include "core/community.h"
#include "core/result.h"

namespace ticl {
namespace {

// -- Well-formed lines ------------------------------------------------------

TEST(ParseQueryLineTest, FullQuery) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(
      R"({"id": "q1", "k": 4, "r": 5, "s": 20, "f": "avg", "non_overlapping": true})",
      7, &query, &id_json, &error))
      << error;
  EXPECT_EQ(id_json, "\"q1\"");  // raw token: quotes preserved
  EXPECT_EQ(query.k, 4u);
  EXPECT_EQ(query.r, 5u);
  EXPECT_EQ(query.size_limit, 20u);
  EXPECT_TRUE(query.non_overlapping);
  EXPECT_EQ(query.aggregation.kind, Aggregation::kAvg);
}

TEST(ParseQueryLineTest, DefaultsWhenFieldsAbsent) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(R"({"k": 2})", 3, &query, &id_json, &error));
  EXPECT_EQ(id_json, "3");  // synthesized from the line number
  EXPECT_EQ(query.k, 2u);
  EXPECT_EQ(query.r, 1u);
  EXPECT_EQ(query.size_limit, 0u);
  EXPECT_FALSE(query.non_overlapping);
  EXPECT_EQ(query.aggregation.kind, Aggregation::kSum);
}

TEST(ParseQueryLineTest, NumericAndBoolIds) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(R"({"id": 42, "k": 2})", 1, &query, &id_json,
                             &error));
  EXPECT_EQ(id_json, "42");
  ASSERT_TRUE(ParseQueryLine(R"({"id": -3.5, "k": 2})", 1, &query, &id_json,
                             &error));
  EXPECT_EQ(id_json, "-3.5");
}

TEST(ParseQueryLineTest, CompositeOrNullIdSynthesized) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(R"({"id": [1, 2], "k": 2})", 9, &query,
                             &id_json, &error));
  EXPECT_EQ(id_json, "9");
  ASSERT_TRUE(ParseQueryLine(R"({"id": null, "k": 2})", 11, &query, &id_json,
                             &error));
  EXPECT_EQ(id_json, "11");
}

TEST(ParseQueryLineTest, UnknownFieldsIgnoredEvenComposite) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(
      R"({"k": 3, "future_field": {"nested": [1, "a}b", {}]}, "r": 2})", 1,
      &query, &id_json, &error))
      << error;
  EXPECT_EQ(query.k, 3u);
  EXPECT_EQ(query.r, 2u);
}

TEST(ParseQueryLineTest, SumSurplusTakesAlpha) {
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine(R"({"f": "sum-surplus", "alpha": 0.5, "k": 2})",
                             1, &query, &id_json, &error));
  EXPECT_EQ(query.aggregation.kind, Aggregation::kSumSurplus);
  EXPECT_DOUBLE_EQ(query.aggregation.alpha, 0.5);
}

TEST(ParseQueryLineTest, UnicodeEscapeInString) {
  // The f value spells its leading 's' as a backslash-u escape (0x73);
  // escapes must be resolved before the aggregation lookup.
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(ParseQueryLine("{\"f\": \"\\u0073um\", \"k\": 2}", 1, &query,
                             &id_json, &error))
      << error;
  EXPECT_EQ(query.aggregation.kind, Aggregation::kSum);
}

TEST(ParseQueryLineTest, IntegralFloatAccepted) {
  // JSON has one number type; 4.0 is an integer by value.
  Query query;
  std::string id_json;
  std::string error;
  ASSERT_TRUE(
      ParseQueryLine(R"({"k": 4.0, "r": 2e1})", 1, &query, &id_json, &error))
      << error;
  EXPECT_EQ(query.k, 4u);
  EXPECT_EQ(query.r, 20u);
}

// -- Malformed lines (the hardening table) ----------------------------------

struct MalformedCase {
  const char* name;
  const char* line;
  /// Substring expected in the parse error.
  const char* error_fragment;
};

class MalformedLineTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedLineTest, Rejected) {
  const MalformedCase& c = GetParam();
  Query query;
  std::string id_json;
  std::string error;
  EXPECT_FALSE(ParseQueryLine(c.line, 5, &query, &id_json, &error))
      << c.name << ": accepted " << c.line;
  EXPECT_NE(error.find(c.error_fragment), std::string::npos)
      << c.name << ": error was \"" << error << "\", expected fragment \""
      << c.error_fragment << "\"";
  EXPECT_FALSE(id_json.empty()) << c.name;  // error replies need an id
}

INSTANTIATE_TEST_SUITE_P(
    Table, MalformedLineTest,
    ::testing::Values(
        MalformedCase{"empty", "", "expected '{'"},
        MalformedCase{"not_an_object", R"([1, 2, 3])", "expected '{'"},
        MalformedCase{"bare_garbage", "hello", "expected '{'"},
        MalformedCase{"unterminated_object", R"({"k": 2)", "expected ','"},
        MalformedCase{"unterminated_string", R"({"f": "sum)",
                      "unterminated string"},
        MalformedCase{"unterminated_string_id", R"({"id": "q1)",
                      "unterminated string"},
        MalformedCase{"unterminated_escape", "{\"f\": \"sum\\",
                      "unterminated string"},
        MalformedCase{"control_char_in_string", "{\"f\": \"su\tm\"}",
                      "unescaped control character"},
        MalformedCase{"invalid_escape", R"({"f": "\q"})", "invalid escape"},
        MalformedCase{"truncated_unicode_escape", R"({"f": "\u00"})",
                      "escape"},
        MalformedCase{"lone_surrogate", R"({"f": "\ud800"})",
                      "lone surrogate"},
        MalformedCase{"duplicate_key", R"({"k": 2, "k": 3})",
                      "duplicate key \"k\""},
        MalformedCase{"duplicate_id", R"({"id": 1, "id": 2, "k": 2})",
                      "duplicate key \"id\""},
        MalformedCase{"duplicate_unknown_key", R"({"x": 1, "x": 1})",
                      "duplicate key \"x\""},
        MalformedCase{"k_string", R"({"k": "four"})", "\"k\" must be a number"},
        MalformedCase{"k_quoted_number", R"({"k": "4"})",
                      "\"k\" must be a number"},
        MalformedCase{"k_bool", R"({"k": true})", "\"k\" must be a number"},
        MalformedCase{"k_fractional", R"({"k": 4.5})",
                      "integer in [0, 4294967295]"},
        MalformedCase{"k_negative", R"({"k": -1})",
                      "integer in [0, 4294967295]"},
        MalformedCase{"k_too_large", R"({"k": 4294967296})",
                      "integer in [0, 4294967295]"},
        MalformedCase{"r_huge_exponent", R"({"r": 1e300})",
                      "integer in [0, 4294967295]"},
        MalformedCase{"s_composite", R"({"s": [20]})", "must be a number"},
        MalformedCase{"non_overlapping_string",
                      R"({"non_overlapping": "yes"})",
                      "\"non_overlapping\" must be true or false"},
        MalformedCase{"alpha_string", R"({"f": "sum-surplus", "alpha": "a"})",
                      "\"alpha\" must be a finite number"},
        MalformedCase{"f_number", R"({"f": 7})", "\"f\" must be a string"},
        MalformedCase{"unknown_aggregation", R"({"f": "median"})",
                      "unknown aggregation: median"},
        MalformedCase{"missing_colon", R"({"k" 2})", "expected ':'"},
        MalformedCase{"missing_comma", R"({"k": 2 "r": 3})",
                      "expected ',' or '}'"},
        MalformedCase{"unquoted_key", R"({k: 2})", "expected a quoted key"},
        MalformedCase{"trailing_garbage", R"({"k": 2} tail)",
                      "trailing garbage"},
        MalformedCase{"second_object", R"({"k": 2}{"k": 3})",
                      "trailing garbage"},
        MalformedCase{"leading_zero_number", R"({"k": 007})",
                      "expected ',' or '}'"},
        MalformedCase{"hex_number", R"({"k": 0x10})", "expected ',' or '}'"},
        MalformedCase{"infinity_number", R"({"k": inf})", "malformed value"},
        MalformedCase{"mismatched_brackets", R"({"x": [1, 2}})",
                      "mismatched brackets"},
        MalformedCase{"unterminated_composite", R"({"x": [1, 2)",
                      "unterminated array or object"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(ParseQueryLineTest, OversizedLineRejected) {
  std::string line = R"({"id": ")" + std::string(kMaxRequestLineBytes, 'x') +
                     R"(", "k": 2})";
  Query query;
  std::string id_json;
  std::string error;
  EXPECT_FALSE(ParseQueryLine(line, 2, &query, &id_json, &error));
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  EXPECT_EQ(id_json, "2");
}

TEST(ParseQueryLineTest, AdminLineRejectedOnBatchFrontEnd) {
  Query query;
  std::string id_json;
  std::string error;
  EXPECT_FALSE(ParseQueryLine(R"({"id": 1, "admin": "stats"})", 1, &query,
                              &id_json, &error));
  EXPECT_NE(error.find("admin commands are not supported"),
            std::string::npos)
      << error;
  EXPECT_EQ(id_json, "1");
}

// -- Admin requests ---------------------------------------------------------

TEST(ParseRequestLineTest, AdminApplyDelta) {
  ParsedRequest request;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(
      R"({"id": "a1", "admin": "apply_delta", "path": "g.d1.snap"})", 1,
      &request, &error))
      << error;
  EXPECT_EQ(request.kind, ParsedRequest::Kind::kAdmin);
  EXPECT_EQ(request.admin_verb, "apply_delta");
  EXPECT_EQ(request.admin_path, "g.d1.snap");
  EXPECT_EQ(request.id_json, "\"a1\"");
}

TEST(ParseRequestLineTest, AdminVerbsWithoutPath) {
  for (const char* verb : {"stats", "drain", "ping"}) {
    ParsedRequest request;
    std::string error;
    const std::string line =
        std::string(R"({"admin": ")") + verb + R"("})";
    ASSERT_TRUE(ParseRequestLine(line, 1, &request, &error)) << error;
    EXPECT_EQ(request.kind, ParsedRequest::Kind::kAdmin);
    EXPECT_EQ(request.admin_verb, verb);
  }
}

TEST(ParseRequestLineTest, AdminErrors) {
  ParsedRequest request;
  std::string error;
  EXPECT_FALSE(
      ParseRequestLine(R"({"admin": "reboot"})", 1, &request, &error));
  EXPECT_NE(error.find("unknown admin command"), std::string::npos) << error;

  EXPECT_FALSE(
      ParseRequestLine(R"({"admin": "apply_delta"})", 1, &request, &error));
  EXPECT_NE(error.find("path"), std::string::npos) << error;

  EXPECT_FALSE(ParseRequestLine(R"({"admin": 7})", 1, &request, &error));
  EXPECT_NE(error.find("\"admin\" must be a string"), std::string::npos)
      << error;
}

TEST(ParseRequestLineTest, QueryLineParsesAsQueryKind) {
  ParsedRequest request;
  std::string error;
  ASSERT_TRUE(ParseRequestLine(R"({"id": 1, "k": 3, "r": 2})", 1, &request,
                               &error));
  EXPECT_EQ(request.kind, ParsedRequest::Kind::kQuery);
  EXPECT_EQ(request.query.k, 3u);
}

// -- Formatting -------------------------------------------------------------

SearchResult TwoCommunityResult() {
  SearchResult result;
  Community a;
  a.influence = 42.0;
  a.members = {1, 2, 3};
  Community b;
  b.influence = 0.125;
  b.members = {7};
  result.communities = {a, b};
  result.stats.elapsed_seconds = 0.012345;
  return result;
}

TEST(FormatTest, ResultLineExactBytes) {
  Query query;
  query.k = 4;
  query.r = 5;
  const std::string line =
      FormatResultLine("\"q1\"", query, TwoCommunityResult(), false);
  EXPECT_EQ(line,
            "{\"id\": \"q1\", \"query\": \"" + QueryToString(query) +
                "\", \"cached\": false, \"elapsed_seconds\": 0.012345, "
            "\"communities\": [{\"influence\": 42, \"members\": [1, 2, 3]}, "
            "{\"influence\": 0.125, \"members\": [7]}]}\n");
}

TEST(FormatTest, CommunitiesJsonMatchesResultLineSuffix) {
  Query query;
  const SearchResult result = TwoCommunityResult();
  const std::string line = FormatResultLine("1", query, result, true);
  const std::string communities = FormatCommunitiesJson(result);
  const std::string suffix = "\"communities\": " + communities + "}\n";
  ASSERT_GE(line.size(), suffix.size());
  EXPECT_EQ(line.substr(line.size() - suffix.size()), suffix);
}

TEST(FormatTest, EmptyResult) {
  Query query;
  const SearchResult empty;
  EXPECT_EQ(FormatCommunitiesJson(empty), "[]");
}

TEST(FormatTest, ErrorLineEscapesMessage) {
  const std::string line =
      FormatErrorLine("7", "bad \"value\"\nline two", kErrorKindParse);
  EXPECT_EQ(line,
            "{\"id\": 7, \"error\": \"bad \\\"value\\\"\\nline two\", "
            "\"kind\": \"parse\"}\n");
}

TEST(FormatTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
}

// The parser accepts what the formatter emits — a round-trip guard for
// the shared-protocol invariant.
TEST(FormatTest, ErrorLineReparses) {
  const std::string line = FormatErrorLine("\"id with spaces\"",
                                           "message", kErrorKindInvalid);
  ParsedRequest request;
  std::string error;
  // Error lines are replies, not requests, but they are flat JSON objects
  // with string values — the scanner must not choke on its own output.
  // (They parse as a query with all fields defaulted: "error"/"kind" are
  // unknown request fields.)
  ASSERT_TRUE(ParseRequestLine(line.substr(0, line.size() - 1), 1, &request,
                               &error))
      << error;
  EXPECT_EQ(request.id_json, "\"id with spaces\"");
}

}  // namespace
}  // namespace ticl
