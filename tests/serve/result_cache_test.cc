// Unit tests for the delta-aware result cache: LRU/budget mechanics, TTL
// with an injected clock, the DeltaImpact keep rule, and the coalescing
// map. The end-to-end behaviour (does the engine serve *correct* answers
// from kept entries?) is owned by the churn oracle in engine_test.cc.

#include "serve/result_cache.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace ticl {
namespace {

std::shared_ptr<const SearchResult> MakeResult(
    std::initializer_list<std::size_t> community_sizes) {
  auto result = std::make_shared<SearchResult>();
  VertexId next = 0;
  for (const std::size_t size : community_sizes) {
    Community c;
    for (std::size_t i = 0; i < size; ++i) c.members.push_back(next++);
    c.influence = static_cast<double>(size);
    result->communities.push_back(std::move(c));
  }
  return result;
}

CacheEntryMeta Meta(VertexId k, bool total_weight_sensitive = false) {
  return CacheEntryMeta{k, total_weight_sensitive};
}

TEST(ResultCacheTest, LookupMissInsertHit) {
  ResultCache cache(ResultCacheOptions{});
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  const auto result = MakeResult({3});
  EXPECT_EQ(cache.Insert("a", Meta(2), result),
            ResultCache::InsertOutcome::kInserted);
  EXPECT_EQ(cache.Lookup("a"), result);
  EXPECT_EQ(cache.charge(), 3u);
}

TEST(ResultCacheTest, DisabledWhenBudgetZero) {
  ResultCacheOptions options;
  options.member_budget = 0;
  ResultCache cache(options);
  EXPECT_FALSE(cache.enabled());
}

TEST(ResultCacheTest, DuplicateKeepsIncumbent) {
  ResultCache cache(ResultCacheOptions{});
  const auto first = MakeResult({2});
  const auto second = MakeResult({5});
  EXPECT_EQ(cache.Insert("a", Meta(2), first),
            ResultCache::InsertOutcome::kInserted);
  EXPECT_EQ(cache.Insert("a", Meta(2), second),
            ResultCache::InsertOutcome::kDuplicate);
  EXPECT_EQ(cache.Lookup("a"), first);
}

TEST(ResultCacheTest, OversizedResultIsUncacheable) {
  ResultCacheOptions options;
  options.member_budget = 4;
  ResultCache cache(options);
  EXPECT_EQ(cache.Insert("big", Meta(2), MakeResult({5})),
            ResultCache::InsertOutcome::kUncacheable);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.charge(), 0u);
}

TEST(ResultCacheTest, LruEvictsOldestFirstBySize) {
  ResultCacheOptions options;
  options.member_budget = 10;
  ResultCache cache(options);
  cache.Insert("a", Meta(2), MakeResult({4}));
  cache.Insert("b", Meta(2), MakeResult({4}));
  EXPECT_NE(cache.Lookup("a"), nullptr);  // bump a to MRU
  cache.Insert("c", Meta(2), MakeResult({4}));  // 12 > 10: evict b
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_LE(cache.charge(), 10u);
}

TEST(ResultCacheTest, NegativeEntriesChargeOneAndCountHits) {
  ResultCache cache(ResultCacheOptions{});
  cache.Insert("none", Meta(7), MakeResult({}));
  EXPECT_EQ(cache.charge(), 1u);
  const auto hit = cache.Lookup("none");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->communities.empty());
  EXPECT_EQ(cache.counters().negative_hits, 1u);
}

TEST(ResultCacheTest, TtlExpiresEntriesLazily) {
  // Injected clock: no sleeping. Entries live exactly ttl_ms.
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  ResultCacheOptions options;
  options.ttl_ms = 100;
  options.clock_for_test = [now] { return *now; };
  ResultCache cache(options);

  cache.Insert("a", Meta(2), MakeResult({3}));
  *now += std::chrono::milliseconds(99);
  EXPECT_NE(cache.Lookup("a"), nullptr);  // still fresh
  *now += std::chrono::milliseconds(1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);  // at the deadline: expired
  EXPECT_EQ(cache.counters().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.charge(), 0u);

  // Re-inserting restarts the clock from the (advanced) now.
  cache.Insert("a", Meta(2), MakeResult({3}));
  *now += std::chrono::milliseconds(50);
  EXPECT_NE(cache.Lookup("a"), nullptr);
}

TEST(ResultCacheTest, HugeTtlSaturatesInsteadOfExpiringInstantly) {
  // A TTL beyond the clock's representable range means "effectively
  // never expires"; an unguarded now + ttl would wrap past the epoch and
  // expire every entry on its first lookup.
  ResultCacheOptions options;
  options.ttl_ms = ~0ull;
  ResultCache cache(options);  // real clock on purpose
  cache.Insert("a", Meta(2), MakeResult({3}));
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.counters().expired, 0u);
}

TEST(ResultCacheTest, ZeroTtlNeverExpires) {
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  ResultCacheOptions options;
  options.ttl_ms = 0;
  options.clock_for_test = [now] { return *now; };
  ResultCache cache(options);
  cache.Insert("a", Meta(2), MakeResult({3}));
  *now += std::chrono::hours(10000);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.counters().expired, 0u);
}

TEST(DeltaImpactTest, EvictsTruthTable) {
  // Edits inside the 3-and-below cores, cores crossed at levels [5, 6],
  // weights moved somewhere.
  DeltaImpact impact;
  impact.any_core_crossed = true;
  impact.crossed_min = 5;
  impact.crossed_max = 6;
  impact.evict_k_le = 3;
  impact.total_weight_changed = true;

  EXPECT_TRUE(impact.Evicts(Meta(1)));   // under evict_k_le
  EXPECT_TRUE(impact.Evicts(Meta(3)));   // at evict_k_le
  EXPECT_FALSE(impact.Evicts(Meta(4)));  // between the two ranges: kept
  EXPECT_TRUE(impact.Evicts(Meta(5)));   // crossed range
  EXPECT_TRUE(impact.Evicts(Meta(6)));
  EXPECT_FALSE(impact.Evicts(Meta(7)));  // above everything: kept
  // Balanced density consults w(V): weight churn evicts it at any k.
  EXPECT_TRUE(impact.Evicts(Meta(7, /*total_weight_sensitive=*/true)));

  DeltaImpact edges_only;
  edges_only.evict_k_le = 2;
  EXPECT_TRUE(edges_only.Evicts(Meta(2)));
  EXPECT_FALSE(edges_only.Evicts(Meta(3)));
  // No weight churn: balanced density follows the normal k rule.
  EXPECT_FALSE(edges_only.Evicts(Meta(3, /*total_weight_sensitive=*/true)));

  const DeltaImpact empty;  // an all-weights-outside-any-core delta
  EXPECT_FALSE(empty.Evicts(Meta(1)));
}

TEST(ResultCacheTest, InvalidateForDeltaSweepsAndCounts) {
  ResultCache cache(ResultCacheOptions{});
  cache.Insert("k2", Meta(2), MakeResult({3}));
  cache.Insert("k4", Meta(4), MakeResult({4}));
  cache.Insert("k7", Meta(7), MakeResult({5}));
  cache.Insert("bd7", Meta(7, /*total_weight_sensitive=*/true),
               MakeResult({5}));

  DeltaImpact impact;
  impact.evict_k_le = 2;
  impact.total_weight_changed = true;
  cache.InvalidateForDelta(impact);

  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k4"), nullptr);
  EXPECT_NE(cache.Lookup("k7"), nullptr);
  EXPECT_EQ(cache.Lookup("bd7"), nullptr);
  EXPECT_EQ(cache.counters().partial_evicted, 2u);
  EXPECT_EQ(cache.counters().partial_kept, 2u);
  EXPECT_EQ(cache.charge(), 9u);  // k4 + k7 remain
}

TEST(ResultCacheTest, ClearDropsEverythingWithoutPartialCounts) {
  ResultCache cache(ResultCacheOptions{});
  cache.Insert("a", Meta(2), MakeResult({3}));
  cache.Insert("b", Meta(3), MakeResult({4}));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.charge(), 0u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.counters().partial_evicted, 0u);
  EXPECT_EQ(cache.counters().partial_kept, 0u);
}

TEST(ResultCacheTest, PendingMapLifecycle) {
  ResultCache cache(ResultCacheOptions{});
  EXPECT_EQ(cache.FindPending("a"), nullptr);
  auto pending = std::make_shared<PendingSolve>();
  cache.AddPending("a", pending);
  EXPECT_EQ(cache.FindPending("a"), pending);

  // RemovePending is identity-checked: a different PendingSolve for the
  // same key (post-delta re-entry) is not removed by the old owner.
  auto other = std::make_shared<PendingSolve>();
  cache.RemovePending("a", other);
  EXPECT_EQ(cache.FindPending("a"), pending);
  cache.RemovePending("a", pending);
  EXPECT_EQ(cache.FindPending("a"), nullptr);

  cache.AddPending("b", pending);
  cache.ClearPending();
  EXPECT_EQ(cache.FindPending("b"), nullptr);
}

}  // namespace
}  // namespace ticl
