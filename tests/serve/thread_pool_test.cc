#include "serve/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitCoversInFlightJobs) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(pool.Submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      ++finished;
    }));
  }
  // Wait must block until jobs have *finished*, not merely been dequeued.
  pool.Wait();
  EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

// Regression: Submit after shutdown used to TICL_CHECK-abort the whole
// process (a teardown race for callers holding the pool); it now reports
// rejection and drops the job.
TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedNotFatal) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);  // queued work drained before the join
  EXPECT_FALSE(pool.Submit([&counter] { ++counter; }));
  EXPECT_EQ(counter.load(), 1);  // rejected job never ran
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call (and the destructor after it) must not
                    // double-join
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, SubmitRacingShutdownEitherRunsOrRejects) {
  // Hammer the teardown race the serve layer hits: submitters racing
  // Shutdown. Every accepted job must run; rejected ones must not.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> accepted{0};
    std::atomic<int> executed{0};
    ThreadPool pool(2);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&pool, &accepted, &executed] {
        for (int i = 0; i < 50; ++i) {
          if (pool.Submit([&executed] { ++executed; })) ++accepted;
        }
      });
    }
    pool.Shutdown();
    for (std::thread& s : submitters) s.join();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerThreads) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 25; ++i) {
        EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace ticl
