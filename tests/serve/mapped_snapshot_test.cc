// Zero-copy snapshot loading: the mapped Graph/CoreIndex must expose
// pointers into the mapping itself (the acceptance bar for "no copy"), and
// every solver must return bit-identical results on a mapped graph and the
// equivalent heap-built one.

#include "serve/mapped_snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ticl_mapped_snapshot_test_" + name;
}

Graph WeightedChungLu(std::uint64_t seed) {
  ChungLuOptions cl;
  cl.num_vertices = 500;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

std::string SaveWithIndex(const Graph& g, const std::string& name) {
  const CoreIndex index(g);
  SaveSnapshotOptions options;
  options.core_index = &index;
  const std::string path = TempPath(name);
  std::string error;
  EXPECT_TRUE(SaveSnapshot(path, g, options, &error)) << error;
  return path;
}

bool InMapping(const MappedSnapshot& snapshot, const void* p) {
  const auto* byte = static_cast<const unsigned char*>(p);
  return byte >= snapshot.data() && byte < snapshot.data() + snapshot.size();
}

TEST(MappedSnapshotTest, GraphAndIndexViewTheMappingDirectly) {
  const Graph original = TwoTrianglesAndK4();
  const std::string path = SaveWithIndex(original, "zero_copy.snap");

  std::string error;
  const auto snapshot = MappedSnapshot::Open(path, &error);
  ASSERT_NE(snapshot, nullptr) << error;
  const Graph& g = snapshot->graph();

  // The acceptance bar for zero-copy: every array the Graph exposes is a
  // pointer into the mapped file region, not a heap copy.
  EXPECT_TRUE(g.is_view());
  EXPECT_TRUE(InMapping(*snapshot, g.offsets().data()));
  EXPECT_TRUE(InMapping(*snapshot, g.adjacency().data()));
  ASSERT_TRUE(g.has_weights());
  EXPECT_TRUE(InMapping(*snapshot, g.weights().data()));

  ASSERT_TRUE(snapshot->has_core_index());
  const CoreIndex& index = snapshot->core_index();
  EXPECT_TRUE(InMapping(*snapshot, index.core_numbers().data()));
  EXPECT_TRUE(InMapping(*snapshot, index.CoreMembers(1).data()));
  EXPECT_EQ(index.degeneracy(), 3u);
  EXPECT_EQ(testing::ToVector(index.CoreMembers(3)),
            testing::Members({6, 7, 8, 9}));

  // And the graph content matches the original bit for bit.
  EXPECT_EQ(testing::ToVector(g.offsets()),
            testing::ToVector(original.offsets()));
  EXPECT_EQ(testing::ToVector(g.adjacency()),
            testing::ToVector(original.adjacency()));
  EXPECT_EQ(testing::ToVector(g.weights()),
            testing::ToVector(original.weights()));
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, RejectsV1Files) {
  const std::string path = TempPath("v1.snap");
  SaveSnapshotOptions options;
  options.version = 1;
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), options, &error))
      << error;
  EXPECT_EQ(MappedSnapshot::Open(path, &error), nullptr);
  EXPECT_NE(error.find("requires format v2"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, RejectsMissingAndCorruptFiles) {
  std::string error;
  EXPECT_EQ(MappedSnapshot::Open(TempPath("nope.snap"), &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 48, SEEK_SET), 0);
  std::fputc(0xa5, f);
  std::fclose(f);
  EXPECT_EQ(MappedSnapshot::Open(path, &error), nullptr);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, SnapshotWithoutIndexStillMaps) {
  const std::string path = TempPath("no_index.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  const auto snapshot = MappedSnapshot::Open(path, &error);
  ASSERT_NE(snapshot, nullptr) << error;
  EXPECT_FALSE(snapshot->has_core_index());
  EXPECT_EQ(snapshot->graph().num_vertices(), 10u);
  std::remove(path.c_str());
}

void ExpectIdenticalResults(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members);
    // Bit-level equality, not epsilon: both runs must do identical
    // arithmetic on identical bytes.
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence);
  }
}

TEST(MappedSnapshotTest, SolversBitIdenticalOnMappedAndHeapGraphs) {
  const Graph built = WeightedChungLu(31);
  const std::string path = SaveWithIndex(built, "equiv.snap");

  std::string error;
  Graph heap;
  ASSERT_TRUE(LoadSnapshot(path, &heap, &error)) << error;
  const auto snapshot = MappedSnapshot::Open(path, &error);
  ASSERT_NE(snapshot, nullptr) << error;
  const Graph& mapped = snapshot->graph();
  ASSERT_TRUE(snapshot->has_core_index());

  SolveOptions indexed;
  indexed.core_index = &snapshot->core_index();

  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    for (const VertexId k : {2u, 3u}) {
      Query q;
      q.k = k;
      q.r = 4;
      q.aggregation = spec;
      const SearchResult on_heap = Solve(heap, q);
      const SearchResult on_mapped = Solve(mapped, q);
      const SearchResult on_mapped_indexed = Solve(mapped, q, indexed);
      ExpectIdenticalResults(on_heap, on_mapped);
      ExpectIdenticalResults(on_heap, on_mapped_indexed);
      EXPECT_EQ(ValidateResult(mapped, q, on_mapped_indexed), "");
    }
  }
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, EngineServesMappedSnapshotWithPersistedIndex) {
  const Graph built = WeightedChungLu(37);
  const std::string path = SaveWithIndex(built, "engine.snap");

  EngineOptions options;
  options.num_threads = 2;
  std::string error;
  const auto engine = QueryEngine::OpenSnapshot(
      path, SnapshotLoadMode::kMmap, options, &error);
  ASSERT_NE(engine, nullptr) << error;
  EXPECT_TRUE(engine->snapshot_mapped());
  EXPECT_TRUE(engine->index_from_snapshot());
  EXPECT_TRUE(engine->graph().is_view());

  const auto copy_engine = QueryEngine::OpenSnapshot(
      path, SnapshotLoadMode::kCopy, options, &error);
  ASSERT_NE(copy_engine, nullptr) << error;
  EXPECT_FALSE(copy_engine->snapshot_mapped());
  // kCopy deserializes the persisted index too (no decomposition).
  EXPECT_TRUE(copy_engine->index_from_snapshot());

  for (const auto spec : {AggregationSpec::Sum(), AggregationSpec::Min()}) {
    for (const VertexId k : {2u, 3u}) {
      Query q;
      q.k = k;
      q.r = 3;
      q.aggregation = spec;
      const SearchResult direct = Solve(built, q);
      ExpectIdenticalResults(*engine->Run(q).result, direct);
      ExpectIdenticalResults(*copy_engine->Submit(q).get().result, direct);
    }
  }
  std::remove(path.c_str());
}

TEST(MappedSnapshotTest, EngineRejectsUnweightedSnapshot) {
  const std::string path = TempPath("unweighted.snap");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, testing::CycleGraph(6), &error)) << error;
  for (const SnapshotLoadMode mode :
       {SnapshotLoadMode::kMmap, SnapshotLoadMode::kCopy}) {
    EXPECT_EQ(QueryEngine::OpenSnapshot(path, mode, {}, &error), nullptr);
    EXPECT_NE(error.find("weights"), std::string::npos) << error;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ticl
