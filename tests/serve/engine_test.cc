#include "serve/engine.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "graph/graph_delta.h"
#include "serve/snapshot.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::ToVector;
using testing::TwoTrianglesAndK4;

Graph WeightedChungLu(std::uint64_t seed, VertexId n = 600) {
  ChungLuOptions cl;
  cl.num_vertices = n;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

/// The mixed workload used across these tests: every aggregation family,
/// TIC and TONIC, constrained and unconstrained.
std::vector<Query> MixedQueries() {
  std::vector<Query> queries;
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(0.5),
        AggregationSpec::Avg()}) {
    for (const VertexId k : {2u, 3u}) {
      for (const std::uint32_t r : {1u, 4u}) {
        Query q;
        q.k = k;
        q.r = r;
        q.aggregation = spec;
        queries.push_back(q);
      }
    }
  }
  Query constrained;
  constrained.k = 2;
  constrained.r = 3;
  constrained.size_limit = 10;
  constrained.aggregation = AggregationSpec::Avg();
  queries.push_back(constrained);
  Query tonic;
  tonic.k = 2;
  tonic.r = 3;
  tonic.non_overlapping = true;
  tonic.aggregation = AggregationSpec::Sum();
  queries.push_back(tonic);
  return queries;
}

/// The accounting contract documented on EngineStats: every query lands
/// in exactly one outcome counter.
void ExpectOutcomeInvariant(const EngineStats& stats) {
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.cache_coalesced +
                stats.cache_uncacheable,
            stats.queries);
}

void ExpectIdentical(const SearchResult& a, const SearchResult& b,
                     std::size_t query_index) {
  ASSERT_EQ(a.communities.size(), b.communities.size())
      << "query " << query_index;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << "query " << query_index << " community " << i;
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence)
        << "query " << query_index << " community " << i;
  }
}

TEST(CanonicalQueryKeyTest, NormalizesInactiveParameters) {
  Query a;
  a.aggregation = AggregationSpec::Sum();
  Query b = a;
  b.aggregation.alpha = 7.0;  // inactive under sum
  b.aggregation.beta = 9.0;   // inactive under sum
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));

  Query c = a;
  c.aggregation = AggregationSpec::SumSurplus(1.0);
  Query d = a;
  d.aggregation = AggregationSpec::SumSurplus(2.0);
  EXPECT_NE(CanonicalQueryKey(c), CanonicalQueryKey(d));  // alpha active

  Query e = a;
  e.k = 3;
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(e));
}

TEST(QueryEngineTest, MatchesDirectSolveSequentially) {
  Graph g = WeightedChungLu(17);
  const Graph reference = g;  // engine takes ownership of its copy
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const EngineResponse response = engine.Run(queries[i]);
    const SearchResult direct = Solve(reference, queries[i]);
    ExpectIdentical(*response.result, direct, i);
    EXPECT_EQ(ValidateResult(reference, queries[i], *response.result), "");
  }
}

TEST(QueryEngineTest, ConcurrentSubmissionsMatchSequentialSolve) {
  Graph g = WeightedChungLu(23);
  const Graph reference = g;
  EngineOptions options;
  options.num_threads = 4;
  options.cache_member_budget = 0;  // force every run through the solver
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  constexpr int kRepetitions = 3;  // same query in flight multiple times

  std::vector<std::future<EngineResponse>> futures;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Query& q = queries[i % queries.size()];
    const EngineResponse response = futures[i].get();
    const SearchResult direct = Solve(reference, q);
    ExpectIdentical(*response.result, direct, i % queries.size());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * kRepetitions);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(QueryEngineTest, ConcurrentSubmittersWithSharedCache) {
  Graph g = WeightedChungLu(29, 300);
  const Graph reference = g;
  QueryEngine engine(std::move(g), {});

  const std::vector<Query> queries = MixedQueries();
  // Warm the cache sequentially so every threaded run below is a
  // deterministic hit (capacity default comfortably exceeds the batch).
  for (const Query& q : queries) engine.Run(q);

  std::vector<std::thread> submitters;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (const Query& q : queries) {
        const EngineResponse response = engine.Run(q);
        if (!response.cache_hit ||
            !ValidateResult(reference, q, *response.result).empty()) {
          failed = true;
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  EXPECT_FALSE(failed.load());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * 5);
  EXPECT_EQ(stats.cache_hits, queries.size() * 4);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(QueryEngineTest, CacheHitSharesTheResultObject) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 2;
  q.r = 2;
  q.aggregation = AggregationSpec::Sum();
  const EngineResponse first = engine.Run(q);
  EXPECT_FALSE(first.cache_hit);
  const EngineResponse second = engine.Run(q);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.result.get(), second.result.get());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

// Size-aware cache accounting on the hand-analyzed fixture. Under sum at
// k = 2 the top communities are K4 (4 members), {7,8,9} (3), {6,8,9} (3),
// {6,7,9} (3), {0..5} (6) — so the member charge of a top-r result is
// r=1: 4, r=2: 7, r=3: 10, r=5: 19.
TEST(QueryEngineTest, LruEvictsLeastRecentlyUsedBySize) {
  EngineOptions options;
  options.cache_member_budget = 14;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query a, b, c;
  a.k = 2;
  a.r = 1;  // charge 4
  b.k = 2;
  b.r = 2;  // charge 7
  c.k = 2;
  c.r = 3;  // charge 10

  engine.Run(a);                            // cache: [a]      charge  4
  engine.Run(b);                            // cache: [b, a]   charge 11
  EXPECT_TRUE(engine.Run(a).cache_hit);     // cache: [a, b]
  engine.Run(c);                            // 21 > 14: evicts b -> [c, a]
  EXPECT_TRUE(engine.Run(a).cache_hit);     // a survived -> [a, c]
  EXPECT_FALSE(engine.Run(b).cache_hit);    // b was evicted
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_LE(stats.cache_charge, 14u);
}

TEST(QueryEngineTest, SizeAwareCacheEvictsOneHugeResultBeforeManySmall) {
  EngineOptions options;
  options.cache_member_budget = 25;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 — most of the budget
  huge.k = 2;
  huge.r = 5;
  Query small_a;  // charge 4
  small_a.k = 2;
  small_a.r = 1;
  Query small_b;  // charge 4 (K4 is the only 3-core)
  small_b.k = 3;
  small_b.r = 1;

  engine.Run(huge);                              // charge 19
  engine.Run(small_a);                           // charge 23
  engine.Run(small_b);                           // 27 > 25: evict huge only
  EXPECT_TRUE(engine.Run(small_a).cache_hit);    // both small ones survived
  EXPECT_TRUE(engine.Run(small_b).cache_hit);
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  // The one huge entry is what paid (probing it re-inserts, so last).
  EXPECT_FALSE(engine.Run(huge).cache_hit);
}

TEST(QueryEngineTest, ResultLargerThanBudgetIsServedUncached) {
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 > budget: caching it would evict everything
  huge.k = 2;
  huge.r = 5;
  Query small;  // charge 4
  small.k = 2;
  small.r = 1;

  engine.Run(small);
  engine.Run(huge);
  EXPECT_FALSE(engine.Run(huge).cache_hit);   // never cached
  EXPECT_TRUE(engine.Run(small).cache_hit);   // untouched by the huge miss
  EXPECT_EQ(engine.stats().cache_evictions, 0u);
}

TEST(QueryEngineTest, CacheDisabledNeverHits) {
  EngineOptions options;
  options.cache_member_budget = 0;
  QueryEngine engine(TwoTrianglesAndK4(), options);
  Query q;
  q.k = 2;
  engine.Run(q);
  EXPECT_FALSE(engine.Run(q).cache_hit);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(QueryEngineTest, ValidateFlagsBadQueries) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 0;  // invalid: k >= 1 required
  EXPECT_NE(engine.Validate(q), "");
  q.k = 2;
  EXPECT_EQ(engine.Validate(q), "");
}

TEST(QueryEngineTest, OpenSnapshotRejectsBadEpsilonCleanly) {
  const std::string path = ::testing::TempDir() + "/bad_epsilon.snap";
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  EngineOptions options;
  options.solve.epsilon = 1.0;  // would TICL_CHECK-abort inside Solve
  const auto engine = QueryEngine::OpenSnapshot(
      path, SnapshotLoadMode::kCopy, options, &error);
  EXPECT_EQ(engine, nullptr);
  EXPECT_NE(error.find("epsilon"), std::string::npos) << error;
}

TEST(QueryEngineTest, UncacheableResultsAreCounted) {
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 > budget: served uncached
  huge.k = 2;
  huge.r = 5;
  engine.Run(huge);
  engine.Run(huge);  // still a miss, still uncacheable
  Query small;  // charge 4: cached fine
  small.k = 2;
  small.r = 1;
  engine.Run(small);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_uncacheable, 2u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

TEST(QueryEngineTest, ConcurrentMissesOnSameKeyCoalesceToOneSolve) {
  // Hold the first (and only allowed) Solve open until the second
  // submission has provably attached to the pending entry; then release.
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  EngineOptions options;
  options.num_threads = 2;
  options.solve_started_hook_for_test = [release_future] {
    release_future.wait();
  };
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query q;
  q.k = 2;
  q.r = 2;
  auto first = engine.Submit(q);
  auto second = engine.Submit(q);
  // The second submission either coalesced onto the first's pending solve
  // or (rare scheduling) became the owner while the first waits — either
  // way exactly one solve may start; wait until both are accounted for.
  while (true) {
    const EngineStats stats = engine.stats();
    if (stats.queries == 2 && stats.cache_coalesced == 1) break;
    std::this_thread::yield();
  }
  release.set_value();

  const EngineResponse a = first.get();
  const EngineResponse b = second.get();
  // One Solve ran; the coalesced waiter shares the very result object.
  EXPECT_EQ(a.result.get(), b.result.get());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_coalesced, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.cache_coalesced,
            stats.queries);
}

// -- Outcome accounting, TTL, negative caching ------------------------------

TEST(QueryEngineCacheTest, EveryQueryLandsInExactlyOneOutcomeCounter) {
  // A workload that exercises all four outcomes: hits, misses, a
  // coalesced wait (covered by the dedicated dedup test), and both
  // uncacheable flavours (oversized result; disabled cache).
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query small;  // charge 4: cacheable
  small.k = 2;
  small.r = 1;
  Query huge;  // charge 19 > budget: uncacheable
  huge.k = 2;
  huge.r = 5;

  engine.Run(small);                        // miss
  EXPECT_TRUE(engine.Run(small).cache_hit); // hit
  engine.Run(huge);                         // uncacheable (reclassified)
  engine.Run(huge);                         // uncacheable again
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_uncacheable, 2u);
  ExpectOutcomeInvariant(stats);

  // Disabled cache: every solve is an uncacheable outcome, never a miss.
  EngineOptions disabled;
  disabled.cache_member_budget = 0;
  disabled.num_threads = 1;
  QueryEngine uncached(TwoTrianglesAndK4(), disabled);
  uncached.Run(small);
  uncached.Run(small);
  const EngineStats uncached_stats = uncached.stats();
  EXPECT_EQ(uncached_stats.queries, 2u);
  EXPECT_EQ(uncached_stats.cache_misses, 0u);
  EXPECT_EQ(uncached_stats.cache_uncacheable, 2u);
  ExpectOutcomeInvariant(uncached_stats);
}

TEST(QueryEngineCacheTest, NegativeResultsAreCachedAndCounted) {
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query none;  // k above the degeneracy (3): zero communities
  none.k = 5;
  none.r = 3;
  const EngineResponse first = engine.Run(none);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.result->communities.empty());

  // The recomputation the negative entry exists to avoid:
  const EngineResponse second = engine.Run(none);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.get(), first.result.get());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_negative_hits, 1u);
  EXPECT_EQ(stats.cache_charge, 1u);  // floored, not free
  ExpectOutcomeInvariant(stats);
}

TEST(QueryEngineCacheTest, TtlExpiresEntriesWithInjectedClock) {
  auto now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  EngineOptions options;
  options.num_threads = 1;
  options.cache_ttl_ms = 100;
  options.cache_clock_for_test = [now] { return *now; };
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query q;
  q.k = 2;
  q.r = 1;
  engine.Run(q);
  *now += std::chrono::milliseconds(99);
  EXPECT_TRUE(engine.Run(q).cache_hit);  // still fresh
  *now += std::chrono::milliseconds(1);
  const EngineResponse after = engine.Run(q);  // 100ms old: expired
  EXPECT_FALSE(after.cache_hit);
  *now += std::chrono::milliseconds(50);
  EXPECT_TRUE(engine.Run(q).cache_hit);  // the re-solve re-cached it

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_expired, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
  ExpectOutcomeInvariant(stats);
}

// -- ApplyDelta -------------------------------------------------------------

TEST(QueryEngineDeltaTest, ApplyDeltaMatchesFreshEngineBitForBit) {
  // The acceptance oracle: ~1% random churn, then every query answer and
  // the whole CoreIndex must equal a from-scratch engine on the same
  // edited graph.
  Graph g = WeightedChungLu(41, 800);
  const GraphDelta delta =
      RandomDelta(g, /*seed=*/7, /*inserts=*/g.num_edges() / 100,
                  /*deletes=*/g.num_edges() / 100, /*weight_updates=*/10);
  const Graph edited = ApplyDeltaToGraph(g, delta);

  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_TRUE(engine.graph().fingerprint() == edited.fingerprint());
  QueryEngine fresh(edited, options);
  ASSERT_EQ(engine.core_index().degeneracy(),
            fresh.core_index().degeneracy());
  EXPECT_EQ(ToVector(engine.core_index().core_numbers()),
            ToVector(fresh.core_index().core_numbers()));
  for (VertexId k = 1; k <= fresh.core_index().degeneracy(); ++k) {
    EXPECT_EQ(ToVector(engine.core_index().CoreMembers(k)),
              ToVector(fresh.core_index().CoreMembers(k)))
        << "level " << k;
  }

  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const EngineResponse maintained = engine.Run(queries[i]);
    const EngineResponse rebuilt = fresh.Run(queries[i]);
    ExpectIdentical(*maintained.result, *rebuilt.result, i);
  }
  EXPECT_EQ(engine.stats().deltas_applied, 1u);
}

TEST(QueryEngineDeltaTest, ApplyDeltaInvalidatesTheCache) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 2;
  q.r = 1;
  q.aggregation = AggregationSpec::Sum();
  const EngineResponse before = engine.Run(q);
  EXPECT_TRUE(engine.Run(q).cache_hit);

  // Isolate vertex 9 (weight 100): the old top answer (K4, influence 106)
  // is gone — the best sum 2-core is now {0..5} at 78.
  GraphDelta delta;
  delta.delete_edges = {Edge{6, 9}, Edge{7, 9}, Edge{8, 9}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  const EngineResponse after = engine.Run(q);
  EXPECT_FALSE(after.cache_hit);  // cache was dropped, this re-solved
  EXPECT_NE(before.result->communities[0].influence,
            after.result->communities[0].influence);
  EXPECT_EQ(engine.stats().cache_charge,
            after.result->communities[0].members.size());
}

TEST(QueryEngineDeltaTest, InvalidDeltaLeavesServingStateUntouched) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  const GraphFingerprint before = engine.graph().fingerprint();
  GraphDelta bad;
  bad.insert_edges = {Edge{0, 1}};  // already present
  std::string error;
  EXPECT_FALSE(engine.ApplyDelta(bad, &error));
  EXPECT_NE(error, "");
  EXPECT_TRUE(engine.graph().fingerprint() == before);
  EXPECT_EQ(engine.stats().deltas_applied, 0u);
}

TEST(QueryEngineDeltaTest, MmapEngineBecomesHeapOwnedAfterDelta) {
  Graph g = WeightedChungLu(53, 300);
  const std::string path = ::testing::TempDir() + "/delta_mmap.snap";
  std::string error;
  const CoreIndex index(g);
  SaveSnapshotOptions save;
  save.core_index = &index;
  ASSERT_TRUE(SaveSnapshot(path, g, save, &error)) << error;

  auto engine = QueryEngine::OpenSnapshot(path, SnapshotLoadMode::kMmap, {},
                                          &error);
  ASSERT_NE(engine, nullptr) << error;
  EXPECT_TRUE(engine->snapshot_mapped());
  EXPECT_TRUE(engine->index_from_snapshot());

  const GraphDelta delta = RandomDelta(g, 3, 5, 5, 0);
  ASSERT_TRUE(engine->ApplyDelta(delta, &error)) << error;
  EXPECT_FALSE(engine->snapshot_mapped());
  EXPECT_FALSE(engine->index_from_snapshot());

  // Still answers correctly against the edited graph.
  const Graph edited = ApplyDeltaToGraph(g, delta);
  Query q;
  q.k = 2;
  q.r = 3;
  const EngineResponse response = engine->Run(q);
  EXPECT_EQ(ValidateResult(edited, q, *response.result), "");
}

TEST(QueryEngineDeltaTest, ConcurrentQueriesDuringApplyDelta) {
  // TSan target: queries race ApplyDelta swaps. Every answer must be
  // valid for *some* serving state (the one the query pinned), and the
  // engine must never crash or deadlock.
  Graph g = WeightedChungLu(61, 400);
  const Graph original = g;
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(std::move(g), options);

  // Precompute the delta chain and each stage's reference graph.
  constexpr int kDeltas = 6;
  std::vector<Graph> stages{original};
  std::vector<GraphDelta> deltas;
  for (int i = 0; i < kDeltas; ++i) {
    const Graph& parent = stages.back();
    deltas.push_back(RandomDelta(parent, 100 + i, 10, 10, 5));
    stages.push_back(ApplyDeltaToGraph(parent, deltas.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_results{0};
  std::vector<std::thread> query_threads;
  for (int t = 0; t < 3; ++t) {
    query_threads.emplace_back([&, t] {
      const std::vector<Query> queries = MixedQueries();
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = queries[i++ % queries.size()];
        const EngineResponse response = engine.Run(q);
        // The answer must validate against at least one chain stage (we
        // cannot know which state the query pinned).
        bool ok = false;
        for (const Graph& stage : stages) {
          if (ValidateResult(stage, q, *response.result).empty()) {
            ok = true;
            break;
          }
        }
        if (!ok) bad_results.fetch_add(1);
      }
    });
  }

  std::string error;
  for (const GraphDelta& delta : deltas) {
    ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;
  }
  stop.store(true);
  for (std::thread& thread : query_threads) thread.join();
  EXPECT_EQ(bad_results.load(), 0);
  EXPECT_EQ(engine.stats().deltas_applied,
            static_cast<std::uint64_t>(kDeltas));

  // After the dust settles the engine answers exactly like a fresh build
  // of the final stage.
  QueryEngine fresh(stages.back(), options);
  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectIdentical(*engine.Run(queries[i]).result,
                    *fresh.Run(queries[i]).result, i);
  }
}

// -- Partial invalidation ---------------------------------------------------

// On the hand-analyzed fixture: vertices 0..5 (two bridged triangles) are
// the 2-core shell, K4 = {6,7,8,9} is the only 3-core. An edit entirely
// inside the shell cannot perturb any k=3 answer.

TEST(QueryEngineDeltaTest, PartialInvalidationKeepsUnaffectedKLevels) {
  Graph g = TwoTrianglesAndK4();
  const Graph reference = g;
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  Query q2;
  q2.k = 2;
  q2.r = 2;
  Query q3;
  q3.k = 3;
  q3.r = 1;
  const EngineResponse before3 = engine.Run(q3);
  engine.Run(q2);
  EXPECT_TRUE(engine.Run(q2).cache_hit);
  EXPECT_TRUE(engine.Run(q3).cache_hit);

  // Insert {0, 3}: both endpoints at core 2, no core number changes (the
  // new triangle {0,2,3} is still only a 2-core). Affected levels: k <= 2.
  GraphDelta delta;
  delta.insert_edges = {Edge{0, 3}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;
  const Graph edited = ApplyDeltaToGraph(reference, delta);

  // k=3 survived the sweep and is served from cache — and the kept entry
  // is exactly what a fresh solve on the edited graph returns.
  const EngineResponse after3 = engine.Run(q3);
  EXPECT_TRUE(after3.cache_hit);
  EXPECT_EQ(after3.result.get(), before3.result.get());
  ExpectIdentical(*after3.result, Solve(edited, q3), 0);

  // k=2 was evicted and re-solves against the edited graph.
  const EngineResponse after2 = engine.Run(q2);
  EXPECT_FALSE(after2.cache_hit);
  ExpectIdentical(*after2.result, Solve(edited, q2), 1);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_partial_kept, 1u);
  EXPECT_EQ(stats.cache_partial_evicted, 1u);
  ExpectOutcomeInvariant(stats);
}

TEST(QueryEngineDeltaTest, CoreCrossingEvictsTheCrossedLevels) {
  Graph g = TwoTrianglesAndK4();
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  Query q2;
  q2.k = 2;
  q2.r = 2;
  Query q3;
  q3.k = 3;
  q3.r = 1;
  engine.Run(q2);
  engine.Run(q3);

  // Delete {8, 9}: K4 degrades to a 4-cycle — all of {6,7,8,9} fall from
  // core 3 to core 2, crossing level 3. Both entries must go: k=3 because
  // its member set changed, k=2 because the edited edge sat inside the
  // 2-core.
  GraphDelta delta;
  delta.delete_edges = {Edge{8, 9}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_FALSE(engine.Run(q3).cache_hit);
  EXPECT_FALSE(engine.Run(q2).cache_hit);
  EXPECT_EQ(engine.stats().cache_partial_kept, 0u);
  EXPECT_EQ(engine.stats().cache_partial_evicted, 2u);
}

TEST(QueryEngineDeltaTest, ReweightEvictsLevelsUpToTheVertexCore) {
  Graph g = TwoTrianglesAndK4();
  const Graph reference = g;
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  Query q2;
  q2.k = 2;
  q2.r = 2;
  Query q3;
  q3.k = 3;
  q3.r = 1;
  engine.Run(q2);
  engine.Run(q3);

  // Reweight vertex 4 (core 2): structure untouched, so only levels
  // k <= 2 can see the new weight.
  GraphDelta delta;
  delta.weight_updates = {WeightUpdate{4, 42.0}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_TRUE(engine.Run(q3).cache_hit);
  EXPECT_FALSE(engine.Run(q2).cache_hit);
  ExpectIdentical(*engine.Run(q2).result,
                  Solve(ApplyDeltaToGraph(reference, delta), q2), 0);

  // Reweight vertex 9 (core 3): now even k=3 answers are suspect.
  GraphDelta high;
  high.weight_updates = {WeightUpdate{9, 1.5}};
  ASSERT_TRUE(engine.ApplyDelta(high, &error)) << error;
  EXPECT_FALSE(engine.Run(q3).cache_hit);
}

TEST(QueryEngineDeltaTest, BalancedDensityIsEvictedOnAnyReweight) {
  Graph g = TwoTrianglesAndK4();
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  // Same k-level, different sensitivity: balanced density consults the
  // whole graph's weight (w(V \ H)), sum does not.
  Query sum3;
  sum3.k = 3;
  sum3.r = 1;
  Query bd3;
  bd3.k = 3;
  bd3.r = 1;
  bd3.aggregation = AggregationSpec::BalancedDensity();
  engine.Run(sum3);
  engine.Run(bd3);

  // Reweight far below the 3-core: sum@3 keeps, balanced-density@3 goes.
  GraphDelta delta;
  delta.weight_updates = {WeightUpdate{0, 99.0}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_TRUE(engine.Run(sum3).cache_hit);
  EXPECT_FALSE(engine.Run(bd3).cache_hit);
}

TEST(QueryEngineDeltaTest, WholesaleClearKillSwitchDisablesPartialKeeps) {
  Graph g = TwoTrianglesAndK4();
  EngineOptions options;
  options.num_threads = 1;
  options.cache_partial_invalidation = false;
  QueryEngine engine(std::move(g), options);

  Query q3;
  q3.k = 3;
  q3.r = 1;
  engine.Run(q3);
  GraphDelta delta;
  delta.insert_edges = {Edge{0, 3}};  // provably cannot touch k=3
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_FALSE(engine.Run(q3).cache_hit);  // dropped anyway: wholesale
  EXPECT_EQ(engine.stats().cache_partial_kept, 0u);
  EXPECT_EQ(engine.stats().cache_partial_evicted, 0u);
}

TEST(QueryEngineDeltaTest, ChurnOracleCacheServedAnswersAreExact) {
  // The acceptance oracle for partial invalidation: a random delta stream
  // interleaved with queries across k/r/aggregation; *every* engine
  // answer — cache-served or fresh — must be bit-identical to a fresh
  // Solve on the current graph. A single wrong keep-decision surfaces
  // here as a stale answer.
  Graph g = WeightedChungLu(71, 500);
  Graph current = g;
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(std::move(g), options);

  std::vector<Query> queries = MixedQueries();
  {
    // High k-levels — the entries deltas in a low-core shell should keep —
    // plus one far above the degeneracy (a negative entry that survives
    // every delta below it).
    Query high;
    high.r = 2;
    for (const VertexId k : {4u, 5u, 6u}) {
      high.k = k;
      queries.push_back(high);
    }
    Query none;
    none.k = 40;
    none.r = 1;
    queries.push_back(none);
  }

  constexpr int kRounds = 8;
  std::string error;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const EngineResponse response = engine.Run(queries[i]);
      ExpectIdentical(*response.result, Solve(current, queries[i]), i);
    }
    const GraphDelta delta = RandomDelta(current, /*seed=*/1000 + round,
                                         /*inserts=*/4, /*deletes=*/4,
                                         /*weight_updates=*/2);
    ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;
    current = ApplyDeltaToGraph(current, delta);
  }

  const EngineStats stats = engine.stats();
  // The k=40 negative entry is untouchable by any delta below the
  // degeneracy: it must have been kept by every sweep and hit every round
  // after the first.
  EXPECT_GE(stats.cache_partial_kept,
            static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_GT(stats.cache_partial_evicted, 0u);
  EXPECT_GE(stats.cache_hits, static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_GE(stats.cache_negative_hits,
            static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(stats.deltas_applied, static_cast<std::uint64_t>(kRounds));
  ExpectOutcomeInvariant(stats);
}

// -- ApplyDelta TOCTOU ------------------------------------------------------

TEST(QueryEngineDeltaTest, RacingSiblingDeltasCannotApplyAgainstWrongBase) {
  // Two delta snapshot files recorded against the *same* parent race into
  // one engine. Whichever enters ApplyDelta's critical section second
  // must fail the (in-section) parent re-check: with the check outside
  // the lock — the old code — both pass it before either swap lands, and
  // the loser silently applies edits against a base it never saw.
  Graph g = WeightedChungLu(83, 2000);
  const GraphDelta delta_a = RandomDelta(g, /*seed=*/11, 5, 5, 2);
  const GraphDelta delta_b = RandomDelta(g, /*seed=*/22, 5, 5, 2);
  const std::string path_a = ::testing::TempDir() + "/toctou_a.snap";
  const std::string path_b = ::testing::TempDir() + "/toctou_b.snap";
  std::string error;
  ASSERT_TRUE(SaveDeltaSnapshot(path_a, delta_a, g.fingerprint(), &error))
      << error;
  ASSERT_TRUE(SaveDeltaSnapshot(path_b, delta_b, g.fingerprint(), &error))
      << error;

  constexpr int kRounds = 4;  // derandomize scheduling a little
  for (int round = 0; round < kRounds; ++round) {
    Graph copy = g;
    EngineOptions options;
    options.num_threads = 1;
    QueryEngine engine(std::move(copy), options);

    std::atomic<int> ready{0};
    bool ok_a = false, ok_b = false;
    std::string error_a, error_b;
    const auto race = [&ready, &engine](const std::string& path, bool* ok,
                                        std::string* err) {
      ++ready;
      while (ready.load() < 2) std::this_thread::yield();
      *ok = engine.ApplyDeltaSnapshotFile(path, err);
    };
    std::thread ta(race, path_a, &ok_a, &error_a);
    std::thread tb(race, path_b, &ok_b, &error_b);
    ta.join();
    tb.join();

    ASSERT_EQ((ok_a ? 1 : 0) + (ok_b ? 1 : 0), 1)
        << "round " << round << ": both racing deltas applied (a: "
        << error_a << ", b: " << error_b << ")";
    const std::string& loser_error = ok_a ? error_b : error_a;
    EXPECT_NE(loser_error.find("different parent"), std::string::npos)
        << loser_error;
    const GraphDelta& winner = ok_a ? delta_a : delta_b;
    EXPECT_TRUE(engine.graph().fingerprint() ==
                ApplyDeltaToGraph(g, winner).fingerprint());
    EXPECT_EQ(engine.stats().deltas_applied, 1u);
  }
}

}  // namespace
}  // namespace ticl
