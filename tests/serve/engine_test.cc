#include "serve/engine.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

Graph WeightedChungLu(std::uint64_t seed, VertexId n = 600) {
  ChungLuOptions cl;
  cl.num_vertices = n;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

/// The mixed workload used across these tests: every aggregation family,
/// TIC and TONIC, constrained and unconstrained.
std::vector<Query> MixedQueries() {
  std::vector<Query> queries;
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(0.5),
        AggregationSpec::Avg()}) {
    for (const VertexId k : {2u, 3u}) {
      for (const std::uint32_t r : {1u, 4u}) {
        Query q;
        q.k = k;
        q.r = r;
        q.aggregation = spec;
        queries.push_back(q);
      }
    }
  }
  Query constrained;
  constrained.k = 2;
  constrained.r = 3;
  constrained.size_limit = 10;
  constrained.aggregation = AggregationSpec::Avg();
  queries.push_back(constrained);
  Query tonic;
  tonic.k = 2;
  tonic.r = 3;
  tonic.non_overlapping = true;
  tonic.aggregation = AggregationSpec::Sum();
  queries.push_back(tonic);
  return queries;
}

void ExpectIdentical(const SearchResult& a, const SearchResult& b,
                     std::size_t query_index) {
  ASSERT_EQ(a.communities.size(), b.communities.size())
      << "query " << query_index;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << "query " << query_index << " community " << i;
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence)
        << "query " << query_index << " community " << i;
  }
}

TEST(CanonicalQueryKeyTest, NormalizesInactiveParameters) {
  Query a;
  a.aggregation = AggregationSpec::Sum();
  Query b = a;
  b.aggregation.alpha = 7.0;  // inactive under sum
  b.aggregation.beta = 9.0;   // inactive under sum
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));

  Query c = a;
  c.aggregation = AggregationSpec::SumSurplus(1.0);
  Query d = a;
  d.aggregation = AggregationSpec::SumSurplus(2.0);
  EXPECT_NE(CanonicalQueryKey(c), CanonicalQueryKey(d));  // alpha active

  Query e = a;
  e.k = 3;
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(e));
}

TEST(QueryEngineTest, MatchesDirectSolveSequentially) {
  Graph g = WeightedChungLu(17);
  const Graph reference = g;  // engine takes ownership of its copy
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const EngineResponse response = engine.Run(queries[i]);
    const SearchResult direct = Solve(reference, queries[i]);
    ExpectIdentical(*response.result, direct, i);
    EXPECT_EQ(ValidateResult(reference, queries[i], *response.result), "");
  }
}

TEST(QueryEngineTest, ConcurrentSubmissionsMatchSequentialSolve) {
  Graph g = WeightedChungLu(23);
  const Graph reference = g;
  EngineOptions options;
  options.num_threads = 4;
  options.cache_member_budget = 0;  // force every run through the solver
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  constexpr int kRepetitions = 3;  // same query in flight multiple times

  std::vector<std::future<EngineResponse>> futures;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Query& q = queries[i % queries.size()];
    const EngineResponse response = futures[i].get();
    const SearchResult direct = Solve(reference, q);
    ExpectIdentical(*response.result, direct, i % queries.size());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * kRepetitions);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(QueryEngineTest, ConcurrentSubmittersWithSharedCache) {
  Graph g = WeightedChungLu(29, 300);
  const Graph reference = g;
  QueryEngine engine(std::move(g), {});

  const std::vector<Query> queries = MixedQueries();
  // Warm the cache sequentially so every threaded run below is a
  // deterministic hit (capacity default comfortably exceeds the batch).
  for (const Query& q : queries) engine.Run(q);

  std::vector<std::thread> submitters;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (const Query& q : queries) {
        const EngineResponse response = engine.Run(q);
        if (!response.cache_hit ||
            !ValidateResult(reference, q, *response.result).empty()) {
          failed = true;
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  EXPECT_FALSE(failed.load());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * 5);
  EXPECT_EQ(stats.cache_hits, queries.size() * 4);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(QueryEngineTest, CacheHitSharesTheResultObject) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 2;
  q.r = 2;
  q.aggregation = AggregationSpec::Sum();
  const EngineResponse first = engine.Run(q);
  EXPECT_FALSE(first.cache_hit);
  const EngineResponse second = engine.Run(q);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.result.get(), second.result.get());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

// Size-aware cache accounting on the hand-analyzed fixture. Under sum at
// k = 2 the top communities are K4 (4 members), {7,8,9} (3), {6,8,9} (3),
// {6,7,9} (3), {0..5} (6) — so the member charge of a top-r result is
// r=1: 4, r=2: 7, r=3: 10, r=5: 19.
TEST(QueryEngineTest, LruEvictsLeastRecentlyUsedBySize) {
  EngineOptions options;
  options.cache_member_budget = 14;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query a, b, c;
  a.k = 2;
  a.r = 1;  // charge 4
  b.k = 2;
  b.r = 2;  // charge 7
  c.k = 2;
  c.r = 3;  // charge 10

  engine.Run(a);                            // cache: [a]      charge  4
  engine.Run(b);                            // cache: [b, a]   charge 11
  EXPECT_TRUE(engine.Run(a).cache_hit);     // cache: [a, b]
  engine.Run(c);                            // 21 > 14: evicts b -> [c, a]
  EXPECT_TRUE(engine.Run(a).cache_hit);     // a survived -> [a, c]
  EXPECT_FALSE(engine.Run(b).cache_hit);    // b was evicted
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_LE(stats.cache_charge, 14u);
}

TEST(QueryEngineTest, SizeAwareCacheEvictsOneHugeResultBeforeManySmall) {
  EngineOptions options;
  options.cache_member_budget = 25;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 — most of the budget
  huge.k = 2;
  huge.r = 5;
  Query small_a;  // charge 4
  small_a.k = 2;
  small_a.r = 1;
  Query small_b;  // charge 4 (K4 is the only 3-core)
  small_b.k = 3;
  small_b.r = 1;

  engine.Run(huge);                              // charge 19
  engine.Run(small_a);                           // charge 23
  engine.Run(small_b);                           // 27 > 25: evict huge only
  EXPECT_TRUE(engine.Run(small_a).cache_hit);    // both small ones survived
  EXPECT_TRUE(engine.Run(small_b).cache_hit);
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  // The one huge entry is what paid (probing it re-inserts, so last).
  EXPECT_FALSE(engine.Run(huge).cache_hit);
}

TEST(QueryEngineTest, ResultLargerThanBudgetIsServedUncached) {
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 > budget: caching it would evict everything
  huge.k = 2;
  huge.r = 5;
  Query small;  // charge 4
  small.k = 2;
  small.r = 1;

  engine.Run(small);
  engine.Run(huge);
  EXPECT_FALSE(engine.Run(huge).cache_hit);   // never cached
  EXPECT_TRUE(engine.Run(small).cache_hit);   // untouched by the huge miss
  EXPECT_EQ(engine.stats().cache_evictions, 0u);
}

TEST(QueryEngineTest, CacheDisabledNeverHits) {
  EngineOptions options;
  options.cache_member_budget = 0;
  QueryEngine engine(TwoTrianglesAndK4(), options);
  Query q;
  q.k = 2;
  engine.Run(q);
  EXPECT_FALSE(engine.Run(q).cache_hit);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(QueryEngineTest, ValidateFlagsBadQueries) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 0;  // invalid: k >= 1 required
  EXPECT_NE(engine.Validate(q), "");
  q.k = 2;
  EXPECT_EQ(engine.Validate(q), "");
}

}  // namespace
}  // namespace ticl
