#include "serve/engine.h"

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "graph/graph_delta.h"
#include "serve/snapshot.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::ToVector;
using testing::TwoTrianglesAndK4;

Graph WeightedChungLu(std::uint64_t seed, VertexId n = 600) {
  ChungLuOptions cl;
  cl.num_vertices = n;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

/// The mixed workload used across these tests: every aggregation family,
/// TIC and TONIC, constrained and unconstrained.
std::vector<Query> MixedQueries() {
  std::vector<Query> queries;
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(0.5),
        AggregationSpec::Avg()}) {
    for (const VertexId k : {2u, 3u}) {
      for (const std::uint32_t r : {1u, 4u}) {
        Query q;
        q.k = k;
        q.r = r;
        q.aggregation = spec;
        queries.push_back(q);
      }
    }
  }
  Query constrained;
  constrained.k = 2;
  constrained.r = 3;
  constrained.size_limit = 10;
  constrained.aggregation = AggregationSpec::Avg();
  queries.push_back(constrained);
  Query tonic;
  tonic.k = 2;
  tonic.r = 3;
  tonic.non_overlapping = true;
  tonic.aggregation = AggregationSpec::Sum();
  queries.push_back(tonic);
  return queries;
}

void ExpectIdentical(const SearchResult& a, const SearchResult& b,
                     std::size_t query_index) {
  ASSERT_EQ(a.communities.size(), b.communities.size())
      << "query " << query_index;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << "query " << query_index << " community " << i;
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence)
        << "query " << query_index << " community " << i;
  }
}

TEST(CanonicalQueryKeyTest, NormalizesInactiveParameters) {
  Query a;
  a.aggregation = AggregationSpec::Sum();
  Query b = a;
  b.aggregation.alpha = 7.0;  // inactive under sum
  b.aggregation.beta = 9.0;   // inactive under sum
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));

  Query c = a;
  c.aggregation = AggregationSpec::SumSurplus(1.0);
  Query d = a;
  d.aggregation = AggregationSpec::SumSurplus(2.0);
  EXPECT_NE(CanonicalQueryKey(c), CanonicalQueryKey(d));  // alpha active

  Query e = a;
  e.k = 3;
  EXPECT_NE(CanonicalQueryKey(a), CanonicalQueryKey(e));
}

TEST(QueryEngineTest, MatchesDirectSolveSequentially) {
  Graph g = WeightedChungLu(17);
  const Graph reference = g;  // engine takes ownership of its copy
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const EngineResponse response = engine.Run(queries[i]);
    const SearchResult direct = Solve(reference, queries[i]);
    ExpectIdentical(*response.result, direct, i);
    EXPECT_EQ(ValidateResult(reference, queries[i], *response.result), "");
  }
}

TEST(QueryEngineTest, ConcurrentSubmissionsMatchSequentialSolve) {
  Graph g = WeightedChungLu(23);
  const Graph reference = g;
  EngineOptions options;
  options.num_threads = 4;
  options.cache_member_budget = 0;  // force every run through the solver
  QueryEngine engine(std::move(g), options);

  const std::vector<Query> queries = MixedQueries();
  constexpr int kRepetitions = 3;  // same query in flight multiple times

  std::vector<std::future<EngineResponse>> futures;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Query& q = queries[i % queries.size()];
    const EngineResponse response = futures[i].get();
    const SearchResult direct = Solve(reference, q);
    ExpectIdentical(*response.result, direct, i % queries.size());
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * kRepetitions);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(QueryEngineTest, ConcurrentSubmittersWithSharedCache) {
  Graph g = WeightedChungLu(29, 300);
  const Graph reference = g;
  QueryEngine engine(std::move(g), {});

  const std::vector<Query> queries = MixedQueries();
  // Warm the cache sequentially so every threaded run below is a
  // deterministic hit (capacity default comfortably exceeds the batch).
  for (const Query& q : queries) engine.Run(q);

  std::vector<std::thread> submitters;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (const Query& q : queries) {
        const EngineResponse response = engine.Run(q);
        if (!response.cache_hit ||
            !ValidateResult(reference, q, *response.result).empty()) {
          failed = true;
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  EXPECT_FALSE(failed.load());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size() * 5);
  EXPECT_EQ(stats.cache_hits, queries.size() * 4);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(QueryEngineTest, CacheHitSharesTheResultObject) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 2;
  q.r = 2;
  q.aggregation = AggregationSpec::Sum();
  const EngineResponse first = engine.Run(q);
  EXPECT_FALSE(first.cache_hit);
  const EngineResponse second = engine.Run(q);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.result.get(), second.result.get());

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

// Size-aware cache accounting on the hand-analyzed fixture. Under sum at
// k = 2 the top communities are K4 (4 members), {7,8,9} (3), {6,8,9} (3),
// {6,7,9} (3), {0..5} (6) — so the member charge of a top-r result is
// r=1: 4, r=2: 7, r=3: 10, r=5: 19.
TEST(QueryEngineTest, LruEvictsLeastRecentlyUsedBySize) {
  EngineOptions options;
  options.cache_member_budget = 14;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query a, b, c;
  a.k = 2;
  a.r = 1;  // charge 4
  b.k = 2;
  b.r = 2;  // charge 7
  c.k = 2;
  c.r = 3;  // charge 10

  engine.Run(a);                            // cache: [a]      charge  4
  engine.Run(b);                            // cache: [b, a]   charge 11
  EXPECT_TRUE(engine.Run(a).cache_hit);     // cache: [a, b]
  engine.Run(c);                            // 21 > 14: evicts b -> [c, a]
  EXPECT_TRUE(engine.Run(a).cache_hit);     // a survived -> [a, c]
  EXPECT_FALSE(engine.Run(b).cache_hit);    // b was evicted
  const EngineStats stats = engine.stats();
  EXPECT_GE(stats.cache_evictions, 1u);
  EXPECT_LE(stats.cache_charge, 14u);
}

TEST(QueryEngineTest, SizeAwareCacheEvictsOneHugeResultBeforeManySmall) {
  EngineOptions options;
  options.cache_member_budget = 25;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 — most of the budget
  huge.k = 2;
  huge.r = 5;
  Query small_a;  // charge 4
  small_a.k = 2;
  small_a.r = 1;
  Query small_b;  // charge 4 (K4 is the only 3-core)
  small_b.k = 3;
  small_b.r = 1;

  engine.Run(huge);                              // charge 19
  engine.Run(small_a);                           // charge 23
  engine.Run(small_b);                           // 27 > 25: evict huge only
  EXPECT_TRUE(engine.Run(small_a).cache_hit);    // both small ones survived
  EXPECT_TRUE(engine.Run(small_b).cache_hit);
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  // The one huge entry is what paid (probing it re-inserts, so last).
  EXPECT_FALSE(engine.Run(huge).cache_hit);
}

TEST(QueryEngineTest, ResultLargerThanBudgetIsServedUncached) {
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 > budget: caching it would evict everything
  huge.k = 2;
  huge.r = 5;
  Query small;  // charge 4
  small.k = 2;
  small.r = 1;

  engine.Run(small);
  engine.Run(huge);
  EXPECT_FALSE(engine.Run(huge).cache_hit);   // never cached
  EXPECT_TRUE(engine.Run(small).cache_hit);   // untouched by the huge miss
  EXPECT_EQ(engine.stats().cache_evictions, 0u);
}

TEST(QueryEngineTest, CacheDisabledNeverHits) {
  EngineOptions options;
  options.cache_member_budget = 0;
  QueryEngine engine(TwoTrianglesAndK4(), options);
  Query q;
  q.k = 2;
  engine.Run(q);
  EXPECT_FALSE(engine.Run(q).cache_hit);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
}

TEST(QueryEngineTest, ValidateFlagsBadQueries) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 0;  // invalid: k >= 1 required
  EXPECT_NE(engine.Validate(q), "");
  q.k = 2;
  EXPECT_EQ(engine.Validate(q), "");
}

TEST(QueryEngineTest, OpenSnapshotRejectsBadEpsilonCleanly) {
  const std::string path = ::testing::TempDir() + "/bad_epsilon.snap";
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, TwoTrianglesAndK4(), &error)) << error;
  EngineOptions options;
  options.solve.epsilon = 1.0;  // would TICL_CHECK-abort inside Solve
  const auto engine = QueryEngine::OpenSnapshot(
      path, SnapshotLoadMode::kCopy, options, &error);
  EXPECT_EQ(engine, nullptr);
  EXPECT_NE(error.find("epsilon"), std::string::npos) << error;
}

TEST(QueryEngineTest, UncacheableResultsAreCounted) {
  EngineOptions options;
  options.cache_member_budget = 5;
  options.num_threads = 1;
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query huge;  // charge 19 > budget: served uncached
  huge.k = 2;
  huge.r = 5;
  engine.Run(huge);
  engine.Run(huge);  // still a miss, still uncacheable
  Query small;  // charge 4: cached fine
  small.k = 2;
  small.r = 1;
  engine.Run(small);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_uncacheable, 2u);
  EXPECT_EQ(stats.cache_evictions, 0u);
}

TEST(QueryEngineTest, ConcurrentMissesOnSameKeyCoalesceToOneSolve) {
  // Hold the first (and only allowed) Solve open until the second
  // submission has provably attached to the pending entry; then release.
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  EngineOptions options;
  options.num_threads = 2;
  options.solve_started_hook_for_test = [release_future] {
    release_future.wait();
  };
  QueryEngine engine(TwoTrianglesAndK4(), options);

  Query q;
  q.k = 2;
  q.r = 2;
  auto first = engine.Submit(q);
  auto second = engine.Submit(q);
  // The second submission either coalesced onto the first's pending solve
  // or (rare scheduling) became the owner while the first waits — either
  // way exactly one solve may start; wait until both are accounted for.
  while (true) {
    const EngineStats stats = engine.stats();
    if (stats.queries == 2 && stats.cache_coalesced == 1) break;
    std::this_thread::yield();
  }
  release.set_value();

  const EngineResponse a = first.get();
  const EngineResponse b = second.get();
  // One Solve ran; the coalesced waiter shares the very result object.
  EXPECT_EQ(a.result.get(), b.result.get());
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_coalesced, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.cache_coalesced,
            stats.queries);
}

// -- ApplyDelta -------------------------------------------------------------

TEST(QueryEngineDeltaTest, ApplyDeltaMatchesFreshEngineBitForBit) {
  // The acceptance oracle: ~1% random churn, then every query answer and
  // the whole CoreIndex must equal a from-scratch engine on the same
  // edited graph.
  Graph g = WeightedChungLu(41, 800);
  const GraphDelta delta =
      RandomDelta(g, /*seed=*/7, /*inserts=*/g.num_edges() / 100,
                  /*deletes=*/g.num_edges() / 100, /*weight_updates=*/10);
  const Graph edited = ApplyDeltaToGraph(g, delta);

  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(std::move(g), options);
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  EXPECT_TRUE(engine.graph().fingerprint() == edited.fingerprint());
  QueryEngine fresh(edited, options);
  ASSERT_EQ(engine.core_index().degeneracy(),
            fresh.core_index().degeneracy());
  EXPECT_EQ(ToVector(engine.core_index().core_numbers()),
            ToVector(fresh.core_index().core_numbers()));
  for (VertexId k = 1; k <= fresh.core_index().degeneracy(); ++k) {
    EXPECT_EQ(ToVector(engine.core_index().CoreMembers(k)),
              ToVector(fresh.core_index().CoreMembers(k)))
        << "level " << k;
  }

  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const EngineResponse maintained = engine.Run(queries[i]);
    const EngineResponse rebuilt = fresh.Run(queries[i]);
    ExpectIdentical(*maintained.result, *rebuilt.result, i);
  }
  EXPECT_EQ(engine.stats().deltas_applied, 1u);
}

TEST(QueryEngineDeltaTest, ApplyDeltaInvalidatesTheCache) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  Query q;
  q.k = 2;
  q.r = 1;
  q.aggregation = AggregationSpec::Sum();
  const EngineResponse before = engine.Run(q);
  EXPECT_TRUE(engine.Run(q).cache_hit);

  // Isolate vertex 9 (weight 100): the old top answer (K4, influence 106)
  // is gone — the best sum 2-core is now {0..5} at 78.
  GraphDelta delta;
  delta.delete_edges = {Edge{6, 9}, Edge{7, 9}, Edge{8, 9}};
  std::string error;
  ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;

  const EngineResponse after = engine.Run(q);
  EXPECT_FALSE(after.cache_hit);  // cache was dropped, this re-solved
  EXPECT_NE(before.result->communities[0].influence,
            after.result->communities[0].influence);
  EXPECT_EQ(engine.stats().cache_charge,
            after.result->communities[0].members.size());
}

TEST(QueryEngineDeltaTest, InvalidDeltaLeavesServingStateUntouched) {
  QueryEngine engine(TwoTrianglesAndK4(), {});
  const GraphFingerprint before = engine.graph().fingerprint();
  GraphDelta bad;
  bad.insert_edges = {Edge{0, 1}};  // already present
  std::string error;
  EXPECT_FALSE(engine.ApplyDelta(bad, &error));
  EXPECT_NE(error, "");
  EXPECT_TRUE(engine.graph().fingerprint() == before);
  EXPECT_EQ(engine.stats().deltas_applied, 0u);
}

TEST(QueryEngineDeltaTest, MmapEngineBecomesHeapOwnedAfterDelta) {
  Graph g = WeightedChungLu(53, 300);
  const std::string path = ::testing::TempDir() + "/delta_mmap.snap";
  std::string error;
  const CoreIndex index(g);
  SaveSnapshotOptions save;
  save.core_index = &index;
  ASSERT_TRUE(SaveSnapshot(path, g, save, &error)) << error;

  auto engine = QueryEngine::OpenSnapshot(path, SnapshotLoadMode::kMmap, {},
                                          &error);
  ASSERT_NE(engine, nullptr) << error;
  EXPECT_TRUE(engine->snapshot_mapped());
  EXPECT_TRUE(engine->index_from_snapshot());

  const GraphDelta delta = RandomDelta(g, 3, 5, 5, 0);
  ASSERT_TRUE(engine->ApplyDelta(delta, &error)) << error;
  EXPECT_FALSE(engine->snapshot_mapped());
  EXPECT_FALSE(engine->index_from_snapshot());

  // Still answers correctly against the edited graph.
  const Graph edited = ApplyDeltaToGraph(g, delta);
  Query q;
  q.k = 2;
  q.r = 3;
  const EngineResponse response = engine->Run(q);
  EXPECT_EQ(ValidateResult(edited, q, *response.result), "");
}

TEST(QueryEngineDeltaTest, ConcurrentQueriesDuringApplyDelta) {
  // TSan target: queries race ApplyDelta swaps. Every answer must be
  // valid for *some* serving state (the one the query pinned), and the
  // engine must never crash or deadlock.
  Graph g = WeightedChungLu(61, 400);
  const Graph original = g;
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(std::move(g), options);

  // Precompute the delta chain and each stage's reference graph.
  constexpr int kDeltas = 6;
  std::vector<Graph> stages{original};
  std::vector<GraphDelta> deltas;
  for (int i = 0; i < kDeltas; ++i) {
    const Graph& parent = stages.back();
    deltas.push_back(RandomDelta(parent, 100 + i, 10, 10, 5));
    stages.push_back(ApplyDeltaToGraph(parent, deltas.back()));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad_results{0};
  std::vector<std::thread> query_threads;
  for (int t = 0; t < 3; ++t) {
    query_threads.emplace_back([&, t] {
      const std::vector<Query> queries = MixedQueries();
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = queries[i++ % queries.size()];
        const EngineResponse response = engine.Run(q);
        // The answer must validate against at least one chain stage (we
        // cannot know which state the query pinned).
        bool ok = false;
        for (const Graph& stage : stages) {
          if (ValidateResult(stage, q, *response.result).empty()) {
            ok = true;
            break;
          }
        }
        if (!ok) bad_results.fetch_add(1);
      }
    });
  }

  std::string error;
  for (const GraphDelta& delta : deltas) {
    ASSERT_TRUE(engine.ApplyDelta(delta, &error)) << error;
  }
  stop.store(true);
  for (std::thread& thread : query_threads) thread.join();
  EXPECT_EQ(bad_results.load(), 0);
  EXPECT_EQ(engine.stats().deltas_applied,
            static_cast<std::uint64_t>(kDeltas));

  // After the dust settles the engine answers exactly like a fresh build
  // of the final stage.
  QueryEngine fresh(stages.back(), options);
  const std::vector<Query> queries = MixedQueries();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectIdentical(*engine.Run(queries[i]).result,
                    *fresh.Run(queries[i]).result, i);
  }
}

}  // namespace
}  // namespace ticl
