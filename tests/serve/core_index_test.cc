#include "serve/core_index.h"

#include <gtest/gtest.h>

#include "algo/core_decomposition.h"
#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::ToVector;
using testing::TwoTrianglesAndK4;

Graph WeightedChungLu(std::uint64_t seed) {
  ChungLuOptions cl;
  cl.num_vertices = 600;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

TEST(CoreIndexTest, MatchesFromScratchPrimitives) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const Graph g = WeightedChungLu(seed);
    const CoreIndex index(g);
    EXPECT_EQ(index.degeneracy(), CoreDecomposition(g).degeneracy);
    // One past the degeneracy exercises the empty-core path.
    for (VertexId k = 1; k <= index.degeneracy() + 1; ++k) {
      EXPECT_EQ(ToVector(index.CoreMembers(k)), MaximalKCore(g, k))
          << "k=" << k;
      EXPECT_EQ(index.CoreComponents(k), KCoreComponents(g, k)) << "k=" << k;
      EXPECT_EQ(index.CoreSize(k), MaximalKCore(g, k).size());
    }
  }
}

TEST(CoreIndexTest, CoreNumbersMatchDecomposition) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);
  const CoreDecompositionResult decomp = CoreDecomposition(g);
  EXPECT_EQ(ToVector(index.core_numbers()), decomp.core);
  EXPECT_EQ(index.degeneracy(), 3u);  // the K4
  EXPECT_EQ(ToVector(index.CoreMembers(3)), testing::Members({6, 7, 8, 9}));
  EXPECT_TRUE(index.CoreMembers(4).empty());
  EXPECT_TRUE(index.CoreComponents(4).empty());
}

TEST(CoreIndexTest, IndexedHelpersFallBackWithoutIndex) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(IndexedMaximalKCore(nullptr, g, 2), MaximalKCore(g, 2));
  EXPECT_EQ(IndexedKCoreComponents(nullptr, g, 2), KCoreComponents(g, 2));
  const CoreIndex index(g);
  EXPECT_EQ(IndexedMaximalKCore(&index, g, 2), MaximalKCore(g, 2));
  EXPECT_EQ(IndexedKCoreComponents(&index, g, 2), KCoreComponents(g, 2));
}

TEST(CoreIndexTest, FingerprintAcceptedAcrossGraphCopies) {
  const Graph g = TwoTrianglesAndK4();
  const Graph copy = g;  // same fingerprint, different object
  const CoreIndex index(g);
  EXPECT_EQ(IndexedMaximalKCore(&index, copy, 2), MaximalKCore(copy, 2));
  EXPECT_EQ(IndexedKCoreComponents(&index, copy, 2),
            KCoreComponents(copy, 2));
}

TEST(CoreIndexDeathTest, MismatchedIndexRejectedBySolve) {
  const Graph g = WeightedChungLu(5);
  const Graph other = TwoTrianglesAndK4();
  const CoreIndex foreign(other);
  SolveOptions options;
  options.core_index = &foreign;
  Query q;
  q.k = 2;
  q.r = 1;
  q.aggregation = AggregationSpec::Sum();
  EXPECT_DEATH(Solve(g, q, options), "different graph");
}

TEST(CoreIndexDeathTest, MismatchedIndexRejectedByHelpers) {
  const Graph a = TwoTrianglesAndK4();
  const Graph b = testing::CycleGraph(8);
  const CoreIndex index(a);
  EXPECT_DEATH(IndexedMaximalKCore(&index, b, 2), "different graph");
  EXPECT_DEATH(IndexedKCoreComponents(&index, b, 2), "different graph");
}

TEST(CoreIndexTest, SerializationRoundTripCopyAndView) {
  const Graph g = WeightedChungLu(7);
  const CoreIndex index(g);
  std::vector<unsigned char> bytes;
  index.AppendSerialized(&bytes);
  ASSERT_EQ(bytes.size(), index.SerializedSize());

  std::string error;
  for (const bool copy_data : {true, false}) {
    // `bytes` comes from operator new, so it satisfies the 8-byte
    // alignment the payload format requires.
    const auto restored = CoreIndex::Deserialize(g, bytes.data(),
                                                 bytes.size(), copy_data,
                                                 &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(restored->degeneracy(), index.degeneracy());
    EXPECT_TRUE(restored->fingerprint() == g.fingerprint());
    EXPECT_EQ(ToVector(restored->core_numbers()),
              ToVector(index.core_numbers()));
    for (VertexId k = 1; k <= index.degeneracy() + 1; ++k) {
      EXPECT_EQ(ToVector(restored->CoreMembers(k)),
                ToVector(index.CoreMembers(k)))
          << "k=" << k;
      EXPECT_EQ(restored->CoreComponents(k), index.CoreComponents(k))
          << "k=" << k;
    }
  }
}

TEST(CoreIndexTest, DeserializeRejectsForeignGraph) {
  const Graph g = WeightedChungLu(7);
  const CoreIndex index(g);
  std::vector<unsigned char> bytes;
  index.AppendSerialized(&bytes);

  const Graph other = TwoTrianglesAndK4();
  std::string error;
  EXPECT_EQ(CoreIndex::Deserialize(other, bytes.data(), bytes.size(),
                                   /*copy_data=*/true, &error),
            nullptr);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
}

TEST(CoreIndexTest, DeserializeRejectsTruncatedOrCorruptPayload) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);
  std::vector<unsigned char> bytes;
  index.AppendSerialized(&bytes);

  std::string error;
  EXPECT_EQ(CoreIndex::Deserialize(g, bytes.data(), bytes.size() - 4,
                                   /*copy_data=*/true, &error),
            nullptr);
  EXPECT_NE(error.find("core index"), std::string::npos) << error;

  // Corrupt the first member id (level 1 starts right after the core
  // numbers): members must stay strictly ascending / in range.
  std::vector<unsigned char> corrupt = bytes;
  corrupt[corrupt.size() - 1] ^= 0xff;
  EXPECT_EQ(CoreIndex::Deserialize(g, corrupt.data(), corrupt.size(),
                                   /*copy_data=*/true, &error),
            nullptr);
}

void ExpectIdenticalResults(const SearchResult& a, const SearchResult& b,
                            const char* label) {
  ASSERT_EQ(a.communities.size(), b.communities.size()) << label;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << label << " community " << i;
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence)
        << label << " community " << i;
  }
}

TEST(CoreIndexTest, SolveIdenticalWithAndWithoutIndex) {
  const Graph g = WeightedChungLu(5);
  const CoreIndex index(g);

  SolveOptions indexed;
  indexed.core_index = &index;
  const SolveOptions direct;

  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(0.5),
        AggregationSpec::Avg(), AggregationSpec::WeightDensity(1.0)}) {
    for (const VertexId k : {2u, 3u}) {
      for (const bool non_overlapping : {false, true}) {
        Query q;
        q.k = k;
        q.r = 4;
        q.non_overlapping = non_overlapping;
        q.aggregation = spec;
        const SearchResult with_index = Solve(g, q, indexed);
        const SearchResult without = Solve(g, q, direct);
        ExpectIdenticalResults(with_index, without,
                               AggregationName(spec.kind).c_str());
        EXPECT_EQ(ValidateResult(g, q, with_index), "");
      }
    }
  }
}

TEST(CoreIndexTest, SolveIdenticalAcrossExplicitSolvers) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);

  Query q;
  q.k = 2;
  q.r = 3;
  q.aggregation = AggregationSpec::Sum();

  for (const SolverKind solver :
       {SolverKind::kNaive, SolverKind::kImproved, SolverKind::kApprox,
        SolverKind::kLocalGreedy, SolverKind::kLocalRandom}) {
    SolveOptions indexed;
    indexed.solver = solver;
    indexed.core_index = &index;
    SolveOptions direct;
    direct.solver = solver;
    ExpectIdenticalResults(Solve(g, q, indexed), Solve(g, q, direct),
                           SolverKindName(solver).c_str());
  }

  // Exact needs a size limit to stay tiny; min/max need their aggregation.
  q.size_limit = 4;
  SolveOptions exact_indexed;
  exact_indexed.solver = SolverKind::kExact;
  exact_indexed.core_index = &index;
  SolveOptions exact_direct;
  exact_direct.solver = SolverKind::kExact;
  ExpectIdenticalResults(Solve(g, q, exact_indexed),
                         Solve(g, q, exact_direct), "exact");

  q.size_limit = 0;
  q.aggregation = AggregationSpec::Min();
  SolveOptions min_indexed;
  min_indexed.solver = SolverKind::kMinPeel;
  min_indexed.core_index = &index;
  SolveOptions min_direct;
  min_direct.solver = SolverKind::kMinPeel;
  ExpectIdenticalResults(Solve(g, q, min_indexed), Solve(g, q, min_direct),
                         "min-peel");

  q.aggregation = AggregationSpec::Max();
  SolveOptions max_indexed;
  max_indexed.solver = SolverKind::kMaxComponents;
  max_indexed.core_index = &index;
  SolveOptions max_direct;
  max_direct.solver = SolverKind::kMaxComponents;
  ExpectIdenticalResults(Solve(g, q, max_indexed), Solve(g, q, max_direct),
                         "max-components");
}

}  // namespace
}  // namespace ticl
