#include "serve/core_index.h"

#include <gtest/gtest.h>

#include "algo/core_decomposition.h"
#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

Graph WeightedChungLu(std::uint64_t seed) {
  ChungLuOptions cl;
  cl.num_vertices = 600;
  cl.target_average_degree = 8.0;
  cl.gamma = 2.5;
  cl.seed = seed;
  Graph g = GenerateChungLu(cl);
  AssignWeights(&g, WeightScheme::kPageRank, seed);
  return g;
}

TEST(CoreIndexTest, MatchesFromScratchPrimitives) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const Graph g = WeightedChungLu(seed);
    const CoreIndex index(g);
    EXPECT_EQ(index.degeneracy(), CoreDecomposition(g).degeneracy);
    // One past the degeneracy exercises the empty-core path.
    for (VertexId k = 1; k <= index.degeneracy() + 1; ++k) {
      EXPECT_EQ(index.CoreMembers(k), MaximalKCore(g, k)) << "k=" << k;
      EXPECT_EQ(index.CoreComponents(k), KCoreComponents(g, k)) << "k=" << k;
      EXPECT_EQ(index.CoreSize(k), MaximalKCore(g, k).size());
    }
  }
}

TEST(CoreIndexTest, CoreNumbersMatchDecomposition) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);
  const CoreDecompositionResult decomp = CoreDecomposition(g);
  EXPECT_EQ(index.core_numbers(), decomp.core);
  EXPECT_EQ(index.degeneracy(), 3u);  // the K4
  EXPECT_EQ(index.CoreMembers(3), testing::Members({6, 7, 8, 9}));
  EXPECT_TRUE(index.CoreMembers(4).empty());
  EXPECT_TRUE(index.CoreComponents(4).empty());
}

TEST(CoreIndexTest, IndexedHelpersFallBackWithoutIndex) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(IndexedMaximalKCore(nullptr, g, 2), MaximalKCore(g, 2));
  EXPECT_EQ(IndexedKCoreComponents(nullptr, g, 2), KCoreComponents(g, 2));
  const CoreIndex index(g);
  EXPECT_EQ(IndexedMaximalKCore(&index, g, 2), MaximalKCore(g, 2));
  EXPECT_EQ(IndexedKCoreComponents(&index, g, 2), KCoreComponents(g, 2));
}

void ExpectIdenticalResults(const SearchResult& a, const SearchResult& b,
                            const char* label) {
  ASSERT_EQ(a.communities.size(), b.communities.size()) << label;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << label << " community " << i;
    EXPECT_EQ(a.communities[i].influence, b.communities[i].influence)
        << label << " community " << i;
  }
}

TEST(CoreIndexTest, SolveIdenticalWithAndWithoutIndex) {
  const Graph g = WeightedChungLu(5);
  const CoreIndex index(g);

  SolveOptions indexed;
  indexed.core_index = &index;
  const SolveOptions direct;

  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(0.5),
        AggregationSpec::Avg(), AggregationSpec::WeightDensity(1.0)}) {
    for (const VertexId k : {2u, 3u}) {
      for (const bool non_overlapping : {false, true}) {
        Query q;
        q.k = k;
        q.r = 4;
        q.non_overlapping = non_overlapping;
        q.aggregation = spec;
        const SearchResult with_index = Solve(g, q, indexed);
        const SearchResult without = Solve(g, q, direct);
        ExpectIdenticalResults(with_index, without,
                               AggregationName(spec.kind).c_str());
        EXPECT_EQ(ValidateResult(g, q, with_index), "");
      }
    }
  }
}

TEST(CoreIndexTest, SolveIdenticalAcrossExplicitSolvers) {
  const Graph g = TwoTrianglesAndK4();
  const CoreIndex index(g);

  Query q;
  q.k = 2;
  q.r = 3;
  q.aggregation = AggregationSpec::Sum();

  for (const SolverKind solver :
       {SolverKind::kNaive, SolverKind::kImproved, SolverKind::kApprox,
        SolverKind::kLocalGreedy, SolverKind::kLocalRandom}) {
    SolveOptions indexed;
    indexed.solver = solver;
    indexed.core_index = &index;
    SolveOptions direct;
    direct.solver = solver;
    ExpectIdenticalResults(Solve(g, q, indexed), Solve(g, q, direct),
                           SolverKindName(solver).c_str());
  }

  // Exact needs a size limit to stay tiny; min/max need their aggregation.
  q.size_limit = 4;
  SolveOptions exact_indexed;
  exact_indexed.solver = SolverKind::kExact;
  exact_indexed.core_index = &index;
  SolveOptions exact_direct;
  exact_direct.solver = SolverKind::kExact;
  ExpectIdenticalResults(Solve(g, q, exact_indexed),
                         Solve(g, q, exact_direct), "exact");

  q.size_limit = 0;
  q.aggregation = AggregationSpec::Min();
  SolveOptions min_indexed;
  min_indexed.solver = SolverKind::kMinPeel;
  min_indexed.core_index = &index;
  SolveOptions min_direct;
  min_direct.solver = SolverKind::kMinPeel;
  ExpectIdenticalResults(Solve(g, q, min_indexed), Solve(g, q, min_direct),
                         "min-peel");

  q.aggregation = AggregationSpec::Max();
  SolveOptions max_indexed;
  max_indexed.solver = SolverKind::kMaxComponents;
  max_indexed.core_index = &index;
  SolveOptions max_direct;
  max_direct.solver = SolverKind::kMaxComponents;
  ExpectIdenticalResults(Solve(g, q, max_indexed), Solve(g, q, max_direct),
                         "max-components");
}

}  // namespace
}  // namespace ticl
