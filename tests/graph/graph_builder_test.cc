#include "graph/graph_builder.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(GraphBuilderTest, EmptyBuild) {
  GraphBuilder b;
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, SingleEdge) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphBuilderTest, VertexCountFromMaxId) {
  GraphBuilder b;
  b.AddEdge(2, 7);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(GraphBuilderTest, ExplicitVertexCountPreservesIsolated) {
  GraphBuilder b;
  b.SetNumVertices(5);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(GraphBuilderTest, ExplicitVertexCountZeroEdges) {
  GraphBuilder b;
  b.SetNumVertices(3);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b;
  b.SetNumVertices(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 2);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DuplicateEdgesMerged) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilderTest, AdjacencySorted) {
  GraphBuilder b;
  b.AddEdge(5, 0);
  b.AddEdge(5, 3);
  b.AddEdge(5, 1);
  b.AddEdge(5, 4);
  const Graph g = b.Build();
  const auto nbrs = g.neighbors(5);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphBuilderTest, OutOfRangeEdgeAborts) {
  GraphBuilder b;
  b.SetNumVertices(2);
  b.AddEdge(0, 5);
  EXPECT_DEATH(b.Build(), "exceeds declared vertex count");
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  const Graph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g2 = b.Build();
  EXPECT_EQ(g2.num_vertices(), 3u);
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphBuilderTest, TriangleDegrees) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  const Graph g = b.Build();
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(GraphBuilderTest, NumAddedEdgesCountsRawInsertions) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(2, 2);  // self-loop dropped immediately
  EXPECT_EQ(b.num_added_edges(), 2u);
}

}  // namespace
}  // namespace ticl
