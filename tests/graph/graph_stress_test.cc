// Differential stress tests: GraphBuilder + Graph accessors checked
// against a dense adjacency-matrix reference on randomized inputs
// containing duplicates and self-loops.

#include <vector>

#include <gtest/gtest.h>

#include "algo/connectivity.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace ticl {
namespace {

class GraphStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphStressTest, BuilderMatchesAdjacencyMatrix) {
  Rng rng(GetParam());
  const auto n = static_cast<VertexId>(rng.NextInRange(2, 40));
  const int inserts = static_cast<int>(rng.NextInRange(0, 400));

  std::vector<std::vector<bool>> matrix(n, std::vector<bool>(n, false));
  GraphBuilder builder;
  builder.SetNumVertices(n);
  for (int i = 0; i < inserts; ++i) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    builder.AddEdge(u, v);  // duplicates and self-loops included on purpose
    if (u != v) {
      matrix[u][v] = true;
      matrix[v][u] = true;
    }
  }
  const Graph g = builder.Build();

  ASSERT_EQ(g.num_vertices(), n);
  std::uint64_t expected_edges = 0;
  for (VertexId u = 0; u < n; ++u) {
    VertexId expected_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (matrix[u][v]) {
        ++expected_degree;
        if (u < v) ++expected_edges;
      }
      EXPECT_EQ(g.HasEdge(u, v), matrix[u][v])
          << "edge " << u << "-" << v;
    }
    EXPECT_EQ(g.degree(u), expected_degree) << "vertex " << u;
  }
  EXPECT_EQ(g.num_edges(), expected_edges);
}

TEST_P(GraphStressTest, ComponentsMatchMatrixFloodFill) {
  Rng rng(GetParam() ^ 0xC0FFEE);
  const auto n = static_cast<VertexId>(rng.NextInRange(2, 30));
  GraphBuilder builder;
  builder.SetNumVertices(n);
  std::vector<std::vector<bool>> matrix(n, std::vector<bool>(n, false));
  const int inserts = static_cast<int>(rng.NextInRange(0, 60));
  for (int i = 0; i < inserts; ++i) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    builder.AddEdge(u, v);
    if (u != v) {
      matrix[u][v] = true;
      matrix[v][u] = true;
    }
  }
  const Graph g = builder.Build();

  // Reference flood fill over the matrix.
  std::vector<VertexId> reference(n, kInvalidVertex);
  VertexId reference_count = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (reference[start] != kInvalidVertex) continue;
    const VertexId id = reference_count++;
    std::vector<VertexId> stack{start};
    reference[start] = id;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v = 0; v < n; ++v) {
        if (matrix[u][v] && reference[v] == kInvalidVertex) {
          reference[v] = id;
          stack.push_back(v);
        }
      }
    }
  }

  const ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components, reference_count);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(labels.label[u] == labels.label[v],
                reference[u] == reference[v])
          << u << " vs " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphStressTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ticl
