#include "graph/edge_list_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ticl_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(EdgeListIoTest, SaveLoadRoundtrip) {
  const Graph original = testing::TwoTrianglesAndK4();
  std::string error;
  ASSERT_TRUE(SaveEdgeList(Path("g.txt"), original, &error)) << error;
  Graph loaded;
  ASSERT_TRUE(LoadEdgeList(Path("g.txt"), &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  for (VertexId v = 0; v < loaded.num_vertices(); ++v) {
    EXPECT_EQ(loaded.degree(v), original.degree(v));
  }
}

TEST_F(EdgeListIoTest, CommentsAndBlanksIgnored) {
  WriteFile("g.txt",
            "# SNAP-style comment\n"
            "% matrix-market-style comment\n"
            "\n"
            "0 1\n"
            "   \t\n"
            "1 2\n");
  Graph g;
  std::string error;
  ASSERT_TRUE(LoadEdgeList(Path("g.txt"), &g, &error)) << error;
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(EdgeListIoTest, WhitespaceVariantsParse) {
  WriteFile("g.txt", "0\t1\n2   3\n");
  Graph g;
  std::string error;
  ASSERT_TRUE(LoadEdgeList(Path("g.txt"), &g, &error)) << error;
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(EdgeListIoTest, DuplicatesAndSelfLoopsNormalized) {
  WriteFile("g.txt", "0 1\n1 0\n2 2\n0 1\n");
  Graph g;
  std::string error;
  ASSERT_TRUE(LoadEdgeList(Path("g.txt"), &g, &error)) << error;
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(EdgeListIoTest, MalformedLineReportsLocation) {
  WriteFile("g.txt", "0 1\nnot an edge\n");
  Graph g;
  std::string error;
  EXPECT_FALSE(LoadEdgeList(Path("g.txt"), &g, &error));
  EXPECT_NE(error.find(":2"), std::string::npos) << error;
}

TEST_F(EdgeListIoTest, NegativeVertexRejected) {
  WriteFile("g.txt", "0 -4\n");
  Graph g;
  std::string error;
  EXPECT_FALSE(LoadEdgeList(Path("g.txt"), &g, &error));
}

TEST_F(EdgeListIoTest, MissingFileFails) {
  Graph g;
  std::string error;
  EXPECT_FALSE(LoadEdgeList(Path("nope.txt"), &g, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(EdgeListIoTest, WeightsRoundtrip) {
  Graph g = testing::TwoTrianglesAndK4();
  std::string error;
  ASSERT_TRUE(SaveWeights(Path("w.txt"), g, &error)) << error;
  Graph g2 = testing::TwoTrianglesAndK4();
  g2.SetWeights(std::vector<Weight>(10, 0.0));
  ASSERT_TRUE(LoadWeights(Path("w.txt"), &g2, &error)) << error;
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(g2.weight(v), g.weight(v));
  }
}

TEST_F(EdgeListIoTest, WeightsMissingVerticesDefaultZero) {
  WriteFile("w.txt", "1 5.5\n");
  Graph g = testing::PathGraph(3);
  std::string error;
  ASSERT_TRUE(LoadWeights(Path("w.txt"), &g, &error)) << error;
  EXPECT_DOUBLE_EQ(g.weight(0), 0.0);
  EXPECT_DOUBLE_EQ(g.weight(1), 5.5);
  EXPECT_DOUBLE_EQ(g.weight(2), 0.0);
}

TEST_F(EdgeListIoTest, WeightsOutOfRangeVertexRejected) {
  WriteFile("w.txt", "7 1.0\n");
  Graph g = testing::PathGraph(3);
  std::string error;
  EXPECT_FALSE(LoadWeights(Path("w.txt"), &g, &error));
  EXPECT_NE(error.find("out-of-range"), std::string::npos);
}

TEST_F(EdgeListIoTest, NegativeWeightRejected) {
  WriteFile("w.txt", "0 -1.0\n");
  Graph g = testing::PathGraph(3);
  std::string error;
  EXPECT_FALSE(LoadWeights(Path("w.txt"), &g, &error));
  EXPECT_NE(error.find("negative"), std::string::npos);
}

TEST_F(EdgeListIoTest, SaveWeightsWithoutWeightsFails) {
  const Graph g = testing::PathGraph(3);
  std::string error;
  EXPECT_FALSE(SaveWeights(Path("w.txt"), g, &error));
}

TEST_F(EdgeListIoTest, MalformedWeightLineFails) {
  WriteFile("w.txt", "0 abc\n");
  Graph g = testing::PathGraph(3);
  std::string error;
  EXPECT_FALSE(LoadWeights(Path("w.txt"), &g, &error));
}

}  // namespace
}  // namespace ticl
