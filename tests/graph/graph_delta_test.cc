#include "graph/graph_delta.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::PathGraph;
using testing::ToVector;
using testing::TwoTrianglesAndK4;

TEST(ValidateDeltaTest, AcceptsEmptyDelta) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(ValidateDelta(g, {}), "");
}

TEST(ValidateDeltaTest, RejectsBadEdges) {
  const Graph g = TwoTrianglesAndK4();
  GraphDelta delta;
  delta.insert_edges = {Edge{0, 10}};  // out of range (n = 10)
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.insert_edges = {Edge{3, 3}};  // self-loop
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.insert_edges = {Edge{0, 1}};  // already present
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.insert_edges = {Edge{0, 6}, Edge{6, 0}};  // duplicate (reversed)
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.insert_edges.clear();
  delta.delete_edges = {Edge{0, 6}};  // not present
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.delete_edges = {Edge{0, 1}, Edge{1, 0}};  // duplicate delete
  EXPECT_NE(ValidateDelta(g, delta), "");

  delta.insert_edges = {Edge{0, 6}};
  delta.delete_edges = {Edge{0, 6}};  // insert and delete the same edge
  EXPECT_NE(ValidateDelta(g, delta), "");
}

TEST(ValidateDeltaTest, RejectsBadWeightUpdates) {
  Graph weighted = TwoTrianglesAndK4();
  GraphDelta delta;
  delta.weight_updates = {WeightUpdate{10, 1.0}};  // out of range
  EXPECT_NE(ValidateDelta(weighted, delta), "");

  delta.weight_updates = {WeightUpdate{0, -1.0}};  // negative
  EXPECT_NE(ValidateDelta(weighted, delta), "");

  delta.weight_updates = {WeightUpdate{0, 1.0}, WeightUpdate{0, 2.0}};
  EXPECT_NE(ValidateDelta(weighted, delta), "");  // duplicate vertex

  const Graph unweighted = PathGraph(4);
  delta.weight_updates = {WeightUpdate{0, 1.0}};
  EXPECT_NE(ValidateDelta(unweighted, delta), "");

  delta.weight_updates = {WeightUpdate{0, 1.0}};
  EXPECT_EQ(ValidateDelta(weighted, delta), "");
}

TEST(ApplyDeltaTest, InsertDeleteAndReweight) {
  const Graph g = TwoTrianglesAndK4();
  GraphDelta delta;
  delta.insert_edges = {Edge{5, 6}};   // bridge the two components
  delta.delete_edges = {Edge{2, 3}};   // cut the triangle bridge
  delta.weight_updates = {WeightUpdate{9, 50.0}};

  const Graph out = ApplyDeltaToGraph(g, delta);
  EXPECT_EQ(out.num_vertices(), g.num_vertices());
  EXPECT_EQ(out.num_edges(), g.num_edges());  // +1 -1
  EXPECT_TRUE(out.HasEdge(5, 6));
  EXPECT_FALSE(out.HasEdge(2, 3));
  EXPECT_TRUE(out.HasEdge(0, 1));  // untouched edges survive
  EXPECT_EQ(out.weight(9), 50.0);
  EXPECT_EQ(out.weight(0), g.weight(0));
  // Neighbour lists stay sorted (CSR invariant; Graph would TICL_CHECK).
  EXPECT_EQ(ToVector(out.neighbors(6)), Members({5, 7, 8, 9}));
  // The parent is untouched.
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(5, 6));
  // Topology changed, so the fingerprint must differ.
  EXPECT_FALSE(out.fingerprint() == g.fingerprint());
}

TEST(ApplyDeltaTest, PureWeightUpdateKeepsFingerprint) {
  const Graph g = TwoTrianglesAndK4();
  GraphDelta delta;
  delta.weight_updates = {WeightUpdate{0, 99.0}};
  const Graph out = ApplyDeltaToGraph(g, delta);
  // Fingerprints are topological by design: a reweight is index-preserving.
  EXPECT_TRUE(out.fingerprint() == g.fingerprint());
  EXPECT_EQ(out.weight(0), 99.0);
}

TEST(ApplyDeltaTest, RoundTripInsertThenDelete) {
  const Graph g = TwoTrianglesAndK4();
  GraphDelta forward;
  forward.insert_edges = {Edge{0, 9}};
  const Graph mid = ApplyDeltaToGraph(g, forward);
  GraphDelta backward;
  backward.delete_edges = {Edge{0, 9}};
  const Graph back = ApplyDeltaToGraph(mid, backward);
  EXPECT_TRUE(back.fingerprint() == g.fingerprint());
}

TEST(LoadDeltaTextTest, ParsesAllDirectives) {
  const std::string path = ::testing::TempDir() + "/delta.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n\n+ 5 6\n- 3 2\n  w 4 2.75\n", f);
  std::fclose(f);

  GraphDelta delta;
  std::string error;
  ASSERT_TRUE(LoadDeltaText(path, &delta, &error)) << error;
  ASSERT_EQ(delta.insert_edges.size(), 1u);
  EXPECT_EQ(delta.insert_edges[0], (Edge{5, 6}));
  ASSERT_EQ(delta.delete_edges.size(), 1u);
  EXPECT_EQ(delta.delete_edges[0], (Edge{2, 3}));  // normalized u < v
  ASSERT_EQ(delta.weight_updates.size(), 1u);
  EXPECT_EQ(delta.weight_updates[0], (WeightUpdate{4, 2.75}));
}

TEST(LoadDeltaTextTest, LongCommentLinesAreNotSplit) {
  // Regression: a fixed fgets buffer used to split lines over 255 chars
  // and parse the tail as a (bogus) directive.
  const std::string path = ::testing::TempDir() + "/long_delta.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# ", f);
  for (int i = 0; i < 200; ++i) std::fputs("- 1 2 ", f);  // 1.2KB comment
  std::fputs("\n+ 5 6\n", f);
  std::fclose(f);

  GraphDelta delta;
  std::string error;
  ASSERT_TRUE(LoadDeltaText(path, &delta, &error)) << error;
  EXPECT_TRUE(delta.delete_edges.empty());
  ASSERT_EQ(delta.insert_edges.size(), 1u);
  EXPECT_EQ(delta.insert_edges[0], (Edge{5, 6}));
}

TEST(LoadDeltaTextTest, RejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/bad_delta.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("+ 5\n", f);  // missing second endpoint
  std::fclose(f);

  GraphDelta delta;
  std::string error;
  EXPECT_FALSE(LoadDeltaText(path, &delta, &error));
  EXPECT_NE(error.find(":1"), std::string::npos) << error;

  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("x 1 2\n", f);  // unknown directive
  std::fclose(f);
  EXPECT_FALSE(LoadDeltaText(path, &delta, &error));
}

TEST(RandomDeltaTest, ProducesValidDeltasOfRequestedSize) {
  ChungLuOptions cl;
  cl.num_vertices = 300;
  cl.target_average_degree = 6.0;
  cl.gamma = 2.5;
  cl.seed = 7;
  Graph g = GenerateChungLu(cl);
  std::vector<Weight> weights(g.num_vertices(), 1.0);
  g.SetWeights(std::move(weights));

  const GraphDelta delta = RandomDelta(g, /*seed=*/11, /*inserts=*/20,
                                       /*deletes=*/15, /*weight_updates=*/5);
  EXPECT_EQ(delta.insert_edges.size(), 20u);
  EXPECT_EQ(delta.delete_edges.size(), 15u);
  EXPECT_EQ(delta.weight_updates.size(), 5u);
  EXPECT_EQ(ValidateDelta(g, delta), "");
  // Deterministic: same seed, same delta.
  const GraphDelta again = RandomDelta(g, 11, 20, 15, 5);
  EXPECT_EQ(again.insert_edges, delta.insert_edges);
  EXPECT_EQ(again.delete_edges, delta.delete_edges);
}

}  // namespace
}  // namespace ticl
