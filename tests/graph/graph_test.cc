#include "graph/graph.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::CompleteGraph;
using testing::Members;
using testing::PathGraph;
using testing::TwoTrianglesAndK4;

TEST(GraphTest, DefaultConstructedIsEmpty) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
  EXPECT_FALSE(g.has_weights());
}

TEST(GraphTest, CsrInvariantsOnPath) {
  const Graph g = PathGraph(4);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.offsets().front(), 0u);
  EXPECT_EQ(g.offsets().back(), g.adjacency().size());
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, HasEdgeBothDirectionsAndMisses) {
  const Graph g = PathGraph(4);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, NeighborsSpan) {
  const Graph g = CompleteGraph(4);
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, WeightsInstallAndTotal) {
  Graph g = PathGraph(3);
  EXPECT_FALSE(g.has_weights());
  g.SetWeights({1.0, 2.5, 0.5});
  EXPECT_TRUE(g.has_weights());
  EXPECT_DOUBLE_EQ(g.weight(1), 2.5);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(GraphTest, SetWeightsWrongSizeAborts) {
  Graph g = PathGraph(3);
  EXPECT_DEATH(g.SetWeights({1.0, 2.0}), "");
}

TEST(GraphTest, SetWeightsNegativeAborts) {
  Graph g = PathGraph(2);
  EXPECT_DEATH(g.SetWeights({1.0, -0.1}), "non-negative");
}

TEST(GraphTest, ReassigningWeightsUpdatesTotal) {
  Graph g = PathGraph(2);
  g.SetWeights({1.0, 1.0});
  EXPECT_DOUBLE_EQ(g.total_weight(), 2.0);
  g.SetWeights({3.0, 4.0});
  EXPECT_DOUBLE_EQ(g.total_weight(), 7.0);
}

TEST(GraphTest, FingerprintIdentifiesStructure) {
  const Graph a = PathGraph(4);
  const Graph b = PathGraph(4);
  const Graph c = PathGraph(5);
  EXPECT_TRUE(a.fingerprint() == b.fingerprint());
  EXPECT_FALSE(a.fingerprint() == c.fingerprint());
}

TEST(GraphTest, CopyIsDeepAndIdentical) {
  const Graph g = TwoTrianglesAndK4();
  const Graph copy = g;
  EXPECT_NE(copy.offsets().data(), g.offsets().data());
  EXPECT_NE(copy.adjacency().data(), g.adjacency().data());
  EXPECT_EQ(testing::ToVector(copy.adjacency()),
            testing::ToVector(g.adjacency()));
  EXPECT_TRUE(copy.fingerprint() == g.fingerprint());
  EXPECT_DOUBLE_EQ(copy.total_weight(), g.total_weight());
  EXPECT_FALSE(copy.is_view());
}

TEST(GraphTest, MoveTransfersBuffersAndEmptiesSource) {
  Graph g = TwoTrianglesAndK4();
  const VertexId n = g.num_vertices();
  const VertexId* adjacency_data = g.adjacency().data();
  const Graph moved = std::move(g);
  EXPECT_EQ(moved.num_vertices(), n);
  // The heap buffers (and thus the spans) transferred, not reallocated.
  EXPECT_EQ(moved.adjacency().data(), adjacency_data);
  EXPECT_EQ(g.num_vertices(), 0u);  // moved-from is reset to empty
  EXPECT_FALSE(g.has_weights());
}

TEST(GraphTest, FromExternalViewsWithoutCopy) {
  const std::vector<EdgeIndex> offsets{0, 1, 2};
  const std::vector<VertexId> adjacency{1, 0};
  const std::vector<Weight> weights{1.0, 2.0};
  const Graph g = Graph::FromExternal(offsets, adjacency, weights);
  EXPECT_TRUE(g.is_view());
  EXPECT_EQ(g.offsets().data(), offsets.data());
  EXPECT_EQ(g.adjacency().data(), adjacency.data());
  EXPECT_EQ(g.weights().data(), weights.data());
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.0);

  // Identical structure built the owning way: same fingerprint, not a view.
  const Graph owned = PathGraph(2);
  EXPECT_FALSE(owned.is_view());
  EXPECT_TRUE(g.fingerprint() == owned.fingerprint());

  // Copying a view materializes an owning graph.
  const Graph copy = g;
  EXPECT_FALSE(copy.is_view());
  EXPECT_NE(copy.adjacency().data(), adjacency.data());
  EXPECT_TRUE(copy.fingerprint() == g.fingerprint());
}

TEST(InducedSubgraphTest, ExtractTriangleFromFixture) {
  const Graph g = TwoTrianglesAndK4();
  const InducedSubgraph sub = ExtractInducedSubgraph(g, Members({0, 1, 2}));
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);
  EXPECT_EQ(sub.to_original, Members({0, 1, 2}));
  EXPECT_TRUE(sub.graph.has_weights());
  EXPECT_DOUBLE_EQ(sub.graph.weight(2), 30.0);
}

TEST(InducedSubgraphTest, CrossComponentMembersKeepNoBridges) {
  const Graph g = TwoTrianglesAndK4();
  // {0, 1} from triangle A plus {6, 7} from K4: only edges 0-1 and 6-7.
  const InducedSubgraph sub =
      ExtractInducedSubgraph(g, Members({0, 1, 6, 7}));
  EXPECT_EQ(sub.graph.num_vertices(), 4u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
}

TEST(InducedSubgraphTest, UnsortedInputHandled) {
  const Graph g = TwoTrianglesAndK4();
  const InducedSubgraph sub = ExtractInducedSubgraph(g, Members({2, 0, 1}));
  EXPECT_EQ(sub.to_original, Members({0, 1, 2}));
  EXPECT_EQ(sub.graph.num_edges(), 3u);
}

TEST(InducedSubgraphTest, EmptyMembers) {
  const Graph g = TwoTrianglesAndK4();
  const InducedSubgraph sub = ExtractInducedSubgraph(g, {});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(InducedSubgraphTest, DuplicateMemberAborts) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_DEATH(ExtractInducedSubgraph(g, Members({1, 1, 2})), "duplicate");
}

TEST(InducedSubgraphTest, LocalIdsFollowSortedOrder) {
  const Graph g = TwoTrianglesAndK4();
  const InducedSubgraph sub =
      ExtractInducedSubgraph(g, Members({9, 6, 8, 7}));
  // K4 stays complete under relabeling.
  EXPECT_EQ(sub.graph.num_edges(), 6u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(sub.graph.degree(v), 3u);
  EXPECT_DOUBLE_EQ(sub.graph.weight(3), 100.0);  // original vertex 9
}

}  // namespace
}  // namespace ticl
