// Full-pipeline integration tests: generate -> persist -> reload -> weight
// -> solve -> verify, across solvers and problem variants; plus the case
// study pipeline on the co-authorship network.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "algo/core_decomposition.h"
#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/coauthor_network.h"
#include "gen/dataset_suite.h"
#include "graph/edge_list_io.h"

namespace ticl {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ticl_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(EndToEndTest, PersistReloadSolveRoundtrip) {
  // Generate a small stand-in, weight it with PageRank (the paper's
  // setup), write it to disk, read it back, and confirm identical query
  // results.
  Graph original = GenerateStandIn(StandIn::kEmail, 0.2);
  AssignWeights(&original, WeightScheme::kPageRank);

  std::string error;
  ASSERT_TRUE(SaveEdgeList(Path("g.txt"), original, &error)) << error;
  ASSERT_TRUE(SaveWeights(Path("w.txt"), original, &error)) << error;

  Graph reloaded;
  ASSERT_TRUE(LoadEdgeList(Path("g.txt"), &reloaded, &error)) << error;
  ASSERT_TRUE(LoadWeights(Path("w.txt"), &reloaded, &error)) << error;
  ASSERT_EQ(reloaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(reloaded.num_edges(), original.num_edges());

  Query query;
  query.k = 4;
  query.r = 5;
  query.aggregation = AggregationSpec::Sum();
  const SearchResult a = Solve(original, query);
  const SearchResult b = Solve(reloaded, query);
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members);
    EXPECT_NEAR(a.communities[i].influence, b.communities[i].influence,
                1e-12);
  }
}

TEST_F(EndToEndTest, AllSolversAllProblemsOnStandIn) {
  Graph g = GenerateStandIn(StandIn::kEmail, 0.15);
  AssignWeights(&g, WeightScheme::kPageRank);

  const std::vector<AggregationSpec> specs = {
      AggregationSpec::Min(), AggregationSpec::Max(), AggregationSpec::Sum(),
      AggregationSpec::SumSurplus(0.001), AggregationSpec::Avg()};
  for (const auto& spec : specs) {
    for (const bool constrained : {false, true}) {
      for (const bool tonic : {false, true}) {
        Query query;
        query.k = 4;
        query.r = 5;
        query.size_limit = constrained ? 15 : 0;
        query.non_overlapping = tonic;
        query.aggregation = spec;
        const SearchResult result = Solve(g, query);
        EXPECT_EQ(ValidateResult(g, query, result), "")
            << QueryToString(query);
      }
    }
  }
}

TEST_F(EndToEndTest, NaiveAndImprovedAgreeOnStandIn) {
  Graph g = GenerateStandIn(StandIn::kEmail, 0.15);
  AssignWeights(&g, WeightScheme::kPageRank);
  Query query;
  query.k = 5;
  query.r = 5;
  query.aggregation = AggregationSpec::Sum();
  SolveOptions naive;
  naive.solver = SolverKind::kNaive;
  SolveOptions improved;
  improved.solver = SolverKind::kImproved;
  const SearchResult rn = Solve(g, query, naive);
  const SearchResult ri = Solve(g, query, improved);
  ASSERT_EQ(rn.communities.size(), ri.communities.size());
  for (std::size_t i = 0; i < rn.communities.size(); ++i) {
    EXPECT_EQ(rn.communities[i].members, ri.communities[i].members) << i;
  }
}

TEST_F(EndToEndTest, CaseStudyPipelineProducesDisjointResearchGroups) {
  // The Fig. 14 pipeline: co-authorship network, k = 4, top-3
  // non-overlapping communities under min / avg / sum.
  CoauthorNetworkOptions options;
  options.seed = 2022;
  const CoauthorNetwork net = GenerateCoauthorNetwork(options);
  const auto decomp = CoreDecomposition(net.graph);
  ASSERT_GE(decomp.degeneracy, 4u) << "case study needs a 4-core";

  for (const auto& spec :
       {AggregationSpec::Min(), AggregationSpec::Avg(),
        AggregationSpec::Sum()}) {
    Query query;
    query.k = 4;
    query.r = 3;
    query.non_overlapping = true;
    query.aggregation = spec;
    if (spec.kind != Aggregation::kMin) query.size_limit = 12;
    const SearchResult result = Solve(net.graph, query);
    EXPECT_EQ(ValidateResult(net.graph, query, result), "")
        << AggregationName(spec.kind);
    EXPECT_GE(result.communities.size(), 2u) << AggregationName(spec.kind);
  }
}

TEST_F(EndToEndTest, WeightSchemesChangeRankingsButNotValidity) {
  Graph g = GenerateStandIn(StandIn::kEmail, 0.15);
  Query query;
  query.k = 4;
  query.r = 3;
  query.aggregation = AggregationSpec::Sum();
  for (const auto scheme :
       {WeightScheme::kPageRank, WeightScheme::kDegree,
        WeightScheme::kUniform, WeightScheme::kLogNormal}) {
    AssignWeights(&g, scheme, 77);
    const SearchResult result = Solve(g, query);
    EXPECT_EQ(ValidateResult(g, query, result), "")
        << WeightSchemeName(scheme);
  }
}

TEST_F(EndToEndTest, ScaleParameterGrowsDataset) {
  const Graph small = GenerateStandIn(StandIn::kEmail, 0.1);
  const Graph large = GenerateStandIn(StandIn::kEmail, 0.3);
  EXPECT_LT(small.num_vertices(), large.num_vertices());
  EXPECT_LT(small.num_edges(), large.num_edges());
}

}  // namespace
}  // namespace ticl
