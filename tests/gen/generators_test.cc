#include <algorithm>

#include <gtest/gtest.h>

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/dataset_suite.h"
#include "gen/erdos_renyi.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::ToVector;

TEST(ErdosRenyiTest, ExactEdgeCount) {
  const Graph g = GenerateErdosRenyi(100, 250, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
}

TEST(ErdosRenyiTest, Deterministic) {
  const Graph a = GenerateErdosRenyi(50, 100, 7);
  const Graph b = GenerateErdosRenyi(50, 100, 7);
  EXPECT_EQ(ToVector(a.adjacency()), ToVector(b.adjacency()));
  EXPECT_EQ(ToVector(a.offsets()), ToVector(b.offsets()));
}

TEST(ErdosRenyiTest, SeedsDiffer) {
  const Graph a = GenerateErdosRenyi(50, 100, 1);
  const Graph b = GenerateErdosRenyi(50, 100, 2);
  EXPECT_NE(ToVector(a.adjacency()), ToVector(b.adjacency()));
}

TEST(ErdosRenyiTest, NoSelfLoopsOrDuplicates) {
  const Graph g = GenerateErdosRenyi(40, 150, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), v) == nbrs.end());
  }
}

TEST(ErdosRenyiTest, ClampToCompleteGraph) {
  const Graph g = GenerateErdosRenyi(6, 1000000, 1);
  EXPECT_EQ(g.num_edges(), 15u);  // C(6,2)
}

TEST(ErdosRenyiTest, TinyAndEmptyCases) {
  EXPECT_EQ(GenerateErdosRenyi(0, 10, 1).num_vertices(), 0u);
  EXPECT_EQ(GenerateErdosRenyi(1, 10, 1).num_edges(), 0u);
}

TEST(BarabasiAlbertTest, SizesAndMinDegree) {
  const VertexId n = 500;
  const VertexId m0 = 3;
  const Graph g = GenerateBarabasiAlbert(n, m0, 11);
  EXPECT_EQ(g.num_vertices(), n);
  // Seed clique C(4,2)=6 edges + (n - 4) * 3 attachments.
  EXPECT_EQ(g.num_edges(), 6u + (n - 4) * 3u);
  for (VertexId v = 0; v < n; ++v) EXPECT_GE(g.degree(v), m0);
}

TEST(BarabasiAlbertTest, Connected) {
  const Graph g = GenerateBarabasiAlbert(300, 2, 5);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  const Graph a = GenerateBarabasiAlbert(100, 2, 9);
  const Graph b = GenerateBarabasiAlbert(100, 2, 9);
  EXPECT_EQ(ToVector(a.adjacency()), ToVector(b.adjacency()));
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  const Graph g = GenerateBarabasiAlbert(2000, 2, 13);
  // Preferential attachment: max degree far above the mean (~4).
  EXPECT_GT(g.max_degree(), 25u);
}

TEST(ChungLuTest, Deterministic) {
  const ChungLuOptions options{500, 8.0, 2.5, 21};
  const Graph a = GenerateChungLu(options);
  const Graph b = GenerateChungLu(options);
  EXPECT_EQ(ToVector(a.adjacency()), ToVector(b.adjacency()));
}

TEST(ChungLuTest, AverageDegreeNearTarget) {
  const Graph g = GenerateChungLu({20000, 10.0, 2.5, 31});
  // Duplicate discards push the realized average below target; allow 35%.
  EXPECT_GT(g.average_degree(), 6.5);
  EXPECT_LT(g.average_degree(), 10.5);
}

TEST(ChungLuTest, PowerLawTail) {
  const Graph g = GenerateChungLu({20000, 8.0, 2.3, 41});
  // Heavy tail: the hub degree dwarfs the average.
  EXPECT_GT(static_cast<double>(g.max_degree()),
            12.0 * g.average_degree());
}

TEST(ChungLuTest, GammaShapesTail) {
  // Smaller gamma -> heavier tail -> larger hubs, other params equal.
  const Graph heavy = GenerateChungLu({20000, 8.0, 2.1, 51});
  const Graph light = GenerateChungLu({20000, 8.0, 2.9, 51});
  EXPECT_GT(heavy.max_degree(), light.max_degree());
}

TEST(ChungLuTest, TinyGraphs) {
  EXPECT_EQ(GenerateChungLu({0, 5.0, 2.5, 1}).num_vertices(), 0u);
  EXPECT_EQ(GenerateChungLu({1, 5.0, 2.5, 1}).num_edges(), 0u);
}

TEST(DatasetSuiteTest, AllStandInsListed) {
  EXPECT_EQ(AllStandIns().size(), 6u);
  EXPECT_EQ(StandInName(AllStandIns().front()), "email");
  EXPECT_EQ(StandInName(AllStandIns().back()), "friendster");
}

TEST(DatasetSuiteTest, SpecsMirrorPaperOrdering) {
  // Relative ordering by n and the Orkut density spike must mirror
  // Table III.
  const auto email = GetDatasetSpec(StandIn::kEmail, 1.0);
  const auto dblp = GetDatasetSpec(StandIn::kDblp, 1.0);
  const auto orkut = GetDatasetSpec(StandIn::kOrkut, 1.0);
  const auto friendster = GetDatasetSpec(StandIn::kFriendster, 1.0);
  EXPECT_LT(email.num_vertices, dblp.num_vertices);
  EXPECT_LT(dblp.num_vertices, friendster.num_vertices);
  EXPECT_GT(orkut.average_degree, friendster.average_degree);
  EXPECT_GT(friendster.average_degree, dblp.average_degree);
  EXPECT_TRUE(orkut.large);
  EXPECT_FALSE(email.large);
  EXPECT_EQ(email.paper_vertices, 36692u);
  EXPECT_EQ(friendster.paper_edges, 1806067135u);
}

TEST(DatasetSuiteTest, ScaleMultipliesVertices) {
  const auto base = GetDatasetSpec(StandIn::kEmail, 1.0);
  const auto half = GetDatasetSpec(StandIn::kEmail, 0.5);
  const auto twice = GetDatasetSpec(StandIn::kEmail, 2.0);
  EXPECT_EQ(half.num_vertices, base.num_vertices / 2);
  EXPECT_EQ(twice.num_vertices, base.num_vertices * 2);
}

TEST(DatasetSuiteTest, GenerationMatchesSpec) {
  const Graph g = GenerateStandIn(StandIn::kEmail, 0.25);
  const auto spec = GetDatasetSpec(StandIn::kEmail, 0.25);
  EXPECT_EQ(g.num_vertices(), spec.num_vertices);
  EXPECT_GT(g.average_degree(), spec.average_degree * 0.5);
}

TEST(DatasetSuiteTest, StandInsHaveUsableCores) {
  // Every stand-in must contain the k-cores its paper group is benchmarked
  // at (k = 4 small, larger k for the large group).
  for (const StandIn dataset : AllStandIns()) {
    const Graph g = GenerateStandIn(dataset, 0.25);
    const auto decomp = CoreDecomposition(g);
    const auto spec = GetDatasetSpec(dataset, 0.25);
    EXPECT_GE(decomp.degeneracy, spec.large ? 10u : 4u)
        << spec.name << " kmax=" << decomp.degeneracy;
  }
}

}  // namespace
}  // namespace ticl
