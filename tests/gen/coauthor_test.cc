#include "gen/coauthor_network.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "algo/connectivity.h"
#include "testing/builders.h"

namespace ticl {
namespace {

CoauthorNetworkOptions SmallOptions() {
  CoauthorNetworkOptions options;
  options.num_fields = 3;
  options.groups_per_field = 4;
  options.min_group_size = 5;
  options.max_group_size = 8;
  options.seed = 99;
  return options;
}

TEST(CoauthorTest, LayoutConsistency) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  const VertexId n = net.graph.num_vertices();
  EXPECT_EQ(net.names.size(), n);
  EXPECT_EQ(net.field.size(), n);
  EXPECT_EQ(net.group.size(), n);
  EXPECT_EQ(net.field_names.size(), 3u);
  EXPECT_EQ(net.group_members.size(), 12u);
  for (const VertexList& group : net.group_members) {
    EXPECT_GE(group.size(), 5u);
    EXPECT_LE(group.size(), 8u);
  }
}

TEST(CoauthorTest, GroupLabelsMatchMemberLists) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  for (std::size_t gid = 0; gid < net.group_members.size(); ++gid) {
    for (const VertexId v : net.group_members[gid]) {
      EXPECT_EQ(net.group[v], gid);
    }
  }
}

TEST(CoauthorTest, FieldsPartitionGroups) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  for (std::size_t gid = 0; gid < net.group_members.size(); ++gid) {
    const std::uint32_t field = net.field[net.group_members[gid].front()];
    for (const VertexId v : net.group_members[gid]) {
      EXPECT_EQ(net.field[v], field);
    }
  }
}

TEST(CoauthorTest, GroupsInternallyConnected) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  for (const VertexList& group : net.group_members) {
    EXPECT_TRUE(IsSubsetConnected(net.graph, group));
  }
}

TEST(CoauthorTest, WeightsPositive) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  for (VertexId v = 0; v < net.graph.num_vertices(); ++v) {
    EXPECT_GE(net.graph.weight(v), 0.0);
  }
  EXPECT_GT(net.graph.total_weight(), 0.0);
}

TEST(CoauthorTest, SeniorsOutweighJuniorsOnAverage) {
  CoauthorNetworkOptions options = SmallOptions();
  options.groups_per_field = 10;
  const CoauthorNetwork net = GenerateCoauthorNetwork(options);
  double senior_sum = 0.0;
  double junior_sum = 0.0;
  std::size_t senior_count = 0;
  std::size_t junior_count = 0;
  for (const VertexList& group : net.group_members) {
    const auto seniors = static_cast<std::size_t>(
        std::ceil(static_cast<double>(group.size()) * 0.5));
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i < seniors) {
        senior_sum += net.graph.weight(group[i]);
        ++senior_count;
      } else {
        junior_sum += net.graph.weight(group[i]);
        ++junior_count;
      }
    }
  }
  EXPECT_GT(senior_sum / static_cast<double>(senior_count),
            3.0 * junior_sum / static_cast<double>(junior_count));
}

TEST(CoauthorTest, Deterministic) {
  const CoauthorNetwork a = GenerateCoauthorNetwork(SmallOptions());
  const CoauthorNetwork b = GenerateCoauthorNetwork(SmallOptions());
  EXPECT_EQ(testing::ToVector(a.graph.adjacency()),
            testing::ToVector(b.graph.adjacency()));
  EXPECT_EQ(testing::ToVector(a.graph.weights()),
            testing::ToVector(b.graph.weights()));
  EXPECT_EQ(a.names, b.names);
}

TEST(CoauthorTest, NamesNonEmptyAndUnique) {
  const CoauthorNetwork net = GenerateCoauthorNetwork(SmallOptions());
  std::set<std::string> names(net.names.begin(), net.names.end());
  EXPECT_EQ(names.size(), net.names.size());  // "[id]" suffix guarantees it
  for (const std::string& name : net.names) EXPECT_FALSE(name.empty());
}

TEST(CoauthorTest, MetricsProduceDifferentScales) {
  CoauthorNetworkOptions h = SmallOptions();
  h.metric = CitationMetric::kHIndex;
  CoauthorNetworkOptions g = SmallOptions();
  g.metric = CitationMetric::kGIndex;
  const CoauthorNetwork net_h = GenerateCoauthorNetwork(h);
  const CoauthorNetwork net_g = GenerateCoauthorNetwork(g);
  // g-index values run higher than h-index values overall.
  EXPECT_GT(net_g.graph.total_weight(), net_h.graph.total_weight());
}

TEST(CoauthorTest, MetricNames) {
  EXPECT_EQ(CitationMetricName(CitationMetric::kHIndex), "h-index");
  EXPECT_EQ(CitationMetricName(CitationMetric::kGIndex), "g-index");
  EXPECT_EQ(CitationMetricName(CitationMetric::kI10Index), "i10-index");
}

TEST(CoauthorTest, ManyFieldsGetSuffixedNames) {
  CoauthorNetworkOptions options = SmallOptions();
  options.num_fields = 7;
  const CoauthorNetwork net = GenerateCoauthorNetwork(options);
  EXPECT_EQ(net.field_names.size(), 7u);
  EXPECT_NE(net.field_names[5], net.field_names[0]);
}

}  // namespace
}  // namespace ticl
