#include "gen/planted_communities.h"

#include <gtest/gtest.h>

#include "core/improved_search.h"
#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

PlantedCommunitiesOptions SmallOptions() {
  PlantedCommunitiesOptions options;
  options.background_vertices = 300;
  options.background_average_degree = 4.0;
  options.num_communities = 4;
  options.community_size = 6;
  options.intra_probability = 1.0;  // cliques
  options.attachment_edges = 2;
  options.weight_boost = 50.0;
  options.seed = 17;
  return options;
}

TEST(PlantedTest, SizesAndLayout) {
  const auto planted = GeneratePlantedCommunities(SmallOptions());
  EXPECT_EQ(planted.graph.num_vertices(), 300u + 4u * 6u);
  ASSERT_EQ(planted.planted.size(), 4u);
  for (const VertexList& block : planted.planted) {
    EXPECT_EQ(block.size(), 6u);
    for (const VertexId v : block) EXPECT_GE(v, 300u);
  }
}

TEST(PlantedTest, BlocksAreCliquesAtFullIntraProbability) {
  const auto planted = GeneratePlantedCommunities(SmallOptions());
  for (const VertexList& block : planted.planted) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      for (std::size_t j = i + 1; j < block.size(); ++j) {
        EXPECT_TRUE(planted.graph.HasEdge(block[i], block[j]));
      }
    }
  }
}

TEST(PlantedTest, WeightsBoosted) {
  const auto planted = GeneratePlantedCommunities(SmallOptions());
  for (const VertexList& block : planted.planted) {
    for (const VertexId v : block) {
      EXPECT_GE(planted.graph.weight(v), 50.0);
    }
  }
  for (VertexId v = 0; v < 300; ++v) {
    EXPECT_LT(planted.graph.weight(v), 1.0);
  }
}

TEST(PlantedTest, Deterministic) {
  const auto a = GeneratePlantedCommunities(SmallOptions());
  const auto b = GeneratePlantedCommunities(SmallOptions());
  EXPECT_EQ(testing::ToVector(a.graph.adjacency()),
            testing::ToVector(b.graph.adjacency()));
  EXPECT_EQ(testing::ToVector(a.graph.weights()),
            testing::ToVector(b.graph.weights()));
  EXPECT_EQ(a.planted, b.planted);
}

TEST(PlantedTest, PlantedBlocksAreValidCommunities) {
  const auto planted = GeneratePlantedCommunities(SmallOptions());
  // Clique of 6 = connected 5-core; check at k = 5.
  for (const VertexList& block : planted.planted) {
    EXPECT_EQ(ValidateCommunity(planted.graph, block, 5), "");
  }
}

TEST(PlantedTest, SumSearchRecoversPlantedMembersAtHighK) {
  // At k = 5 the background (avg degree 4) contributes little; the top
  // community under sum must consist of planted vertices.
  const auto planted = GeneratePlantedCommunities(SmallOptions());
  Query query;
  query.k = 5;
  query.r = 1;
  query.aggregation = AggregationSpec::Sum();
  const SearchResult result = ImprovedSearch(planted.graph, query);
  ASSERT_FALSE(result.communities.empty());
  for (const VertexId v : result.communities.front().members) {
    EXPECT_GE(v, 300u) << "background vertex in top planted community";
  }
}

TEST(PlantedTest, ZeroBackgroundSupported) {
  PlantedCommunitiesOptions options = SmallOptions();
  options.background_vertices = 0;
  options.attachment_edges = 0;
  const auto planted = GeneratePlantedCommunities(options);
  EXPECT_EQ(planted.graph.num_vertices(), 24u);
  EXPECT_EQ(planted.planted.size(), 4u);
}

}  // namespace
}  // namespace ticl
