#include "core/search.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

TEST(AutoSolverTest, HardnessDrivenDispatch) {
  Query q;
  q.aggregation = AggregationSpec::Min();
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kMinPeel);
  q.aggregation = AggregationSpec::Max();
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kMaxComponents);
  q.aggregation = AggregationSpec::Sum();
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kImproved);
  q.aggregation = AggregationSpec::SumSurplus(1.0);
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kImproved);
  q.aggregation = AggregationSpec::Avg();
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kLocalGreedy);
  q.aggregation = AggregationSpec::WeightDensity(1.0);
  EXPECT_EQ(AutoSolverFor(q), SolverKind::kLocalGreedy);
}

TEST(AutoSolverTest, SizeConstraintForcesLocalSearch) {
  Query q;
  q.k = 2;
  q.size_limit = 5;
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    q.aggregation = spec;
    EXPECT_EQ(AutoSolverFor(q), SolverKind::kLocalGreedy);
  }
}

TEST(SolveTest, AutoProducesValidResultsForEveryAggregation) {
  const Graph g = TwoTrianglesAndK4();
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::SumSurplus(1.0),
        AggregationSpec::Avg(), AggregationSpec::WeightDensity(1.0)}) {
    Query q;
    q.k = 2;
    q.r = 3;
    q.aggregation = spec;
    const SearchResult result = Solve(g, q);
    EXPECT_EQ(ValidateResult(g, q, result), "")
        << AggregationName(spec.kind);
    EXPECT_FALSE(result.communities.empty()) << AggregationName(spec.kind);
  }
}

TEST(SolveTest, ExplicitSolverDispatch) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.k = 2;
  q.r = 2;
  q.aggregation = AggregationSpec::Sum();

  SolveOptions naive;
  naive.solver = SolverKind::kNaive;
  SolveOptions improved;
  improved.solver = SolverKind::kImproved;
  SolveOptions approx;
  approx.solver = SolverKind::kApprox;
  approx.epsilon = 0.1;

  const SearchResult rn = Solve(g, q, naive);
  const SearchResult ri = Solve(g, q, improved);
  const SearchResult ra = Solve(g, q, approx);
  ASSERT_EQ(rn.communities.size(), 2u);
  ASSERT_EQ(ri.communities.size(), 2u);
  ASSERT_EQ(ra.communities.size(), 2u);
  EXPECT_DOUBLE_EQ(rn.communities[0].influence, 106.0);
  EXPECT_DOUBLE_EQ(ri.communities[0].influence, 106.0);
  EXPECT_GE(ra.communities[1].influence,
            0.9 * ri.communities[1].influence);
}

TEST(SolveTest, LocalVariantsRespectGreedyFlag) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.k = 2;
  q.r = 2;
  q.size_limit = 4;
  q.aggregation = AggregationSpec::Sum();
  SolveOptions greedy;
  greedy.solver = SolverKind::kLocalGreedy;
  SolveOptions random;
  random.solver = SolverKind::kLocalRandom;
  const SearchResult rg = Solve(g, q, greedy);
  const SearchResult rr = Solve(g, q, random);
  EXPECT_EQ(ValidateResult(g, q, rg), "");
  EXPECT_EQ(ValidateResult(g, q, rr), "");
  ASSERT_FALSE(rg.communities.empty());
  ASSERT_FALSE(rr.communities.empty());
  // Greedy is never worse on this fixture.
  EXPECT_GE(rg.communities[0].influence, rr.communities[0].influence);
}

TEST(SolveTest, ExactSolverViaFacade) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.k = 2;
  q.r = 1;
  q.size_limit = 3;
  q.aggregation = AggregationSpec::Sum();
  SolveOptions options;
  options.solver = SolverKind::kExact;
  const SearchResult result = Solve(g, q, options);
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 105.0);
}

// Regression: a user-supplied --epsilon of 1.0 (or anything outside
// [0, 1)) used to sail through the tools into ImprovedSearch's
// TICL_CHECK and abort the process; ValidateSolveOptions is the clean
// gate the tools and the serve layer now use.
TEST(ValidateSolveOptionsTest, RejectsEpsilonOutsideHalfOpenUnitRange) {
  SolveOptions options;
  EXPECT_EQ(ValidateSolveOptions(options), "");  // default 0.1
  options.epsilon = 0.0;
  EXPECT_EQ(ValidateSolveOptions(options), "");  // exact Improve config
  options.epsilon = 0.999;
  EXPECT_EQ(ValidateSolveOptions(options), "");
  options.epsilon = 1.0;
  EXPECT_NE(ValidateSolveOptions(options), "");
  options.epsilon = -0.1;
  EXPECT_NE(ValidateSolveOptions(options), "");
  options.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(ValidateSolveOptions(options), "");
}

TEST(SolverKindNameTest, AllNamed) {
  EXPECT_EQ(SolverKindName(SolverKind::kAuto), "auto");
  EXPECT_EQ(SolverKindName(SolverKind::kNaive), "naive");
  EXPECT_EQ(SolverKindName(SolverKind::kImproved), "improved");
  EXPECT_EQ(SolverKindName(SolverKind::kApprox), "approx");
  EXPECT_EQ(SolverKindName(SolverKind::kExact), "exact");
  EXPECT_EQ(SolverKindName(SolverKind::kLocalGreedy), "local-greedy");
  EXPECT_EQ(SolverKindName(SolverKind::kLocalRandom), "local-random");
  EXPECT_EQ(SolverKindName(SolverKind::kMinPeel), "min-peel");
  EXPECT_EQ(SolverKindName(SolverKind::kMaxComponents), "max-components");
}

TEST(SolveTest, TonicAutoAcrossAggregations) {
  const Graph g = TwoTrianglesAndK4();
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(),
        AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    Query q;
    q.k = 2;
    q.r = 3;
    q.non_overlapping = true;
    q.aggregation = spec;
    const SearchResult result = Solve(g, q);
    EXPECT_EQ(ValidateResult(g, q, result), "")
        << AggregationName(spec.kind);
  }
}

}  // namespace
}  // namespace ticl
