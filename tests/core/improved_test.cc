#include "core/improved_search.h"

#include <gtest/gtest.h>

#include "core/naive_search.h"
#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query SumQuery(VertexId k, std::uint32_t r) {
  Query q;
  q.k = k;
  q.r = r;
  q.aggregation = AggregationSpec::Sum();
  return q;
}

TEST(ImprovedSearchTest, FixtureTopFiveValues) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = ImprovedSearch(g, SumQuery(2, 5));
  ASSERT_EQ(result.communities.size(), 5u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 105.0);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 104.0);
  EXPECT_DOUBLE_EQ(result.communities[3].influence, 103.0);
  EXPECT_DOUBLE_EQ(result.communities[4].influence, 78.0);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
}

TEST(ImprovedSearchTest, MatchesNaiveOnFixtureEveryR) {
  const Graph g = TwoTrianglesAndK4();
  for (std::uint32_t r = 1; r <= 8; ++r) {
    const SearchResult improved = ImprovedSearch(g, SumQuery(2, r));
    const SearchResult naive = NaiveSearch(g, SumQuery(2, r));
    ASSERT_EQ(improved.communities.size(), naive.communities.size())
        << "r=" << r;
    for (std::size_t i = 0; i < improved.communities.size(); ++i) {
      EXPECT_DOUBLE_EQ(improved.communities[i].influence,
                       naive.communities[i].influence)
          << "r=" << r << " i=" << i;
      EXPECT_EQ(improved.communities[i].members,
                naive.communities[i].members);
    }
  }
}

TEST(ImprovedSearchTest, ExhaustsFamilyWhenRLarge) {
  const Graph g = TwoTrianglesAndK4();
  // The full deletion family at k=2 has 8 communities (see builders.h).
  const SearchResult result = ImprovedSearch(g, SumQuery(2, 50));
  EXPECT_EQ(result.communities.size(), 8u);
  EXPECT_EQ(ValidateResult(g, SumQuery(2, 50), result), "");
}

TEST(ImprovedSearchTest, PruningDoesNotChangeResults) {
  const Graph g = TwoTrianglesAndK4();
  ImprovedOptions no_pruning;
  no_pruning.enable_bound_pruning = false;
  const SearchResult pruned = ImprovedSearch(g, SumQuery(2, 5));
  const SearchResult unpruned =
      ImprovedSearch(g, SumQuery(2, 5), no_pruning);
  ASSERT_EQ(pruned.communities.size(), unpruned.communities.size());
  for (std::size_t i = 0; i < pruned.communities.size(); ++i) {
    EXPECT_EQ(pruned.communities[i].members, unpruned.communities[i].members);
  }
  // Pruning must do no more peel work than the unpruned run.
  EXPECT_LE(pruned.stats.peel_operations, unpruned.stats.peel_operations);
}

TEST(ImprovedSearchTest, FifoOrderSameResults) {
  const Graph g = TwoTrianglesAndK4();
  ImprovedOptions fifo;
  fifo.best_first = false;
  const SearchResult best_first = ImprovedSearch(g, SumQuery(2, 5));
  const SearchResult fifo_result = ImprovedSearch(g, SumQuery(2, 5), fifo);
  ASSERT_EQ(best_first.communities.size(), fifo_result.communities.size());
  for (std::size_t i = 0; i < best_first.communities.size(); ++i) {
    EXPECT_EQ(best_first.communities[i].members,
              fifo_result.communities[i].members);
  }
}

TEST(ImprovedSearchTest, ApproxNeverWorseThanGuarantee) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult exact = ImprovedSearch(g, SumQuery(2, 4));
  for (const double epsilon : {0.01, 0.1, 0.3, 0.9}) {
    ImprovedOptions approx;
    approx.epsilon = epsilon;
    const SearchResult result =
        ImprovedSearch(g, SumQuery(2, 4), approx);
    ASSERT_EQ(result.communities.size(), 4u) << "eps=" << epsilon;
    EXPECT_GE(result.communities[3].influence,
              (1.0 - epsilon) * exact.communities[3].influence);
    EXPECT_EQ(ValidateResult(g, SumQuery(2, 4), result), "");
  }
}

TEST(ImprovedSearchTest, ApproxDoesNoMoreWorkThanExact) {
  const Graph g = TwoTrianglesAndK4();
  ImprovedOptions approx;
  approx.epsilon = 0.5;
  const SearchResult exact = ImprovedSearch(g, SumQuery(2, 5));
  const SearchResult loose = ImprovedSearch(g, SumQuery(2, 5), approx);
  EXPECT_LE(loose.stats.peel_operations, exact.stats.peel_operations);
}

TEST(ImprovedSearchTest, TonicReturnsComponents) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 5);
  query.non_overlapping = true;
  const SearchResult result = ImprovedSearch(g, query);
  ASSERT_EQ(result.communities.size(), 2u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(ImprovedSearchTest, NoKCoreYieldsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(ImprovedSearch(g, SumQuery(5, 3)).communities.empty());
}

TEST(ImprovedSearchTest, SumSurplusMatchesNaive) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 4);
  query.aggregation = AggregationSpec::SumSurplus(3.0);
  const SearchResult improved = ImprovedSearch(g, query);
  const SearchResult naive = NaiveSearch(g, query);
  ASSERT_EQ(improved.communities.size(), naive.communities.size());
  for (std::size_t i = 0; i < improved.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(improved.communities[i].influence,
                     naive.communities[i].influence);
  }
}

TEST(ImprovedSearchDeathTest, RejectsAvg) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 1);
  query.aggregation = AggregationSpec::Avg();
  EXPECT_DEATH(ImprovedSearch(g, query), "monotone");
}

TEST(ImprovedSearchDeathTest, RejectsSizeConstraint) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 1);
  query.size_limit = 5;
  EXPECT_DEATH(ImprovedSearch(g, query), "size-unconstrained");
}

TEST(ImprovedSearchDeathTest, RejectsBadEpsilon) {
  const Graph g = TwoTrianglesAndK4();
  ImprovedOptions options;
  options.epsilon = 1.0;
  EXPECT_DEATH(ImprovedSearch(g, SumQuery(2, 1), options), "");
}

}  // namespace
}  // namespace ticl
