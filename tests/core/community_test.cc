#include "core/community.h"

#include <gtest/gtest.h>

#include "testing/builders.h"
#include "util/rng.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

TEST(CommunityTest, MakeSortsAndEvaluates) {
  const Graph g = TwoTrianglesAndK4();
  const Community c = MakeCommunity(g, Members({2, 0, 1}),
                                    AggregationSpec::Sum());
  EXPECT_EQ(c.members, Members({0, 1, 2}));
  EXPECT_DOUBLE_EQ(c.influence, 60.0);
  EXPECT_EQ(c.size(), 3u);
}

TEST(CommunityTest, HashMatchesVertexSetHash) {
  const Graph g = TwoTrianglesAndK4();
  const Community c =
      MakeCommunity(g, Members({7, 9, 8}), AggregationSpec::Avg());
  const VertexList sorted = Members({7, 8, 9});
  EXPECT_EQ(c.hash, HashVertexSet(sorted.data(), sorted.size()));
}

TEST(CommunityTest, SameSetDifferentOrderSameHash) {
  const Graph g = TwoTrianglesAndK4();
  const Community a =
      MakeCommunity(g, Members({3, 4, 5}), AggregationSpec::Sum());
  const Community b =
      MakeCommunity(g, Members({5, 3, 4}), AggregationSpec::Avg());
  EXPECT_EQ(a.hash, b.hash);
}

TEST(CommunityTest, OverlapDetection) {
  const Graph g = TwoTrianglesAndK4();
  const auto spec = AggregationSpec::Sum();
  const Community a = MakeCommunity(g, Members({0, 1, 2}), spec);
  const Community b = MakeCommunity(g, Members({2, 3, 4}), spec);
  const Community c = MakeCommunity(g, Members({6, 7, 8}), spec);
  EXPECT_TRUE(CommunitiesOverlap(a, b));
  EXPECT_TRUE(CommunitiesOverlap(b, a));
  EXPECT_FALSE(CommunitiesOverlap(a, c));
  EXPECT_TRUE(CommunitiesOverlap(a, a));
}

TEST(CommunityTest, ToStringFormatsAndCaps) {
  const Graph g = TwoTrianglesAndK4();
  const Community c =
      MakeCommunity(g, Members({6, 7, 8, 9}), AggregationSpec::Sum());
  const std::string full = CommunityToString(c);
  EXPECT_NE(full.find("6, 7, 8, 9"), std::string::npos);
  EXPECT_NE(full.find("|H|=4"), std::string::npos);
  EXPECT_NE(full.find("f=106"), std::string::npos);
  const std::string capped = CommunityToString(c, 2);
  EXPECT_NE(capped.find("6, 7, ..."), std::string::npos);
}

}  // namespace
}  // namespace ticl
