// Cross-implementation property tests: the three independent solvers for
// monotone aggregations (Algorithm 1, Algorithm 2, and subset enumeration)
// must agree on random graphs, and every solver's output must validate.

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/exact_search.h"
#include "core/improved_search.h"
#include "core/local_search.h"
#include "core/minmax_search.h"
#include "core/naive_search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"

namespace ticl {
namespace {

Graph RandomWeightedEr(VertexId n, std::uint64_t m, std::uint64_t seed) {
  Graph g = GenerateErdosRenyi(n, m, seed);
  AssignWeights(&g, WeightScheme::kUniform, seed ^ 0x9999);
  return g;
}

void ExpectSameCommunities(const SearchResult& a, const SearchResult& b,
                           const std::string& label) {
  ASSERT_EQ(a.communities.size(), b.communities.size()) << label;
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.communities[i].influence, b.communities[i].influence)
        << label << " rank " << i;
    EXPECT_EQ(a.communities[i].members, b.communities[i].members)
        << label << " rank " << i;
  }
}

class SumCrossCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SumCrossCheckTest, NaiveEqualsImprovedOnErdosRenyi) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(60, 160, seed);
  for (const VertexId k : {2u, 3u}) {
    for (const std::uint32_t r : {1u, 4u, 8u}) {
      Query query;
      query.k = k;
      query.r = r;
      query.aggregation = AggregationSpec::Sum();
      const SearchResult naive = NaiveSearch(g, query);
      const SearchResult improved = ImprovedSearch(g, query);
      ExpectSameCommunities(naive, improved,
                            "k=" + std::to_string(k) +
                                " r=" + std::to_string(r) +
                                " seed=" + std::to_string(seed));
      EXPECT_EQ(ValidateResult(g, query, naive), "");
      EXPECT_EQ(ValidateResult(g, query, improved), "");
    }
  }
}

TEST_P(SumCrossCheckTest, NaiveEqualsImprovedOnPowerLaw) {
  const std::uint64_t seed = GetParam();
  Graph g = GenerateChungLu({150, 6.0, 2.4, seed});
  AssignWeights(&g, WeightScheme::kUniform, seed + 1);
  Query query;
  query.k = 2;
  query.r = 5;
  query.aggregation = AggregationSpec::Sum();
  ExpectSameCommunities(NaiveSearch(g, query), ImprovedSearch(g, query),
                        "power-law seed=" + std::to_string(seed));
}

TEST_P(SumCrossCheckTest, ImprovedAblationsAgree) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(60, 160, seed);
  Query query;
  query.k = 2;
  query.r = 6;
  query.aggregation = AggregationSpec::Sum();
  const SearchResult reference = ImprovedSearch(g, query);
  ImprovedOptions no_pruning;
  no_pruning.enable_bound_pruning = false;
  ExpectSameCommunities(reference, ImprovedSearch(g, query, no_pruning),
                        "no-pruning");
  ImprovedOptions fifo;
  fifo.best_first = false;
  ExpectSameCommunities(reference, ImprovedSearch(g, query, fifo), "fifo");
  ImprovedOptions fifo_no_pruning;
  fifo_no_pruning.best_first = false;
  fifo_no_pruning.enable_bound_pruning = false;
  ExpectSameCommunities(reference,
                        ImprovedSearch(g, query, fifo_no_pruning),
                        "fifo-no-pruning");
}

TEST_P(SumCrossCheckTest, ImprovedEqualsExactEnumerationOnTinyGraphs) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(12, 26, seed);
  for (const VertexId k : {2u, 3u}) {
    Query query;
    query.k = k;
    query.r = 4;
    query.aggregation = AggregationSpec::Sum();
    const SearchResult improved = ImprovedSearch(g, query);
    const SearchResult exact = ExactSearch(g, query);
    // The deletion family's top-r values must equal the global optimum over
    // all connected k-cores (monotonicity makes best-first exact).
    ASSERT_EQ(improved.communities.size(), exact.communities.size());
    for (std::size_t i = 0; i < exact.communities.size(); ++i) {
      EXPECT_DOUBLE_EQ(improved.communities[i].influence,
                       exact.communities[i].influence)
          << "k=" << k << " rank " << i;
    }
  }
}

TEST_P(SumCrossCheckTest, SumSurplusAgreesAcrossSolvers) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(50, 130, seed);
  Query query;
  query.k = 2;
  query.r = 5;
  query.aggregation = AggregationSpec::SumSurplus(0.5);
  ExpectSameCommunities(NaiveSearch(g, query), ImprovedSearch(g, query),
                        "sum-surplus");
}

TEST_P(SumCrossCheckTest, TonicComponentsAgree) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(60, 140, seed);
  Query query;
  query.k = 2;
  query.r = 5;
  query.non_overlapping = true;
  query.aggregation = AggregationSpec::Sum();
  const SearchResult naive = NaiveSearch(g, query);
  const SearchResult improved = ImprovedSearch(g, query);
  ExpectSameCommunities(naive, improved, "tonic");
  EXPECT_EQ(ValidateResult(g, query, naive), "");
}

TEST_P(SumCrossCheckTest, LocalSearchValidAndBoundedByExact) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(14, 32, seed);
  Query query;
  query.k = 2;
  query.r = 3;
  query.size_limit = 5;
  for (const auto spec : {AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    query.aggregation = spec;
    const SearchResult exact = ExactSearch(g, query);
    for (const bool greedy : {true, false}) {
      LocalSearchOptions options;
      options.greedy = greedy;
      const SearchResult heuristic = LocalSearch(g, query, options);
      EXPECT_EQ(ValidateResult(g, query, heuristic), "");
      if (!heuristic.communities.empty()) {
        ASSERT_FALSE(exact.communities.empty());
        EXPECT_LE(heuristic.communities[0].influence,
                  exact.communities[0].influence + 1e-12)
            << AggregationName(spec.kind) << " greedy=" << greedy;
      }
    }
  }
}

TEST_P(SumCrossCheckTest, MinPeelMatchesMaximalityFilteredEnumeration) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(11, 22, seed);
  Query query;
  query.k = 2;
  query.r = 6;
  query.aggregation = AggregationSpec::Min();
  ExactOptions options;
  options.enforce_maximality = true;
  const SearchResult exact = ExactSearch(g, query, options);
  const SearchResult peel = MinPeelSearch(g, query);
  ASSERT_EQ(exact.communities.size(), peel.communities.size())
      << "seed=" << seed;
  for (std::size_t i = 0; i < exact.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(exact.communities[i].influence,
                     peel.communities[i].influence)
        << "seed=" << seed << " rank " << i;
    EXPECT_EQ(exact.communities[i].members, peel.communities[i].members)
        << "seed=" << seed << " rank " << i;
  }
}

TEST_P(SumCrossCheckTest, EverySolverOutputValidates) {
  const std::uint64_t seed = GetParam();
  const Graph g = RandomWeightedEr(80, 220, seed);
  Query query;
  query.k = 3;
  query.r = 4;
  query.aggregation = AggregationSpec::Sum();
  EXPECT_EQ(ValidateResult(g, query, NaiveSearch(g, query)), "");
  EXPECT_EQ(ValidateResult(g, query, ImprovedSearch(g, query)), "");
  Query min_query = query;
  min_query.aggregation = AggregationSpec::Min();
  EXPECT_EQ(ValidateResult(g, min_query, MinPeelSearch(g, min_query)), "");
  Query max_query = query;
  max_query.aggregation = AggregationSpec::Max();
  EXPECT_EQ(
      ValidateResult(g, max_query, MaxComponentsSearch(g, max_query)), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SumCrossCheckTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808, 909, 1010));

}  // namespace
}  // namespace ticl
