#include "core/truss_search.h"

#include <gtest/gtest.h>

#include "algo/truss_decomposition.h"
#include "algo/weights.h"
#include "gen/erdos_renyi.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query SumQuery(VertexId k, std::uint32_t r) {
  Query q;
  q.k = k;
  q.r = r;
  q.aggregation = AggregationSpec::Sum();
  return q;
}

TEST(TrussSearchTest, FixtureTopThreeAtTrussThree) {
  const Graph g = TwoTrianglesAndK4();
  // 3-truss components: K4 (106), {0,1,2} (60), {3,4,5} (18). Children of
  // K4: its triangles (each pair of K4 vertices still shares 2 common
  // neighbours... removing one vertex leaves a triangle, truss 3).
  const SearchResult result = TrussImprovedSearch(g, SumQuery(3, 3));
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 105.0);  // {7,8,9}
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 104.0);  // {6,8,9}
}

TEST(TrussSearchTest, FixtureTrussFourOnlyK4) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = TrussImprovedSearch(g, SumQuery(4, 5));
  // K4 is the only 4-truss; removing any vertex destroys it.
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
}

TEST(TrussSearchTest, BridgeNeverJoinsTrussCommunities) {
  const Graph g = TwoTrianglesAndK4();
  // Unlike the k-core model (where {0..5} is one 2-core community), the
  // 3-truss world splits the two triangles: no result may contain both
  // vertex 0 and vertex 3.
  const SearchResult result = TrussImprovedSearch(g, SumQuery(3, 6));
  for (const Community& c : result.communities) {
    const bool has_a =
        std::binary_search(c.members.begin(), c.members.end(), VertexId{0});
    const bool has_b =
        std::binary_search(c.members.begin(), c.members.end(), VertexId{3});
    EXPECT_FALSE(has_a && has_b);
  }
}

TEST(TrussSearchTest, ResultsAreValidTrussSubgraphs) {
  Graph g = GenerateErdosRenyi(150, 800, 9);
  AssignWeights(&g, WeightScheme::kUniform, 10);
  for (const VertexId k : {3u, 4u}) {
    const SearchResult result = TrussImprovedSearch(g, SumQuery(k, 4));
    for (const Community& c : result.communities) {
      EXPECT_EQ(ValidateKTrussSubgraph(g, c.members, k), "") << "k=" << k;
    }
    // Non-increasing influence order.
    for (std::size_t i = 1; i < result.communities.size(); ++i) {
      EXPECT_GE(result.communities[i - 1].influence,
                result.communities[i].influence);
    }
  }
}

TEST(TrussSearchTest, TopOneIsTheBestTrussComponent) {
  Graph g = GenerateErdosRenyi(120, 600, 11);
  AssignWeights(&g, WeightScheme::kUniform, 12);
  const auto components = KTrussComponents(g, 3);
  if (components.empty()) GTEST_SKIP();
  double best = 0.0;
  for (const VertexList& component : components) {
    best = std::max(best, EvaluateOnSubset(AggregationSpec::Sum(), g,
                                           component));
  }
  const SearchResult result = TrussImprovedSearch(g, SumQuery(3, 1));
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, best);
}

TEST(TrussSearchTest, TonicReturnsDisjointComponents) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(3, 5);
  query.non_overlapping = true;
  const SearchResult result = TrussImprovedSearch(g, query);
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_EQ(result.communities[1].members, Members({0, 1, 2}));
  EXPECT_EQ(result.communities[2].members, Members({3, 4, 5}));
}

TEST(TrussSearchTest, NoTrussYieldsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(TrussImprovedSearch(g, SumQuery(5, 2)).communities.empty());
}

TEST(TrussSearchTest, DeeperFamilyThanComponentsAlone) {
  Graph g = GenerateErdosRenyi(100, 600, 21);
  AssignWeights(&g, WeightScheme::kUniform, 22);
  const auto components = KTrussComponents(g, 3);
  if (components.empty()) GTEST_SKIP();
  const SearchResult result = TrussImprovedSearch(g, SumQuery(3, 8));
  // Deletion exploration must surface strictly more candidates than the
  // component seeding alone whenever any component is larger than a
  // triangle.
  std::size_t biggest = 0;
  for (const auto& component : components) {
    biggest = std::max(biggest, component.size());
  }
  if (biggest > 3 && components.size() < 8) {
    EXPECT_GT(result.communities.size(), components.size());
  }
}

TEST(TrussSearchDeathTest, Preconditions) {
  const Graph g = TwoTrianglesAndK4();
  Query bad_k = SumQuery(1, 1);
  EXPECT_DEATH(TrussImprovedSearch(g, bad_k), "k >= 2");
  Query constrained = SumQuery(3, 1);
  constrained.size_limit = 5;
  EXPECT_DEATH(TrussImprovedSearch(g, constrained), "unconstrained");
  Query avg = SumQuery(3, 1);
  avg.aggregation = AggregationSpec::Avg();
  EXPECT_DEATH(TrussImprovedSearch(g, avg), "monotone");
}

}  // namespace
}  // namespace ticl
