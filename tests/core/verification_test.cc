#include "core/verification.h"

#include <initializer_list>
#include <limits>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

TEST(ValidateCommunityTest, ValidCommunities) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(ValidateCommunity(g, Members({0, 1, 2}), 2), "");
  EXPECT_EQ(ValidateCommunity(g, Members({6, 7, 8, 9}), 3), "");
  EXPECT_EQ(ValidateCommunity(g, Members({0, 1, 2, 3, 4, 5}), 2), "");
}

TEST(ValidateCommunityTest, RejectsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_NE(ValidateCommunity(g, {}, 1), "");
}

TEST(ValidateCommunityTest, RejectsUnsortedAndDuplicates) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_NE(ValidateCommunity(g, Members({2, 0, 1}), 2), "");
  EXPECT_NE(ValidateCommunity(g, Members({0, 1, 1, 2}), 2), "");
}

TEST(ValidateCommunityTest, RejectsOutOfRange) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_NE(ValidateCommunity(g, Members({0, 1, 99}), 1), "");
}

TEST(ValidateCommunityTest, RejectsLowDegree) {
  const Graph g = TwoTrianglesAndK4();
  // {0, 1} is an edge: fine at k = 1, not at k = 2.
  EXPECT_EQ(ValidateCommunity(g, Members({0, 1}), 1), "");
  const std::string problem = ValidateCommunity(g, Members({0, 1}), 2);
  EXPECT_NE(problem.find("induced degree"), std::string::npos);
}

TEST(ValidateCommunityTest, RejectsDisconnected) {
  const Graph g = TwoTrianglesAndK4();
  const std::string problem =
      ValidateCommunity(g, Members({0, 1, 2, 6, 7, 8}), 2);
  EXPECT_NE(problem.find("connected"), std::string::npos);
}

TEST(ValidateCommunityTest, EnforcesSizeLimit) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_NE(ValidateCommunity(g, Members({6, 7, 8, 9}), 2, 3), "");
  EXPECT_EQ(ValidateCommunity(g, Members({6, 7, 8, 9}), 2, 4), "");
  EXPECT_EQ(ValidateCommunity(g, Members({6, 7, 8, 9}), 2, 0), "");
}

class ValidateResultTest : public ::testing::Test {
 protected:
  ValidateResultTest() : g_(TwoTrianglesAndK4()) {
    query_.k = 2;
    query_.r = 3;
    query_.aggregation = AggregationSpec::Sum();
  }

  Community Make(std::initializer_list<VertexId> ids) {
    return MakeCommunity(g_, VertexList(ids), query_.aggregation);
  }

  Graph g_;
  Query query_;
};

TEST_F(ValidateResultTest, AcceptsWellFormedResult) {
  SearchResult result;
  result.communities.push_back(Make({6, 7, 8, 9}));  // 106
  result.communities.push_back(Make({0, 1, 2}));     // 60
  EXPECT_EQ(ValidateResult(g_, query_, result), "");
}

TEST_F(ValidateResultTest, RejectsTooManyCommunities) {
  SearchResult result;
  result.communities.push_back(Make({6, 7, 8, 9}));
  result.communities.push_back(Make({0, 1, 2}));
  result.communities.push_back(Make({3, 4, 5}));
  result.communities.push_back(Make({0, 1, 2, 3, 4, 5}));
  EXPECT_NE(ValidateResult(g_, query_, result), "");
}

TEST_F(ValidateResultTest, RejectsWrongOrder) {
  SearchResult result;
  result.communities.push_back(Make({0, 1, 2}));     // 60
  result.communities.push_back(Make({6, 7, 8, 9}));  // 106 — out of order
  const std::string problem = ValidateResult(g_, query_, result);
  EXPECT_NE(problem.find("sorted"), std::string::npos);
}

TEST_F(ValidateResultTest, RejectsDuplicates) {
  SearchResult result;
  result.communities.push_back(Make({0, 1, 2}));
  result.communities.push_back(Make({0, 1, 2}));
  const std::string problem = ValidateResult(g_, query_, result);
  EXPECT_NE(problem.find("duplicate"), std::string::npos);
}

TEST_F(ValidateResultTest, RejectsTamperedInfluence) {
  SearchResult result;
  result.communities.push_back(Make({0, 1, 2}));
  result.communities.front().influence = 999.0;
  const std::string problem = ValidateResult(g_, query_, result);
  EXPECT_NE(problem.find("influence"), std::string::npos);
}

TEST_F(ValidateResultTest, RejectsInvalidMemberCommunity) {
  SearchResult result;
  result.communities.push_back(Make({0, 1}));  // not a 2-core
  EXPECT_NE(ValidateResult(g_, query_, result), "");
}

TEST_F(ValidateResultTest, TonicOverlapDetected) {
  query_.non_overlapping = true;
  SearchResult result;
  result.communities.push_back(Make({0, 1, 2, 3, 4, 5}));  // 78
  result.communities.push_back(Make({0, 1, 2}));           // overlaps
  const std::string problem = ValidateResult(g_, query_, result);
  EXPECT_NE(problem.find("overlap"), std::string::npos);
}

TEST_F(ValidateResultTest, TonicDisjointAccepted) {
  query_.non_overlapping = true;
  SearchResult result;
  result.communities.push_back(Make({6, 7, 8, 9}));
  result.communities.push_back(Make({0, 1, 2}));
  result.communities.push_back(Make({3, 4, 5}));
  EXPECT_EQ(ValidateResult(g_, query_, result), "");
}

TEST_F(ValidateResultTest, EmptyResultIsValid) {
  EXPECT_EQ(ValidateResult(g_, query_, SearchResult{}), "");
}

TEST_F(ValidateResultTest, SizeLimitPropagates) {
  query_.size_limit = 3;
  SearchResult result;
  result.communities.push_back(Make({6, 7, 8, 9}));
  EXPECT_NE(ValidateResult(g_, query_, result), "");
}

TEST(SearchResultTest, InfluenceAtPastEndIsNegInf) {
  SearchResult result;
  EXPECT_EQ(result.InfluenceAt(0),
            -std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace ticl
