#include "core/exact_search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/improved_search.h"
#include "core/minmax_search.h"
#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query MakeQuery(VertexId k, std::uint32_t r, VertexId s,
                AggregationSpec spec) {
  Query q;
  q.k = k;
  q.r = r;
  q.size_limit = s;
  q.aggregation = spec;
  return q;
}

TEST(ExactSearchTest, SizeConstrainedSumTopThreeAtS3) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result =
      ExactSearch(g, MakeQuery(2, 3, 3, AggregationSpec::Sum()));
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 105.0);  // {7,8,9}
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 104.0);  // {6,8,9}
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 103.0);  // {6,7,9}
  EXPECT_EQ(result.communities[0].members, Members({7, 8, 9}));
}

TEST(ExactSearchTest, SizeConstrainedSumTopThreeAtS4) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result =
      ExactSearch(g, MakeQuery(2, 3, 4, AggregationSpec::Sum()));
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);  // K4
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 105.0);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 104.0);
}

TEST(ExactSearchTest, UnconstrainedAvgTopThree) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result =
      ExactSearch(g, MakeQuery(2, 3, 0, AggregationSpec::Avg()));
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 35.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 104.0 / 3);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 103.0 / 3);
  EXPECT_EQ(result.communities[0].members, Members({7, 8, 9}));
}

TEST(ExactSearchTest, EnumerationDominatesDeletionFamily) {
  // Exact enumeration must match ImprovedSearch for monotone sum: the
  // unconstrained optimum over ALL connected k-cores is attained on the
  // deletion family.
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 5, 0, AggregationSpec::Sum());
  const SearchResult exact = ExactSearch(g, query);
  const SearchResult improved = ImprovedSearch(g, query);
  ASSERT_EQ(exact.communities.size(), improved.communities.size());
  for (std::size_t i = 0; i < exact.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(exact.communities[i].influence,
                     improved.communities[i].influence)
        << i;
  }
}

TEST(ExactSearchTest, MaximalityFilterMatchesMinPeelFamily) {
  // With Definition 3(3) enforced, the surviving min-communities are
  // exactly the peel snapshots.
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(2, 4, 0, AggregationSpec::Min());
  ExactOptions options;
  options.enforce_maximality = true;
  const SearchResult exact = ExactSearch(g, query, options);
  const SearchResult peel = MinPeelSearch(g, query);
  ASSERT_EQ(exact.communities.size(), peel.communities.size());
  for (std::size_t i = 0; i < exact.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(exact.communities[i].influence,
                     peel.communities[i].influence)
        << i;
    EXPECT_EQ(exact.communities[i].members, peel.communities[i].members)
        << i;
  }
}

TEST(ExactSearchTest, WithoutMaximalityFilterMinHasMoreCandidates) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(2, 50, 0, AggregationSpec::Min());
  const SearchResult unfiltered = ExactSearch(g, query);
  ExactOptions options;
  options.enforce_maximality = true;
  const SearchResult filtered = ExactSearch(g, query, options);
  EXPECT_GT(unfiltered.communities.size(), filtered.communities.size());
}

TEST(ExactSearchTest, TonicGreedyDisjoint) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(2, 3, 3, AggregationSpec::Sum());
  query.non_overlapping = true;
  const SearchResult result = ExactSearch(g, query);
  // Greedy: {7,8,9}=105 first; K4 minus those is just {6} (no 2-core);
  // second pick comes from the other component: {0,1,2}=60, then {3,4,5}.
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_EQ(result.communities[0].members, Members({7, 8, 9}));
  EXPECT_EQ(result.communities[1].members, Members({0, 1, 2}));
  EXPECT_EQ(result.communities[2].members, Members({3, 4, 5}));
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(ExactSearchTest, WeightDensitySupported) {
  const Graph g = TwoTrianglesAndK4();
  // weight-density with beta=1: K4 -> 106-4=102; {7,8,9} -> 105-3=102;
  // tie broken deterministically by hash, both must appear in top-2.
  const SearchResult result =
      ExactSearch(g, MakeQuery(2, 2, 0, AggregationSpec::WeightDensity(1.0)));
  ASSERT_EQ(result.communities.size(), 2u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 102.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 102.0);
}

TEST(ExactSearchTest, BalancedDensitySupported) {
  const Graph g = TwoTrianglesAndK4();
  // Total weight 184; only communities with w(H) > 92 have finite value:
  // {6,7,9}=103/22, {6,8,9}=104/24, {7,8,9}=105/26, K4=106/28 — note the
  // *smallest* qualifying sum wins (the denominator shrinks faster).
  const SearchResult result = ExactSearch(
      g, MakeQuery(2, 4, 0, AggregationSpec::BalancedDensity()));
  ASSERT_EQ(result.communities.size(), 4u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 103.0 / 22.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 104.0 / 24.0);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 105.0 / 26.0);
  EXPECT_DOUBLE_EQ(result.communities[3].influence, 106.0 / 28.0);
}

TEST(ExactSearchTest, UndefinedBalancedDensityCandidatesDropped) {
  const Graph g = TwoTrianglesAndK4();
  // r larger than the number of finite-valued communities: the -inf ones
  // (w(H) <= W/2) must not be returned.
  const SearchResult result = ExactSearch(
      g, MakeQuery(2, 20, 0, AggregationSpec::BalancedDensity()));
  EXPECT_EQ(result.communities.size(), 4u);
  for (const Community& c : result.communities) {
    EXPECT_TRUE(std::isfinite(c.influence));
  }
}

TEST(ExactSearchTest, NoQualifyingSubsetsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(
      ExactSearch(g, MakeQuery(4, 2, 0, AggregationSpec::Sum()))
          .communities.empty());
}

TEST(ExactSearchDeathTest, GuardsHugeEnumeration) {
  const Graph g = testing::CompleteGraph(80);
  Graph weighted = g;
  weighted.SetWeights(std::vector<Weight>(80, 1.0));
  ExactOptions options;
  options.max_subsets = 1000;
  EXPECT_DEATH(
      ExactSearch(weighted, MakeQuery(2, 1, 0, AggregationSpec::Sum()),
                  options),
      "too large");
}

}  // namespace
}  // namespace ticl
