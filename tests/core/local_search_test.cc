#include "core/local_search.h"

#include <gtest/gtest.h>

#include "core/exact_search.h"
#include "core/verification.h"
#include "gen/planted_communities.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query MakeQuery(VertexId k, std::uint32_t r, VertexId s,
                AggregationSpec spec) {
  Query q;
  q.k = k;
  q.r = r;
  q.size_limit = s;
  q.aggregation = spec;
  return q;
}

TEST(LocalSearchTest, FixtureSumSizeThree) {
  // BFS neighbourhoods truncate at s = 3 in id order, so the best
  // reachable candidate is {9, 7, 6} = 103 (seed 9's neighbourhood
  // collects 6 and 7 before 8). The exact optimum is 105 — the heuristic
  // gap is expected and demonstrates Remark 2.
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 1, 3, AggregationSpec::Sum());
  for (const bool greedy : {true, false}) {
    LocalSearchOptions options;
    options.greedy = greedy;
    const SearchResult result = LocalSearch(g, query, options);
    ASSERT_EQ(result.communities.size(), 1u) << "greedy=" << greedy;
    EXPECT_EQ(result.communities[0].members, Members({6, 7, 9}));
    EXPECT_DOUBLE_EQ(result.communities[0].influence, 103.0);
    EXPECT_EQ(ValidateResult(g, query, result), "");
  }
}

TEST(LocalSearchTest, FixtureSumSizeFourFindsK4) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 2, 4, AggregationSpec::Sum());
  const SearchResult result = LocalSearch(g, query);
  ASSERT_GE(result.communities.size(), 1u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
}

TEST(LocalSearchTest, HeuristicNeverBeatsExact) {
  const Graph g = TwoTrianglesAndK4();
  for (const VertexId s : {3u, 4u, 5u}) {
    for (const auto spec :
         {AggregationSpec::Sum(), AggregationSpec::Avg()}) {
      const Query query = MakeQuery(2, 1, s, spec);
      const SearchResult heuristic = LocalSearch(g, query);
      const SearchResult exact = ExactSearch(g, query);
      if (heuristic.communities.empty()) continue;
      ASSERT_FALSE(exact.communities.empty());
      EXPECT_LE(heuristic.communities[0].influence,
                exact.communities[0].influence + 1e-12);
    }
  }
}

TEST(LocalSearchTest, AvgStrategyFindsSmallRichCommunity) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 1, 4, AggregationSpec::Avg());
  const SearchResult result = LocalSearch(g, query);
  ASSERT_EQ(result.communities.size(), 1u);
  // Greedy from seed 9 orders {9, 8, 7, 6}; prefix {9, 8, 7} is a triangle
  // with avg 35, the exact optimum.
  EXPECT_EQ(result.communities[0].members, Members({7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 35.0);
}

TEST(LocalSearchTest, MinViaAvgStrategyPath) {
  // Node-dominated min is routed through the prefix strategy; results must
  // be valid size-constrained communities.
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 2, 3, AggregationSpec::Min());
  const SearchResult result = LocalSearch(g, query);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  ASSERT_GE(result.communities.size(), 1u);
  // Best s=3 community under min: {0,1,2} with min 10.
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 10.0);
}

TEST(LocalSearchTest, ResultsAreValidOnPlantedGraph) {
  PlantedCommunitiesOptions planted_options;
  planted_options.background_vertices = 400;
  planted_options.num_communities = 5;
  planted_options.community_size = 8;
  planted_options.seed = 3;
  const auto planted = GeneratePlantedCommunities(planted_options);
  for (const auto spec : {AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    for (const bool greedy : {true, false}) {
      const Query query = MakeQuery(3, 5, 10, spec);
      LocalSearchOptions options;
      options.greedy = greedy;
      const SearchResult result = LocalSearch(planted.graph, query, options);
      EXPECT_EQ(ValidateResult(planted.graph, query, result), "");
      EXPECT_GE(result.communities.size(), 1u);
    }
  }
}

TEST(LocalSearchTest, GreedyRecoversPlantedBlocks) {
  PlantedCommunitiesOptions planted_options;
  planted_options.background_vertices = 400;
  planted_options.num_communities = 5;
  planted_options.community_size = 8;
  planted_options.weight_boost = 100.0;
  planted_options.seed = 5;
  const auto planted = GeneratePlantedCommunities(planted_options);
  const Query query = MakeQuery(7, 5, 8, AggregationSpec::Sum());
  const SearchResult result = LocalSearch(planted.graph, query);
  // k = 7 with s = 8 admits exactly the planted 8-cliques.
  ASSERT_EQ(result.communities.size(), 5u);
  for (const Community& c : result.communities) {
    EXPECT_TRUE(std::find(planted.planted.begin(), planted.planted.end(),
                          c.members) != planted.planted.end());
  }
}

TEST(LocalSearchTest, TonicResultsDisjoint) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(2, 3, 3, AggregationSpec::Sum());
  query.non_overlapping = true;
  const SearchResult result = LocalSearch(g, query);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  EXPECT_GE(result.communities.size(), 2u);
}

TEST(LocalSearchTest, TonicConsumesVertices) {
  const Graph g = TwoTrianglesAndK4();
  Query tonic = MakeQuery(2, 5, 3, AggregationSpec::Sum());
  tonic.non_overlapping = true;
  Query overlap = tonic;
  overlap.non_overlapping = false;
  const SearchResult tonic_result = LocalSearch(g, tonic);
  const SearchResult overlap_result = LocalSearch(g, overlap);
  // Overlapping mode may reuse K4's vertices across candidates; TONIC
  // cannot, so it returns at most one community per disjoint region.
  EXPECT_LE(tonic_result.communities.size(),
            overlap_result.communities.size());
}

TEST(LocalSearchTest, UnconstrainedUsesNeighborhoodCap) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(2, 2, 0, AggregationSpec::Avg());
  LocalSearchOptions options;
  options.neighborhood_cap = 4;
  const SearchResult result = LocalSearch(g, query, options);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  ASSERT_GE(result.communities.size(), 1u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 35.0);
}

TEST(LocalSearchTest, SeedOrderAblationStillValid) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(2, 3, 4, AggregationSpec::Sum());
  LocalSearchOptions options;
  options.seed_order = SeedOrder::kDescendingWeight;
  const SearchResult result = LocalSearch(g, query, options);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  ASSERT_GE(result.communities.size(), 1u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
}

TEST(LocalSearchTest, StatsPopulated) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result =
      LocalSearch(g, MakeQuery(2, 3, 4, AggregationSpec::Sum()));
  EXPECT_GT(result.stats.seeds_processed, 0u);
  EXPECT_GT(result.stats.candidates_generated, 0u);
}

TEST(LocalSearchTest, NoKCoreYieldsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result =
      LocalSearch(g, MakeQuery(4, 2, 5, AggregationSpec::Sum()));
  EXPECT_TRUE(result.communities.empty());
}

TEST(LocalSearchDeathTest, RejectsInvalidQuery) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MakeQuery(3, 1, 3, AggregationSpec::Sum());  // s < k + 1
  EXPECT_DEATH(LocalSearch(g, query), "invalid query");
}

}  // namespace
}  // namespace ticl
