// Theorem 6 property test: for every epsilon, the Approx configuration's
// r-th influence value is at least (1 - epsilon) times the exact r-th.

#include <tuple>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/improved_search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"

namespace ticl {
namespace {

using ApproxParam = std::tuple<std::uint64_t, double>;  // (seed, epsilon)

class ApproxGuaranteeTest : public ::testing::TestWithParam<ApproxParam> {};

TEST_P(ApproxGuaranteeTest, RthValueMeetsBound) {
  const auto [seed, epsilon] = GetParam();
  Graph g = GenerateChungLu({200, 7.0, 2.4, seed});
  AssignWeights(&g, WeightScheme::kUniform, seed * 3 + 1);

  for (const std::uint32_t r : {1u, 5u, 10u}) {
    Query query;
    query.k = 2;
    query.r = r;
    query.aggregation = AggregationSpec::Sum();

    const SearchResult exact = ImprovedSearch(g, query);  // eps = 0
    ImprovedOptions options;
    options.epsilon = epsilon;
    const SearchResult approx = ImprovedSearch(g, query, options);

    ASSERT_EQ(approx.communities.size(), exact.communities.size())
        << "seed=" << seed << " eps=" << epsilon << " r=" << r;
    EXPECT_EQ(ValidateResult(g, query, approx), "");
    if (exact.communities.empty()) continue;
    const double re = exact.communities.back().influence;
    const double ra = approx.communities.back().influence;
    EXPECT_GE(ra, (1.0 - epsilon) * re - 1e-12)
        << "seed=" << seed << " eps=" << epsilon << " r=" << r;
    // Approx may stop early but must never do more work.
    EXPECT_LE(approx.stats.peel_operations, exact.stats.peel_operations);
  }
}

TEST_P(ApproxGuaranteeTest, TopOneIsAlwaysExact) {
  // The best k-core component is seeded into the pool and can never be
  // evicted, so the top-1 of Approx equals the exact top-1.
  const auto [seed, epsilon] = GetParam();
  Graph g = GenerateChungLu({150, 6.0, 2.5, seed});
  AssignWeights(&g, WeightScheme::kUniform, seed + 7);
  Query query;
  query.k = 2;
  query.r = 6;
  query.aggregation = AggregationSpec::Sum();
  const SearchResult exact = ImprovedSearch(g, query);
  ImprovedOptions options;
  options.epsilon = epsilon;
  const SearchResult approx = ImprovedSearch(g, query, options);
  if (!exact.communities.empty()) {
    ASSERT_FALSE(approx.communities.empty());
    EXPECT_DOUBLE_EQ(approx.communities[0].influence,
                     exact.communities[0].influence);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEpsilons, ApproxGuaranteeTest,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u, 55u),
                       ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.5)));

}  // namespace
}  // namespace ticl
