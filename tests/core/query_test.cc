#include "core/query.h"

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::TwoTrianglesAndK4;

TEST(QueryTest, DefaultsAreValidOnWeightedGraph) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_EQ(ValidateQuery(Query{}, g), "");
}

TEST(QueryTest, RejectsZeroK) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.k = 0;
  EXPECT_NE(ValidateQuery(q, g), "");
}

TEST(QueryTest, RejectsZeroR) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.r = 0;
  EXPECT_NE(ValidateQuery(q, g), "");
}

TEST(QueryTest, RejectsSizeLimitBelowKPlusOne) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.k = 3;
  q.size_limit = 3;
  EXPECT_NE(ValidateQuery(q, g), "");
  q.size_limit = 4;
  EXPECT_EQ(ValidateQuery(q, g), "");
}

TEST(QueryTest, RejectsUnweightedGraph) {
  const Graph g = testing::PathGraph(4);
  EXPECT_NE(ValidateQuery(Query{}, g), "");
}

TEST(QueryTest, RejectsNegativeSumSurplusAlpha) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  q.aggregation = AggregationSpec{Aggregation::kSumSurplus, -2.0, 0.0};
  EXPECT_NE(ValidateQuery(q, g), "");
}

TEST(QueryTest, SizeConstrainedAccessors) {
  const Graph g = TwoTrianglesAndK4();
  Query q;
  EXPECT_FALSE(q.size_constrained());
  EXPECT_EQ(q.EffectiveSizeLimit(g), g.num_vertices());
  q.size_limit = 4;
  EXPECT_TRUE(q.size_constrained());
  EXPECT_EQ(q.EffectiveSizeLimit(g), 4u);
}

TEST(QueryTest, ToStringMentionsEveryField) {
  Query q;
  q.k = 4;
  q.r = 5;
  q.size_limit = 20;
  q.aggregation = AggregationSpec::Avg();
  q.non_overlapping = true;
  const std::string s = QueryToString(q);
  EXPECT_NE(s.find("TONIC"), std::string::npos);
  EXPECT_NE(s.find("k=4"), std::string::npos);
  EXPECT_NE(s.find("r=5"), std::string::npos);
  EXPECT_NE(s.find("s=20"), std::string::npos);
  EXPECT_NE(s.find("avg"), std::string::npos);
  q.size_limit = 0;
  q.non_overlapping = false;
  const std::string u = QueryToString(q);
  EXPECT_NE(u.find("TIC"), std::string::npos);
  EXPECT_NE(u.find("unbounded"), std::string::npos);
}

}  // namespace
}  // namespace ticl
