// Tests for the parallel local search extension (the paper's §VIII
// future-work direction implemented on top of Algorithm 4).

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/local_search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

Graph BenchGraph(std::uint64_t seed) {
  Graph g = GenerateChungLu({3000, 9.0, 2.4, seed});
  AssignWeights(&g, WeightScheme::kUniform, seed + 5);
  return g;
}

Query MakeQuery(AggregationSpec spec) {
  Query q;
  q.k = 3;
  q.r = 5;
  q.size_limit = 15;
  q.aggregation = spec;
  return q;
}

TEST(ParallelLocalSearchTest, ResultsValidateAcrossThreadCounts) {
  const Graph g = BenchGraph(31);
  for (const auto spec : {AggregationSpec::Sum(), AggregationSpec::Avg()}) {
    const Query query = MakeQuery(spec);
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      LocalSearchOptions options;
      options.num_threads = threads;
      const SearchResult result = LocalSearch(g, query, options);
      EXPECT_EQ(ValidateResult(g, query, result), "")
          << "threads=" << threads;
      EXPECT_FALSE(result.communities.empty());
    }
  }
}

TEST(ParallelLocalSearchTest, DeterministicForFixedThreadCount) {
  const Graph g = BenchGraph(37);
  const Query query = MakeQuery(AggregationSpec::Sum());
  LocalSearchOptions options;
  options.num_threads = 4;
  const SearchResult a = LocalSearch(g, query, options);
  const SearchResult b = LocalSearch(g, query, options);
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members);
  }
}

TEST(ParallelLocalSearchTest, SeedsPartitionedWithoutLoss) {
  const Graph g = BenchGraph(41);
  const Query query = MakeQuery(AggregationSpec::Sum());
  LocalSearchOptions serial;
  LocalSearchOptions parallel;
  parallel.num_threads = 4;
  const SearchResult rs = LocalSearch(g, query, serial);
  const SearchResult rp = LocalSearch(g, query, parallel);
  // Every seed is processed exactly once regardless of thread count.
  EXPECT_EQ(rs.stats.seeds_processed, rp.stats.seeds_processed);
}

TEST(ParallelLocalSearchTest, ParallelQualityAtLeastComparable) {
  // Workers accept with private (lower) thresholds, so the merged pool can
  // only contain candidates at least as good as serial's threshold-gated
  // stream on the fixture; sanity-check the top-1 matches serial here.
  const Graph g = testing::TwoTrianglesAndK4();
  Query query;
  query.k = 2;
  query.r = 2;
  query.size_limit = 4;
  query.aggregation = AggregationSpec::Sum();
  LocalSearchOptions parallel;
  parallel.num_threads = 3;
  const SearchResult serial = LocalSearch(g, query);
  const SearchResult par = LocalSearch(g, query, parallel);
  ASSERT_FALSE(serial.communities.empty());
  ASSERT_FALSE(par.communities.empty());
  EXPECT_DOUBLE_EQ(par.communities[0].influence,
                   serial.communities[0].influence);
}

TEST(ParallelLocalSearchTest, MoreThreadsThanSeedsIsFine) {
  const Graph g = testing::TwoTrianglesAndK4();
  Query query;
  query.k = 2;
  query.r = 3;
  query.size_limit = 4;
  query.aggregation = AggregationSpec::Sum();
  LocalSearchOptions options;
  options.num_threads = 64;
  const SearchResult result = LocalSearch(g, query, options);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  EXPECT_FALSE(result.communities.empty());
}

TEST(ParallelLocalSearchTest, TonicFallsBackToSerial) {
  const Graph g = BenchGraph(43);
  Query query = MakeQuery(AggregationSpec::Sum());
  query.non_overlapping = true;
  LocalSearchOptions serial;
  LocalSearchOptions threaded;
  threaded.num_threads = 4;
  const SearchResult a = LocalSearch(g, query, serial);
  const SearchResult b = LocalSearch(g, query, threaded);
  ASSERT_EQ(a.communities.size(), b.communities.size());
  for (std::size_t i = 0; i < a.communities.size(); ++i) {
    EXPECT_EQ(a.communities[i].members, b.communities[i].members);
  }
  EXPECT_EQ(ValidateResult(g, query, b), "");
}

}  // namespace
}  // namespace ticl
