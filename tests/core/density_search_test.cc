// Local search coverage for the density aggregations (weight density and
// balanced density) — the NP-hard Table I functions whose hardness proofs
// the paper defers to its appendix. Both route through the prefix-testing
// strategy (non-monotone), so these tests exercise that generic path.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/weights.h"
#include "core/exact_search.h"
#include "core/local_search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query MakeQuery(AggregationSpec spec, VertexId k, std::uint32_t r,
                VertexId s) {
  Query q;
  q.k = k;
  q.r = r;
  q.size_limit = s;
  q.aggregation = spec;
  return q;
}

TEST(DensitySearchTest, WeightDensityFixtureOptimum) {
  const Graph g = TwoTrianglesAndK4();
  // weight-density beta=1, s=4: K4 (106-4) and {7,8,9} (105-3) tie at the
  // exact optimum of 102; greedy local search reaches that value.
  const Query query = MakeQuery(AggregationSpec::WeightDensity(1.0), 2, 1, 4);
  const SearchResult heuristic = LocalSearch(g, query);
  const SearchResult exact = ExactSearch(g, query);
  ASSERT_FALSE(heuristic.communities.empty());
  ASSERT_FALSE(exact.communities.empty());
  EXPECT_DOUBLE_EQ(exact.communities[0].influence, 102.0);
  EXPECT_DOUBLE_EQ(heuristic.communities[0].influence, 102.0);
  const VertexList& winner = heuristic.communities[0].members;
  EXPECT_TRUE(winner == Members({6, 7, 8, 9}) ||
              winner == Members({7, 8, 9}));
}

TEST(DensitySearchTest, LargeBetaPrefersSmallCommunities) {
  const Graph g = TwoTrianglesAndK4();
  // beta = 20: every vertex must carry 20 units. K4: 106-80 = 26;
  // {7,8,9}: 105-60 = 45; {0,1,2}: 60-60 = 0. Optimum is the triangle.
  const Query query =
      MakeQuery(AggregationSpec::WeightDensity(20.0), 2, 1, 10);
  const SearchResult exact = ExactSearch(g, query);
  ASSERT_FALSE(exact.communities.empty());
  EXPECT_DOUBLE_EQ(exact.communities[0].influence, 45.0);
  EXPECT_EQ(exact.communities[0].members, Members({7, 8, 9}));
}

TEST(DensitySearchTest, BalancedDensityLocalSearchValid) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(AggregationSpec::BalancedDensity(), 2, 2, 4);
  const SearchResult result = LocalSearch(g, query);
  EXPECT_EQ(ValidateResult(g, query, result), "");
  for (const Community& c : result.communities) {
    EXPECT_TRUE(std::isfinite(c.influence));  // -inf candidates rejected
  }
}

TEST(DensitySearchTest, BalancedDensityNeverBeatsExact) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MakeQuery(AggregationSpec::BalancedDensity(), 2, 1, 4);
  const SearchResult heuristic = LocalSearch(g, query);
  const SearchResult exact = ExactSearch(g, query);
  if (!heuristic.communities.empty()) {
    ASSERT_FALSE(exact.communities.empty());
    EXPECT_LE(heuristic.communities[0].influence,
              exact.communities[0].influence + 1e-12);
  }
}

TEST(DensitySearchTest, DensityResultsValidateOnRandomGraphs) {
  for (const std::uint64_t seed : {3u, 5u, 7u}) {
    Graph g = GenerateChungLu({800, 8.0, 2.4, seed});
    AssignWeights(&g, WeightScheme::kUniform, seed + 1);
    for (const auto spec : {AggregationSpec::WeightDensity(0.1),
                            AggregationSpec::BalancedDensity()}) {
      const Query query = MakeQuery(spec, 3, 4, 12);
      for (const bool greedy : {true, false}) {
        LocalSearchOptions options;
        options.greedy = greedy;
        const SearchResult result = LocalSearch(g, query, options);
        EXPECT_EQ(ValidateResult(g, query, result), "")
            << AggregationName(spec.kind) << " seed=" << seed
            << " greedy=" << greedy;
      }
    }
  }
}

TEST(DensitySearchTest, ZeroBetaDensityEqualsSum) {
  // weight-density with beta = 0 degenerates to sum; the exact solver must
  // agree with the sum solver point-for-point.
  const Graph g = TwoTrianglesAndK4();
  const Query density =
      MakeQuery(AggregationSpec::WeightDensity(0.0), 2, 3, 4);
  const Query sum = MakeQuery(AggregationSpec::Sum(), 2, 3, 4);
  const SearchResult rd = ExactSearch(g, density);
  const SearchResult rs = ExactSearch(g, sum);
  ASSERT_EQ(rd.communities.size(), rs.communities.size());
  for (std::size_t i = 0; i < rd.communities.size(); ++i) {
    EXPECT_DOUBLE_EQ(rd.communities[i].influence, rs.communities[i].influence);
    EXPECT_EQ(rd.communities[i].members, rs.communities[i].members);
  }
}

}  // namespace
}  // namespace ticl
