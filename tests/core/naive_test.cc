#include "core/naive_search.h"

#include <gtest/gtest.h>

#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query SumQuery(VertexId k, std::uint32_t r) {
  Query q;
  q.k = k;
  q.r = r;
  q.aggregation = AggregationSpec::Sum();
  return q;
}

TEST(NaiveSearchTest, FixtureTopOne) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = NaiveSearch(g, SumQuery(2, 1));
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
}

TEST(NaiveSearchTest, FixtureTopFiveValues) {
  // Hand-derived ground truth (see testing/builders.h).
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = NaiveSearch(g, SumQuery(2, 5));
  ASSERT_EQ(result.communities.size(), 5u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 106.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 105.0);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 104.0);
  EXPECT_DOUBLE_EQ(result.communities[3].influence, 103.0);
  EXPECT_DOUBLE_EQ(result.communities[4].influence, 78.0);
  EXPECT_EQ(result.communities[1].members, Members({7, 8, 9}));
  EXPECT_EQ(result.communities[4].members, Members({0, 1, 2, 3, 4, 5}));
}

TEST(NaiveSearchTest, FixtureAtKThree) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = NaiveSearch(g, SumQuery(3, 2));
  // Only the K4 forms a 3-core, and no proper subgraph survives at k = 3.
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
}

TEST(NaiveSearchTest, NoKCoreYieldsEmpty) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = NaiveSearch(g, SumQuery(4, 3));
  EXPECT_TRUE(result.communities.empty());
}

TEST(NaiveSearchTest, ResultValidates) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = SumQuery(2, 4);
  const SearchResult result = NaiveSearch(g, query);
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(NaiveSearchTest, SumSurplusSupported) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 2);
  query.aggregation = AggregationSpec::SumSurplus(10.0);
  const SearchResult result = NaiveSearch(g, query);
  ASSERT_EQ(result.communities.size(), 2u);
  // K4: 106 + 40 = 146; {0..5}: 78 + 60 = 138; {7,8,9}: 105 + 30 = 135.
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 146.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 138.0);
}

TEST(NaiveSearchTest, TonicReturnsComponents) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 3);
  query.non_overlapping = true;
  const SearchResult result = NaiveSearch(g, query);
  ASSERT_EQ(result.communities.size(), 2u);  // only two components exist
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_EQ(result.communities[1].members, Members({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(NaiveSearchTest, StatsPopulated) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = NaiveSearch(g, SumQuery(2, 3));
  EXPECT_GT(result.stats.candidates_generated, 0u);
  EXPECT_GT(result.stats.peel_operations, 0u);
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
}

TEST(NaiveSearchDeathTest, RejectsSizeConstraint) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 1);
  query.size_limit = 4;
  EXPECT_DEATH(NaiveSearch(g, query), "size-unconstrained");
}

TEST(NaiveSearchDeathTest, RejectsNonMonotoneAggregation) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 1);
  query.aggregation = AggregationSpec::Avg();
  EXPECT_DEATH(NaiveSearch(g, query), "monotone");
}

TEST(NaiveSearchDeathTest, RejectsInvalidQuery) {
  const Graph g = TwoTrianglesAndK4();
  Query query = SumQuery(2, 1);
  query.r = 0;
  EXPECT_DEATH(NaiveSearch(g, query), "invalid query");
}

}  // namespace
}  // namespace ticl
