#include "core/minmax_search.h"

#include <gtest/gtest.h>

#include "core/verification.h"
#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

Query MinQuery(VertexId k, std::uint32_t r) {
  Query q;
  q.k = k;
  q.r = r;
  q.aggregation = AggregationSpec::Min();
  return q;
}

Query MaxQuery(VertexId k, std::uint32_t r) {
  Query q = MinQuery(k, r);
  q.aggregation = AggregationSpec::Max();
  return q;
}

TEST(MinPeelTest, FixtureTopTwo) {
  // Peel snapshots in value order: K4@1, {7,8,9}@2, {0..5}@5, {0,1,2}@10.
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = MinPeelSearch(g, MinQuery(2, 2));
  ASSERT_EQ(result.communities.size(), 2u);
  EXPECT_EQ(result.communities[0].members, Members({0, 1, 2}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 10.0);
  EXPECT_EQ(result.communities[1].members, Members({0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 5.0);
}

TEST(MinPeelTest, FixtureFullFamily) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = MinPeelSearch(g, MinQuery(2, 10));
  ASSERT_EQ(result.communities.size(), 4u);
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 10.0);
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 5.0);
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 2.0);
  EXPECT_DOUBLE_EQ(result.communities[3].influence, 1.0);
  EXPECT_EQ(result.communities[2].members, Members({7, 8, 9}));
  EXPECT_EQ(result.communities[3].members, Members({6, 7, 8, 9}));
}

TEST(MinPeelTest, NestedResultsAllowedInTic) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = MinPeelSearch(g, MinQuery(2, 2));
  // {0,1,2} is nested inside {0..5} — allowed without the non-overlap
  // constraint, exactly like the prior work's containment chains.
  EXPECT_TRUE(CommunitiesOverlap(result.communities[0],
                                 result.communities[1]));
}

TEST(MinPeelTest, TonicTopThreeDisjoint) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MinQuery(2, 3);
  query.non_overlapping = true;
  const SearchResult result = MinPeelSearch(g, query);
  ASSERT_EQ(result.communities.size(), 3u);
  EXPECT_EQ(result.communities[0].members, Members({0, 1, 2}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 10.0);
  EXPECT_EQ(result.communities[1].members, Members({3, 4, 5}));
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 5.0);
  EXPECT_EQ(result.communities[2].members, Members({7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[2].influence, 2.0);
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(MinPeelTest, KThreeOnlyK4Family) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = MinPeelSearch(g, MinQuery(3, 5));
  ASSERT_EQ(result.communities.size(), 1u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 1.0);
}

TEST(MinPeelTest, EmptyWhenNoKCore) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_TRUE(MinPeelSearch(g, MinQuery(4, 2)).communities.empty());
}

TEST(MinPeelTest, ResultValidates) {
  const Graph g = TwoTrianglesAndK4();
  const Query query = MinQuery(2, 4);
  const SearchResult result = MinPeelSearch(g, query);
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(MaxComponentsTest, FixtureRanking) {
  const Graph g = TwoTrianglesAndK4();
  const SearchResult result = MaxComponentsSearch(g, MaxQuery(2, 5));
  ASSERT_EQ(result.communities.size(), 2u);
  EXPECT_EQ(result.communities[0].members, Members({6, 7, 8, 9}));
  EXPECT_DOUBLE_EQ(result.communities[0].influence, 100.0);
  EXPECT_EQ(result.communities[1].members, Members({0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(result.communities[1].influence, 30.0);
}

TEST(MaxComponentsTest, TonicIdentical) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MaxQuery(2, 5);
  query.non_overlapping = true;
  const SearchResult result = MaxComponentsSearch(g, query);
  EXPECT_EQ(result.communities.size(), 2u);
  EXPECT_EQ(ValidateResult(g, query, result), "");
}

TEST(MinMaxDeathTest, KindChecked) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_DEATH(MinPeelSearch(g, MaxQuery(2, 1)), "min");
  EXPECT_DEATH(MaxComponentsSearch(g, MinQuery(2, 1)), "max");
}

TEST(MinMaxDeathTest, SizeConstraintRejected) {
  const Graph g = TwoTrianglesAndK4();
  Query query = MinQuery(2, 1);
  query.size_limit = 4;
  EXPECT_DEATH(MinPeelSearch(g, query), "NP-hard");
}

}  // namespace
}  // namespace ticl
