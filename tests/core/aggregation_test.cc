#include "core/aggregation.h"

#include <limits>

#include <gtest/gtest.h>

#include "testing/builders.h"

namespace ticl {
namespace {

using testing::Members;
using testing::TwoTrianglesAndK4;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Summary of {w = 2, 3, 5}: sum 10, size 3, min 2, max 5.
CommunitySummary SampleSummary() { return CommunitySummary{10.0, 3, 2.0, 5.0}; }

TEST(AggregationEvalTest, TableOneFormulas) {
  const CommunitySummary s = SampleSummary();
  const double total = 40.0;
  EXPECT_DOUBLE_EQ(EvaluateAggregation(AggregationSpec::Min(), s, total), 2.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregation(AggregationSpec::Max(), s, total), 5.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregation(AggregationSpec::Sum(), s, total),
                   10.0);
  EXPECT_DOUBLE_EQ(
      EvaluateAggregation(AggregationSpec::SumSurplus(2.0), s, total),
      10.0 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(EvaluateAggregation(AggregationSpec::Avg(), s, total),
                   10.0 / 3);
  EXPECT_DOUBLE_EQ(
      EvaluateAggregation(AggregationSpec::WeightDensity(1.5), s, total),
      10.0 - 1.5 * 3);
}

TEST(AggregationEvalTest, BalancedDensityFormula) {
  // w(H) = 30 of total 40: denominator 30 - 10 = 20 -> 1.5.
  const CommunitySummary s{30.0, 4, 1.0, 20.0};
  EXPECT_DOUBLE_EQ(
      EvaluateAggregation(AggregationSpec::BalancedDensity(), s, 40.0), 1.5);
}

TEST(AggregationEvalTest, BalancedDensityDegenerateDenominator) {
  // w(H) = 10 of 40: denominator 10 - 30 < 0 -> -inf by convention.
  EXPECT_EQ(EvaluateAggregation(AggregationSpec::BalancedDensity(),
                                SampleSummary(), 40.0),
            kNegInf);
  // Exactly half: denominator 0 -> -inf.
  const CommunitySummary half{20.0, 2, 10.0, 10.0};
  EXPECT_EQ(
      EvaluateAggregation(AggregationSpec::BalancedDensity(), half, 40.0),
      kNegInf);
}

TEST(AggregationEvalTest, EmptyCommunityIsNegInf) {
  const CommunitySummary empty{};
  for (const auto spec :
       {AggregationSpec::Min(), AggregationSpec::Max(), AggregationSpec::Sum(),
        AggregationSpec::Avg(), AggregationSpec::SumSurplus(1.0),
        AggregationSpec::WeightDensity(1.0),
        AggregationSpec::BalancedDensity()}) {
    EXPECT_EQ(EvaluateAggregation(spec, empty, 10.0), kNegInf);
  }
}

TEST(SummarizeSubsetTest, FixtureTriangle) {
  const Graph g = TwoTrianglesAndK4();
  const CommunitySummary s = SummarizeSubset(g, Members({0, 1, 2}));
  EXPECT_DOUBLE_EQ(s.weight_sum, 60.0);
  EXPECT_EQ(s.size, 3u);
  EXPECT_DOUBLE_EQ(s.min_weight, 10.0);
  EXPECT_DOUBLE_EQ(s.max_weight, 30.0);
}

TEST(SummarizeSubsetTest, SingletonAndEmpty) {
  const Graph g = TwoTrianglesAndK4();
  const CommunitySummary s = SummarizeSubset(g, Members({9}));
  EXPECT_DOUBLE_EQ(s.weight_sum, 100.0);
  EXPECT_DOUBLE_EQ(s.min_weight, 100.0);
  EXPECT_DOUBLE_EQ(s.max_weight, 100.0);
  EXPECT_EQ(SummarizeSubset(g, {}).size, 0u);
}

TEST(EvaluateOnSubsetTest, MatchesManual) {
  const Graph g = TwoTrianglesAndK4();
  EXPECT_DOUBLE_EQ(
      EvaluateOnSubset(AggregationSpec::Sum(), g, Members({6, 7, 8, 9})),
      106.0);
  EXPECT_DOUBLE_EQ(
      EvaluateOnSubset(AggregationSpec::Avg(), g, Members({7, 8, 9})), 35.0);
  EXPECT_DOUBLE_EQ(
      EvaluateOnSubset(AggregationSpec::Min(), g, Members({0, 1, 2})), 10.0);
}

TEST(AggregationTraitsTest, NodeDomination) {
  EXPECT_TRUE(IsNodeDominated(Aggregation::kMin));
  EXPECT_TRUE(IsNodeDominated(Aggregation::kMax));
  EXPECT_FALSE(IsNodeDominated(Aggregation::kSum));
  EXPECT_FALSE(IsNodeDominated(Aggregation::kAvg));
  EXPECT_FALSE(IsNodeDominated(Aggregation::kSumSurplus));
  EXPECT_FALSE(IsNodeDominated(Aggregation::kWeightDensity));
  EXPECT_FALSE(IsNodeDominated(Aggregation::kBalancedDensity));
}

TEST(AggregationTraitsTest, Monotonicity) {
  EXPECT_TRUE(IsMonotoneUnderRemoval(AggregationSpec::Sum()));
  EXPECT_TRUE(IsMonotoneUnderRemoval(AggregationSpec::SumSurplus(0.0)));
  EXPECT_TRUE(IsMonotoneUnderRemoval(AggregationSpec::SumSurplus(3.0)));
  EXPECT_FALSE(
      IsMonotoneUnderRemoval({Aggregation::kSumSurplus, -1.0, 0.0}));
  EXPECT_FALSE(IsMonotoneUnderRemoval(AggregationSpec::Avg()));
  EXPECT_FALSE(IsMonotoneUnderRemoval(AggregationSpec::Min()));
  EXPECT_FALSE(IsMonotoneUnderRemoval(AggregationSpec::Max()));
  EXPECT_FALSE(IsMonotoneUnderRemoval(AggregationSpec::WeightDensity(1.0)));
}

TEST(AggregationTraitsTest, HardnessMatchesTableOne) {
  EXPECT_EQ(HardnessClass(AggregationSpec::Min()), "P");
  EXPECT_EQ(HardnessClass(AggregationSpec::Max()), "P");
  EXPECT_EQ(HardnessClass(AggregationSpec::Sum()), "P");
  EXPECT_EQ(HardnessClass(AggregationSpec::SumSurplus(1.0)), "P");
  EXPECT_EQ(HardnessClass(AggregationSpec::Avg()), "NP-hard");
  EXPECT_EQ(HardnessClass(AggregationSpec::WeightDensity(1.0)), "NP-hard");
  EXPECT_EQ(HardnessClass(AggregationSpec::BalancedDensity()), "NP-hard");
}

TEST(AggregationTraitsTest, MonotoneSumValueNeverIncreasesUnderRemoval) {
  // Corollary 2 sanity on the fixture: dropping any vertex from K4 lowers
  // sum and sum-surplus.
  const Graph g = TwoTrianglesAndK4();
  const VertexList k4 = Members({6, 7, 8, 9});
  for (const auto spec :
       {AggregationSpec::Sum(), AggregationSpec::SumSurplus(1.0)}) {
    const double whole = EvaluateOnSubset(spec, g, k4);
    for (const VertexId removed : k4) {
      VertexList rest;
      for (const VertexId v : k4) {
        if (v != removed) rest.push_back(v);
      }
      EXPECT_LT(EvaluateOnSubset(spec, g, rest), whole);
    }
  }
}

TEST(AggregationNamesTest, AllKindsNamed) {
  EXPECT_EQ(AggregationName(Aggregation::kMin), "min");
  EXPECT_EQ(AggregationName(Aggregation::kMax), "max");
  EXPECT_EQ(AggregationName(Aggregation::kSum), "sum");
  EXPECT_EQ(AggregationName(Aggregation::kSumSurplus), "sum-surplus");
  EXPECT_EQ(AggregationName(Aggregation::kAvg), "avg");
  EXPECT_EQ(AggregationName(Aggregation::kWeightDensity), "weight-density");
  EXPECT_EQ(AggregationName(Aggregation::kBalancedDensity),
            "balanced-density");
}

TEST(AggregationNamesTest, FormulasMentionParameters) {
  EXPECT_EQ(AggregationFormula(AggregationSpec::Sum()), "w(H)");
  EXPECT_NE(AggregationFormula(AggregationSpec::SumSurplus(1.5)).find("1.5"),
            std::string::npos);
  EXPECT_NE(AggregationFormula(AggregationSpec::WeightDensity(0.25))
                .find("0.25"),
            std::string::npos);
}

TEST(SummarizeSubsetTest, RequiresWeights) {
  const Graph g = testing::PathGraph(3);
  EXPECT_DEATH(SummarizeSubset(g, Members({0})), "weights");
}

}  // namespace
}  // namespace ticl
