#include "util/top_r_list.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace ticl {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(TopRListTest, EmptyState) {
  TopRList<int> list(3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.capacity(), 3u);
  EXPECT_EQ(list.Threshold(), -kInf);
}

TEST(TopRListTest, ThresholdStaysNegInfUntilFull) {
  TopRList<int> list(3);
  list.Insert(10.0, 1, 0);
  EXPECT_EQ(list.Threshold(), -kInf);
  list.Insert(20.0, 2, 0);
  EXPECT_EQ(list.Threshold(), -kInf);
  list.Insert(5.0, 3, 0);
  EXPECT_EQ(list.Threshold(), 5.0);
}

TEST(TopRListTest, InsertBelowThresholdRejected) {
  TopRList<int> list(2);
  EXPECT_TRUE(list.Insert(10.0, 1, 0));
  EXPECT_TRUE(list.Insert(20.0, 2, 0));
  EXPECT_FALSE(list.Insert(5.0, 3, 0));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Threshold(), 10.0);
}

TEST(TopRListTest, InsertEvictsWorst) {
  TopRList<int> list(2);
  list.Insert(10.0, 1, 100);
  list.Insert(20.0, 2, 200);
  EXPECT_TRUE(list.Insert(15.0, 3, 300));
  const auto sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].value, 200);
  EXPECT_EQ(sorted[1].value, 300);
  EXPECT_EQ(list.Threshold(), 15.0);
}

TEST(TopRListTest, CapacityOne) {
  TopRList<std::string> list(1);
  list.Insert(1.0, 1, "a");
  list.Insert(3.0, 2, "b");
  list.Insert(2.0, 3, "c");
  const auto sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].value, "b");
}

TEST(TopRListTest, TieBreakByLowerKey) {
  TopRList<int> list(1);
  list.Insert(10.0, 50, 1);
  // Same score, lower tie key ranks ahead.
  EXPECT_TRUE(list.Insert(10.0, 20, 2));
  // Same score, higher tie key loses.
  EXPECT_FALSE(list.Insert(10.0, 90, 3));
  EXPECT_EQ(list.SortedDescending()[0].value, 2);
}

TEST(TopRListTest, EqualScoreEqualTieRejectedWhenFull) {
  TopRList<int> list(1);
  list.Insert(10.0, 7, 1);
  EXPECT_FALSE(list.Insert(10.0, 7, 2));
}

TEST(TopRListTest, WouldInsertMatchesInsert) {
  TopRList<int> list(2);
  EXPECT_TRUE(list.WouldInsert(1.0, 0));
  list.Insert(10.0, 1, 0);
  list.Insert(20.0, 2, 0);
  EXPECT_FALSE(list.WouldInsert(9.0, 3));
  EXPECT_TRUE(list.WouldInsert(11.0, 3));
  EXPECT_TRUE(list.WouldInsert(10.0, 0));   // wins tie-break vs key 1
  EXPECT_FALSE(list.WouldInsert(10.0, 5));  // loses tie-break vs key 1
}

TEST(TopRListTest, SortedDescendingOrder) {
  TopRList<int> list(5);
  const double scores[] = {3.0, 1.0, 4.0, 1.5, 9.0};
  for (int i = 0; i < 5; ++i) {
    list.Insert(scores[i], static_cast<std::uint64_t>(i), i);
  }
  const auto sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 5u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_GE(sorted[i - 1].score, sorted[i].score);
  }
  EXPECT_EQ(sorted[0].value, 4);  // score 9.0
  EXPECT_EQ(sorted[4].value, 1);  // score 1.0
}

TEST(TopRListTest, TakeSortedDescendingEmptiesList) {
  TopRList<int> list(3);
  list.Insert(1.0, 1, 10);
  list.Insert(2.0, 2, 20);
  const auto taken = list.TakeSortedDescending();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.Threshold(), -kInf);
}

TEST(TopRListTest, ManyInsertsKeepExactTopR) {
  TopRList<int> list(10);
  // Insert 0..999 in a scrambled deterministic order.
  for (int i = 0; i < 1000; ++i) {
    const int value = (i * 617) % 1000;
    list.Insert(static_cast<double>(value),
                static_cast<std::uint64_t>(value), value);
  }
  const auto sorted = list.SortedDescending();
  ASSERT_EQ(sorted.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sorted[i].value, 999 - static_cast<int>(i));
  }
}

TEST(TopRListTest, BetterIsStrictWeakOrder) {
  using L = TopRList<int>;
  EXPECT_TRUE(L::Better(2.0, 0, 1.0, 0));
  EXPECT_FALSE(L::Better(1.0, 0, 2.0, 0));
  EXPECT_TRUE(L::Better(1.0, 1, 1.0, 2));
  EXPECT_FALSE(L::Better(1.0, 2, 1.0, 1));
  EXPECT_FALSE(L::Better(1.0, 1, 1.0, 1));  // irreflexive
}

TEST(TopRListTest, NegativeAndInfiniteScores) {
  TopRList<int> list(2);
  list.Insert(-kInf, 1, 1);
  list.Insert(-5.0, 2, 2);
  EXPECT_TRUE(list.Insert(-1.0, 3, 3));  // evicts -inf
  const auto sorted = list.SortedDescending();
  EXPECT_EQ(sorted[0].value, 3);
  EXPECT_EQ(sorted[1].value, 2);
}

}  // namespace
}  // namespace ticl
