#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(123);
  std::vector<int> buckets(10, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++buckets[rng.NextBounded(10)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInRange(12, 12), 12);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng parent1(31);
  Rng parent2(31);
  Rng child1 = parent1.Fork(5);
  Rng child2 = parent2.Fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> values{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled.data(), shuffled.size());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(41);
  std::vector<int> values(100);
  for (std::size_t i = 0; i < 100; ++i) values[i] = static_cast<int>(i);
  std::vector<int> original = values;
  rng.Shuffle(values.data(), values.size());
  EXPECT_NE(values, original);
}

TEST(HashTest, HashU64Deterministic) {
  EXPECT_EQ(HashU64(12345), HashU64(12345));
  EXPECT_NE(HashU64(12345), HashU64(12346));
}

TEST(HashTest, VertexSetHashOrderIndependent) {
  const std::uint32_t a[] = {1, 5, 9, 200};
  const std::uint32_t b[] = {200, 9, 5, 1};
  EXPECT_EQ(HashVertexSet(a, 4), HashVertexSet(b, 4));
}

TEST(HashTest, VertexSetHashSensitiveToMembership) {
  const std::uint32_t a[] = {1, 5, 9};
  const std::uint32_t b[] = {1, 5, 10};
  const std::uint32_t c[] = {1, 5};
  EXPECT_NE(HashVertexSet(a, 3), HashVertexSet(b, 3));
  EXPECT_NE(HashVertexSet(a, 3), HashVertexSet(c, 2));
}

TEST(HashTest, EmptySetHashStable) {
  EXPECT_EQ(HashVertexSet(nullptr, 0), HashVertexSet(nullptr, 0));
}

TEST(HashTest, FewCollisionsOnRandomSets) {
  // 10k random 5-element sets: expect no collisions among distinct sets.
  Rng rng(53);
  std::set<std::uint64_t> hashes;
  std::set<std::vector<std::uint32_t>> sets;
  for (int i = 0; i < 10000; ++i) {
    std::vector<std::uint32_t> s;
    while (s.size() < 5) {
      const auto v = static_cast<std::uint32_t>(rng.NextBounded(100000));
      if (std::find(s.begin(), s.end(), v) == s.end()) s.push_back(v);
    }
    std::sort(s.begin(), s.end());
    if (sets.insert(s).second) {
      hashes.insert(HashVertexSet(s.data(), s.size()));
    }
  }
  EXPECT_EQ(hashes.size(), sets.size());
}

}  // namespace
}  // namespace ticl
