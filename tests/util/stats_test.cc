#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSet) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-10.0);
  s.Add(10.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileTest, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Sorted: 0, 10. q=0.5 -> 5.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 0.0}, 0.5), 5.0);
}

TEST(FormatTest, CommasSmall) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(5), "5");
  EXPECT_EQ(FormatWithCommas(999), "999");
}

TEST(FormatTest, CommasGroups) {
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1049866), "1,049,866");
  EXPECT_EQ(FormatWithCommas(1806067135), "1,806,067,135");
}

TEST(FormatTest, SecondsRanges) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5 us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
}

}  // namespace
}  // namespace ticl
