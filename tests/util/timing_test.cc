#include "util/timing.h"

#include <gtest/gtest.h>

namespace ticl {
namespace {

TEST(WallTimerTest, ElapsedNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimerTest, MillisMatchesSeconds) {
  WallTimer timer;
  // Burn a little time so both reads are non-trivial.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double s = timer.ElapsedSeconds();
  const double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  const double after = timer.ElapsedSeconds();
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace ticl
