// Extension bench: the k-truss influential community model (paper §I/§VII
// pointer) vs the k-core model on the same stand-ins — decomposition cost
// and top-r search cost/values side by side.

#include <benchmark/benchmark.h>

#include "algo/core_decomposition.h"
#include "algo/truss_decomposition.h"
#include "common/bench_env.h"
#include "core/improved_search.h"
#include "core/truss_search.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;

void BM_TrussDecomposition(benchmark::State& state, ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::VertexId max_truss = 0;
  for (auto _ : state) {
    const auto decomp = ticl::TrussDecomposition(g);
    max_truss = decomp.max_truss;
    benchmark::DoNotOptimize(max_truss);
  }
  state.counters["max_truss"] = max_truss;
}

void BM_TrussTopR(benchmark::State& state, ticl::StandIn dataset,
                  ticl::VertexId k) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = k;
  query.r = 5;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::TrussImprovedSearch(g, query);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["communities"] =
      static_cast<double>(result.communities.size());
  state.counters["top_influence"] =
      result.communities.empty() ? 0.0 : result.communities[0].influence;
}

void BM_CoreTopR(benchmark::State& state, ticl::StandIn dataset,
                 ticl::VertexId k) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = k;
  query.r = 5;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::ImprovedSearch(g, query);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["communities"] =
      static_cast<double>(result.communities.size());
  state.counters["top_influence"] =
      result.communities.empty() ? 0.0 : result.communities[0].influence;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kEmail, ticl::StandIn::kDblp}) {
    benchmark::RegisterBenchmark(
        ("ExtTruss/" + DisplayName(dataset) + "/TrussDecomposition").c_str(),
        [dataset](benchmark::State& state) {
          BM_TrussDecomposition(state, dataset);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    for (const ticl::VertexId k : {4u, 5u}) {
      benchmark::RegisterBenchmark(
          ("ExtTruss/" + DisplayName(dataset) + "/TrussTopR/k:" +
           std::to_string(k))
              .c_str(),
          [dataset, k](benchmark::State& state) {
            BM_TrussTopR(state, dataset, k);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(
          ("ExtTruss/" + DisplayName(dataset) + "/CoreTopR/k:" +
           std::to_string(k))
              .c_str(),
          [dataset, k](benchmark::State& state) {
            BM_CoreTopR(state, dataset, k);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
