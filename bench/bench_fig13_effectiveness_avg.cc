// Paper Fig. 13: effectiveness — the r-th influence value reached by
// Greedy vs Random local search (avg, size-constrained, r = 5, s = 20,
// k in {4,6,8,10}). The headline metric is the rth_influence counter.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig13", ticl::bench::ConstrainedAxis::kVaryK,
       ticl::AggregationSpec::Avg()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
