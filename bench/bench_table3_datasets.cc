// Paper Table III: dataset statistics. Prints the stand-in suite's
// n / m / d_max / d_avg / k_max next to the original SNAP numbers the
// paper reports, and benchmarks generation + core decomposition per
// dataset.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "algo/core_decomposition.h"
#include "common/bench_env.h"
#include "util/stats.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::KMax;
using ticl::bench::Scale;
using ticl::bench::Spec;

void PrintTable() {
  std::printf("\nTable III: Datasets (stand-ins at TICL_SCALE=%.2f; "
              "paper originals in parentheses)\n",
              Scale());
  std::printf("%-12s %12s %14s %7s %7s %6s   %-24s\n", "dataset",
              "#vertices", "#edges", "dmax", "davg", "kmax",
              "paper (n, m)");
  for (const ticl::StandIn dataset : ticl::AllStandIns()) {
    const ticl::Graph& g = Dataset(dataset);
    const auto spec = Spec(dataset);
    std::printf("%-12s %12s %14s %7u %7.2f %6u   (%s, %s)\n",
                spec.name.c_str(),
                ticl::FormatWithCommas(g.num_vertices()).c_str(),
                ticl::FormatWithCommas(g.num_edges()).c_str(),
                g.max_degree(), g.average_degree(), KMax(dataset),
                ticl::FormatWithCommas(spec.paper_vertices).c_str(),
                ticl::FormatWithCommas(spec.paper_edges).c_str());
  }
  std::printf("\n");
}

void BM_Generate(benchmark::State& state, ticl::StandIn dataset) {
  for (auto _ : state) {
    ticl::Graph g = ticl::GenerateStandIn(dataset, Scale());
    benchmark::DoNotOptimize(g.num_edges());
  }
}

void BM_CoreDecomposition(benchmark::State& state, ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  for (auto _ : state) {
    const auto decomp = ticl::CoreDecomposition(g);
    benchmark::DoNotOptimize(decomp.degeneracy);
  }
  state.counters["kmax"] = KMax(dataset);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  PrintTable();
  for (const ticl::StandIn dataset : ticl::AllStandIns()) {
    const std::string name = ticl::bench::DisplayName(dataset);
    benchmark::RegisterBenchmark(
        ("Table3/Generate/" + name).c_str(),
        [dataset](benchmark::State& state) { BM_Generate(state, dataset); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("Table3/CoreDecomposition/" + name).c_str(),
        [dataset](benchmark::State& state) {
          BM_CoreDecomposition(state, dataset);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
