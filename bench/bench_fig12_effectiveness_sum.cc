// Paper Fig. 12: effectiveness — the r-th influence value reached by
// Greedy vs Random local search (sum, size-constrained, r = 5, s = 20,
// k in {4,6,8,10}). The headline metric is the rth_influence counter;
// Greedy should dominate Random at every point.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig12", ticl::bench::ConstrainedAxis::kVaryK,
       ticl::AggregationSpec::Sum()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
