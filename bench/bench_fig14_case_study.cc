// Paper Fig. 14: the Aminer case study. Prints the top-3 non-overlapping
// 4-influential communities under min / avg / sum on the co-authorship
// network (nine panels), then benchmarks each TONIC query.
// examples/research_groups renders the same panels with richer text.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "core/search.h"
#include "gen/coauthor_network.h"

namespace {

const ticl::CoauthorNetwork& Network() {
  static const ticl::CoauthorNetwork net = [] {
    ticl::CoauthorNetworkOptions options;
    options.num_fields = 5;
    options.groups_per_field = 8;
    options.metric = ticl::CitationMetric::kHIndex;
    options.seed = 2022;
    return ticl::GenerateCoauthorNetwork(options);
  }();
  return net;
}

ticl::Query CaseStudyQuery(const ticl::AggregationSpec& spec) {
  ticl::Query query;
  query.k = 4;
  query.r = 3;
  query.non_overlapping = true;
  query.aggregation = spec;
  if (spec.kind != ticl::Aggregation::kMin) query.size_limit = 12;
  return query;
}

void PrintPanels() {
  const ticl::CoauthorNetwork& net = Network();
  std::printf("\nFig. 14 (case study): top-3 non-overlapping 4-influential "
              "communities, %u researchers\n",
              net.graph.num_vertices());
  for (const auto& spec :
       {ticl::AggregationSpec::Min(), ticl::AggregationSpec::Avg(),
        ticl::AggregationSpec::Sum()}) {
    const ticl::SearchResult result =
        ticl::Solve(net.graph, CaseStudyQuery(spec));
    for (std::size_t i = 0; i < result.communities.size(); ++i) {
      const ticl::Community& c = result.communities[i];
      std::printf("  %s top-%zu (f=%.2f):",
                  ticl::AggregationName(spec.kind).c_str(), i + 1,
                  c.influence);
      for (const ticl::VertexId v : c.members) {
        std::printf(" %s;", net.names[v].c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

void BM_CaseStudy(benchmark::State& state, ticl::AggregationSpec spec) {
  const ticl::CoauthorNetwork& net = Network();
  const ticl::Query query = CaseStudyQuery(spec);
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::Solve(net.graph, query);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["communities"] =
      static_cast<double>(result.communities.size());
  state.counters["top_influence"] =
      result.communities.empty() ? 0.0 : result.communities[0].influence;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  PrintPanels();
  for (const auto& spec :
       {ticl::AggregationSpec::Min(), ticl::AggregationSpec::Avg(),
        ticl::AggregationSpec::Sum()}) {
    benchmark::RegisterBenchmark(
        ("Fig14/Tonic/" + ticl::AggregationName(spec.kind)).c_str(),
        [spec](benchmark::State& state) { BM_CaseStudy(state, spec); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
