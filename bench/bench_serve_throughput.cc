// Serve-layer throughput: QueryEngine (precomputed core index + LRU result
// cache + thread pool) against per-query cold Solve() on the same mixed
// batch, at 1, 4 and 8 worker threads.
//
// Three configurations per dataset:
//   cold_solve          every query re-peels the graph from scratch
//                       (what tools/ticl_query does per process today)
//   engine/cache:0/...  index only — measures what the CoreIndex saves
//   engine/cache:1/...  index + cache — the steady-state serve path, where
//                       repeated queries (the batch contains each query
//                       twice) short-circuit to a cache hit
//
// Items processed = queries answered, so benchmark reports queries/sec in
// the items_per_second counter.

#include <cstddef>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "serve/engine.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;
using ticl::bench::UnconstrainedKSweep;

/// The batch: {sum, min, max} x k-sweep x r in {5, 10}, each query twice
/// (real query streams repeat; the duplicate is what the cache serves).
std::vector<ticl::Query> MixedBatch(ticl::StandIn dataset) {
  std::vector<ticl::Query> batch;
  for (const ticl::VertexId k : UnconstrainedKSweep(dataset)) {
    for (const auto spec :
         {ticl::AggregationSpec::Sum(), ticl::AggregationSpec::Min(),
          ticl::AggregationSpec::Max()}) {
      for (const std::uint32_t r : {5u, 10u}) {
        ticl::Query q;
        q.k = k;
        q.r = r;
        q.aggregation = spec;
        batch.push_back(q);
        batch.push_back(q);
      }
    }
  }
  return batch;
}

void BM_ColdSolve(benchmark::State& state, ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  const std::vector<ticl::Query> batch = MixedBatch(dataset);
  std::size_t answered = 0;
  for (auto _ : state) {
    for (const ticl::Query& q : batch) {
      const ticl::SearchResult result = ticl::Solve(g, q);
      benchmark::DoNotOptimize(result.communities.data());
      ++answered;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(answered));
}

void BM_Engine(benchmark::State& state, ticl::StandIn dataset,
               unsigned threads, bool cache) {
  // Engine construction (graph copy + core index build) is setup, not
  // steady-state serving; keep it outside the timed loop.
  ticl::EngineOptions options;
  options.num_threads = threads;
  options.cache_member_budget = cache ? (1u << 20) : 0;
  ticl::QueryEngine engine(ticl::Graph(Dataset(dataset)), options);
  const std::vector<ticl::Query> batch = MixedBatch(dataset);

  std::size_t answered = 0;
  std::vector<std::future<ticl::EngineResponse>> futures;
  futures.reserve(batch.size());
  for (auto _ : state) {
    futures.clear();
    for (const ticl::Query& q : batch) futures.push_back(engine.Submit(q));
    for (auto& future : futures) {
      const ticl::EngineResponse response = future.get();
      benchmark::DoNotOptimize(response.result->communities.data());
      ++answered;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(answered));
  const ticl::EngineStats stats = engine.stats();
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(stats.cache_hits));
}

void RegisterAll(ticl::StandIn dataset) {
  const std::string name = DisplayName(dataset);
  // UseRealTime so items_per_second is wall-clock queries/sec — pool
  // workers burn CPU the per-process clock would not see.
  const std::string cold_label = "ServeThroughput/" + name + "/cold_solve";
  benchmark::RegisterBenchmark(cold_label.c_str(), BM_ColdSolve, dataset)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  for (const bool cache : {false, true}) {
    for (const unsigned threads : {1u, 4u, 8u}) {
      const std::string label = "ServeThroughput/" + name + "/engine/cache:" +
                                (cache ? "1" : "0") +
                                "/threads:" + std::to_string(threads);
      benchmark::RegisterBenchmark(label.c_str(), BM_Engine, dataset, threads,
                                   cache)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll(ticl::StandIn::kEmail);
  RegisterAll(ticl::StandIn::kDblp);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
