// Paper Fig. 8: running time vs r (sum, size-constrained) — local search
// Random vs Greedy, k = 4, s = 20.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig8", ticl::bench::ConstrainedAxis::kVaryR,
       ticl::AggregationSpec::Sum()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
