// Shared environment for all benchmark binaries: cached stand-in datasets
// (PageRank-weighted, per the paper's setup), parameter sweeps mirroring
// the paper's §VI settings, and result counters.
//
// TICL_SCALE=<float> multiplies stand-in sizes (default 1.0). All sweeps
// are computed at registration time against the dataset's actual k_max, so
// infeasible configurations are skipped exactly like the paper's "missing
// point indicates the algorithm cannot terminate" convention.

#ifndef TICL_BENCH_COMMON_BENCH_ENV_H_
#define TICL_BENCH_COMMON_BENCH_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/result.h"
#include "core/search.h"
#include "gen/dataset_suite.h"
#include "graph/graph.h"

namespace ticl::bench {

/// TICL_SCALE env var (default 1.0).
double Scale();

/// The stand-in graph, generated once per process, PageRank weights
/// installed (damping 0.85, the paper's weighting).
const Graph& Dataset(StandIn dataset);

/// The spec at the current scale.
DatasetSpec Spec(StandIn dataset);

/// Degeneracy of the stand-in (cached).
VertexId KMax(StandIn dataset);

/// Default degree bound: the paper uses k = 4 on the small group and
/// k = 40 on the large group; clamped so the k-core is non-empty.
VertexId DefaultK(StandIn dataset);

/// k sweep for the size-unconstrained experiments (paper Figs. 2/4):
/// {4,6,8,10} small, {20,30,40,50} large; values above k_max dropped.
std::vector<VertexId> UnconstrainedKSweep(StandIn dataset);

/// k sweep for the size-constrained experiments (paper Figs. 6/7/12/13):
/// {4,6,8,10} on every dataset.
std::vector<VertexId> ConstrainedKSweep(StandIn dataset);

/// r sweep {5, 10, 15, 20} (paper Figs. 3/5/8/9).
std::vector<std::uint32_t> RSweep();

/// s sweep {5, 10, 15, 20} (paper Figs. 10/11).
std::vector<VertexId> SSweep();

/// epsilon sweep {0.01, 0.05, 0.1, 0.2, 0.5} (paper Figs. 4/5).
std::vector<double> EpsilonSweep();

/// Cost-model guard for Algorithm 1: true when the O(n * r * (n + m))
/// naive run fits the per-point budget (TICL_NAIVE_BUDGET, default 8e9
/// elementary operations — roughly two minutes). Mirrors the paper's
/// missing naive points.
bool NaiveFeasible(StandIn dataset, VertexId k, std::uint32_t r);

/// Runs Solve() once per benchmark iteration and reports the standard
/// counters (communities found, r-th influence value, peel operations,
/// candidates generated/pruned).
void RunSolveBenchmark(benchmark::State& state, const Graph& g,
                       const Query& query, const SolveOptions& options);

/// "email", "dblp", ... with the first letter capitalized for display.
std::string DisplayName(StandIn dataset);

}  // namespace ticl::bench

#endif  // TICL_BENCH_COMMON_BENCH_ENV_H_
