// Shared registration harness for the size-constrained figures
// (paper Figs. 6-13): local search Random vs Greedy on every stand-in,
// sweeping k, r, or s. The effectiveness figures (12-13) run the same
// sweep; their headline metric is the rth_influence counter.

#ifndef TICL_BENCH_COMMON_CONSTRAINED_FIG_H_
#define TICL_BENCH_COMMON_CONSTRAINED_FIG_H_

#include <string>

#include <benchmark/benchmark.h>

#include "common/bench_env.h"

namespace ticl::bench {

enum class ConstrainedAxis { kVaryK, kVaryR, kVaryS };

struct ConstrainedFig {
  std::string figure;  // e.g. "Fig6"
  ConstrainedAxis axis = ConstrainedAxis::kVaryK;
  AggregationSpec aggregation = AggregationSpec::Sum();
};

inline void RegisterConstrainedPoint(const ConstrainedFig& fig,
                                     StandIn dataset, VertexId k,
                                     std::uint32_t r, VertexId s) {
  if (k > KMax(dataset)) return;  // empty core: "missing point"
  Query query;
  query.k = k;
  query.r = r;
  query.size_limit = s;
  query.aggregation = fig.aggregation;
  const Graph& g = Dataset(dataset);

  std::string axis_tag;
  switch (fig.axis) {
    case ConstrainedAxis::kVaryK:
      axis_tag = "/k:" + std::to_string(k);
      break;
    case ConstrainedAxis::kVaryR:
      axis_tag = "/r:" + std::to_string(r);
      break;
    case ConstrainedAxis::kVaryS:
      axis_tag = "/s:" + std::to_string(s);
      break;
  }
  const std::string base = fig.figure + "/" + DisplayName(dataset);

  for (const bool greedy : {false, true}) {
    SolveOptions options;
    options.solver =
        greedy ? SolverKind::kLocalGreedy : SolverKind::kLocalRandom;
    benchmark::RegisterBenchmark(
        (base + (greedy ? "/Greedy" : "/Random") + axis_tag).c_str(),
        [&g, query, options](benchmark::State& state) {
          RunSolveBenchmark(state, g, query, options);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

inline void RegisterConstrainedFigure(const ConstrainedFig& fig) {
  // Paper defaults for the size-constrained experiments: r = 5, s = 20,
  // k = 4 on every dataset (the Figs. 6-11 x-axes run k over 4..10 even on
  // the large group; k = 40 would make the default s = 20 infeasible).
  constexpr std::uint32_t kDefaultR = 5;
  constexpr VertexId kDefaultK = 4;
  constexpr VertexId kDefaultS = 20;
  for (const StandIn dataset : AllStandIns()) {
    switch (fig.axis) {
      case ConstrainedAxis::kVaryK:
        for (const VertexId k : ConstrainedKSweep(dataset)) {
          RegisterConstrainedPoint(fig, dataset, k, kDefaultR, kDefaultS);
        }
        break;
      case ConstrainedAxis::kVaryR:
        for (const std::uint32_t r : RSweep()) {
          RegisterConstrainedPoint(fig, dataset, kDefaultK, r, kDefaultS);
        }
        break;
      case ConstrainedAxis::kVaryS:
        for (const VertexId s : SSweep()) {
          if (s < kDefaultK + 1) continue;  // no k-core fits the bound
          RegisterConstrainedPoint(fig, dataset, kDefaultK, kDefaultR, s);
        }
        break;
    }
  }
}

}  // namespace ticl::bench

#endif  // TICL_BENCH_COMMON_CONSTRAINED_FIG_H_
