// Shared registration harness for the size-unconstrained figures
// (paper Figs. 2-5): Naive / Improve / Approx on every stand-in dataset,
// sweeping k or r, optionally across epsilon values.

#ifndef TICL_BENCH_COMMON_UNCONSTRAINED_FIG_H_
#define TICL_BENCH_COMMON_UNCONSTRAINED_FIG_H_

#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "common/bench_env.h"

namespace ticl::bench {

enum class UnconstrainedAxis { kVaryK, kVaryR };

struct UnconstrainedFig {
  std::string figure;            // e.g. "Fig2"
  UnconstrainedAxis axis = UnconstrainedAxis::kVaryK;
  /// false: register Naive + Improve + Approx(0.1) per point (Figs. 2-3);
  /// true: register Approx per epsilon in EpsilonSweep() (Figs. 4-5).
  bool epsilon_sweep = false;
};

inline void RegisterUnconstrainedPoint(const UnconstrainedFig& fig,
                                       StandIn dataset, VertexId k,
                                       std::uint32_t r) {
  Query query;
  query.k = k;
  query.r = r;
  query.aggregation = AggregationSpec::Sum();
  const Graph& g = Dataset(dataset);
  const std::string axis_tag =
      fig.axis == UnconstrainedAxis::kVaryK ? "/k:" + std::to_string(k)
                                            : "/r:" + std::to_string(r);
  const std::string base = fig.figure + "/" + DisplayName(dataset);

  const auto add = [&](const std::string& solver_name,
                       SolveOptions options) {
    benchmark::RegisterBenchmark(
        (base + "/" + solver_name + axis_tag).c_str(),
        [&g, query, options](benchmark::State& state) {
          RunSolveBenchmark(state, g, query, options);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  };

  if (!fig.epsilon_sweep) {
    if (NaiveFeasible(dataset, k, r)) {
      SolveOptions naive;
      naive.solver = SolverKind::kNaive;
      add("Naive", naive);
    }
    SolveOptions improve;
    improve.solver = SolverKind::kImproved;
    add("Improve", improve);
    SolveOptions approx;
    approx.solver = SolverKind::kApprox;
    approx.epsilon = 0.1;  // paper default
    add("Approx", approx);
  } else {
    for (const double epsilon : EpsilonSweep()) {
      SolveOptions approx;
      approx.solver = SolverKind::kApprox;
      approx.epsilon = epsilon;
      char label[32];
      std::snprintf(label, sizeof(label), "eps:%.2f", epsilon);
      add(label, approx);
    }
  }
}

inline void RegisterUnconstrainedFigure(const UnconstrainedFig& fig) {
  for (const StandIn dataset : AllStandIns()) {
    if (fig.axis == UnconstrainedAxis::kVaryK) {
      for (const VertexId k : UnconstrainedKSweep(dataset)) {
        RegisterUnconstrainedPoint(fig, dataset, k, 5);  // r = 5 default
      }
    } else {
      const VertexId k = DefaultK(dataset);
      for (const std::uint32_t r : RSweep()) {
        RegisterUnconstrainedPoint(fig, dataset, k, r);
      }
    }
  }
}

}  // namespace ticl::bench

#endif  // TICL_BENCH_COMMON_UNCONSTRAINED_FIG_H_
