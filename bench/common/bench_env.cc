#include "common/bench_env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>

#include "algo/core_decomposition.h"
#include "algo/weights.h"

namespace ticl::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || parsed <= 0.0) return fallback;
  return parsed;
}

struct CachedDataset {
  Graph graph;
  VertexId kmax = 0;
};

CachedDataset& Cached(StandIn dataset) {
  static std::map<StandIn, CachedDataset> cache;
  auto it = cache.find(dataset);
  if (it == cache.end()) {
    CachedDataset entry;
    entry.graph = GenerateStandIn(dataset, Scale());
    AssignWeights(&entry.graph, WeightScheme::kPageRank);
    entry.kmax = CoreDecomposition(entry.graph).degeneracy;
    it = cache.emplace(dataset, std::move(entry)).first;
  }
  return it->second;
}

}  // namespace

double Scale() {
  static const double scale = EnvDouble("TICL_SCALE", 1.0);
  return scale;
}

const Graph& Dataset(StandIn dataset) { return Cached(dataset).graph; }

DatasetSpec Spec(StandIn dataset) { return GetDatasetSpec(dataset, Scale()); }

VertexId KMax(StandIn dataset) { return Cached(dataset).kmax; }

VertexId DefaultK(StandIn dataset) {
  const DatasetSpec spec = Spec(dataset);
  if (!spec.large) return std::min<VertexId>(4, KMax(dataset));
  return std::min<VertexId>(40, KMax(dataset));
}

std::vector<VertexId> UnconstrainedKSweep(StandIn dataset) {
  const DatasetSpec spec = Spec(dataset);
  std::vector<VertexId> sweep = spec.large
                                    ? std::vector<VertexId>{20, 30, 40, 50}
                                    : std::vector<VertexId>{4, 6, 8, 10};
  const VertexId kmax = KMax(dataset);
  std::erase_if(sweep, [kmax](VertexId k) { return k > kmax; });
  return sweep;
}

std::vector<VertexId> ConstrainedKSweep(StandIn dataset) {
  std::vector<VertexId> sweep{4, 6, 8, 10};
  const VertexId kmax = KMax(dataset);
  std::erase_if(sweep, [kmax](VertexId k) { return k > kmax; });
  return sweep;
}

std::vector<std::uint32_t> RSweep() { return {5, 10, 15, 20}; }

std::vector<VertexId> SSweep() { return {5, 10, 15, 20}; }

std::vector<double> EpsilonSweep() { return {0.01, 0.05, 0.1, 0.2, 0.5}; }

bool NaiveFeasible(StandIn dataset, VertexId k, std::uint32_t r) {
  static const double budget = EnvDouble("TICL_NAIVE_BUDGET", 2.5e9);
  const Graph& g = Dataset(dataset);
  const VertexList core = MaximalKCore(g, k);
  if (core.empty()) return false;
  // Induced edge count of the core.
  std::vector<std::uint8_t> in_core(g.num_vertices(), 0);
  for (const VertexId v : core) in_core[v] = 1;
  std::uint64_t core_degree_sum = 0;
  for (const VertexId v : core) {
    for (const VertexId nbr : g.neighbors(v)) core_degree_sum += in_core[nbr];
  }
  const double cost = static_cast<double>(core.size()) * r *
                      (static_cast<double>(core.size()) +
                       static_cast<double>(core_degree_sum));
  return cost <= budget;
}

void RunSolveBenchmark(benchmark::State& state, const Graph& g,
                       const Query& query, const SolveOptions& options) {
  SearchResult result;
  for (auto _ : state) {
    result = Solve(g, query, options);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["communities"] =
      static_cast<double>(result.communities.size());
  state.counters["rth_influence"] =
      result.communities.empty()
          ? 0.0
          : result.communities.back().influence;
  state.counters["top_influence"] =
      result.communities.empty() ? 0.0
                                 : result.communities.front().influence;
  state.counters["peels"] = static_cast<double>(result.stats.peel_operations);
  state.counters["candidates"] =
      static_cast<double>(result.stats.candidates_generated);
  state.counters["pruned"] =
      static_cast<double>(result.stats.candidates_pruned);
}

std::string DisplayName(StandIn dataset) {
  std::string name = StandInName(dataset);
  name[0] = static_cast<char>(std::toupper(name[0]));
  return name;
}

}  // namespace ticl::bench
