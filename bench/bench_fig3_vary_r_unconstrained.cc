// Paper Fig. 3: running time vs r (sum, size-unconstrained) — Naive vs
// Improve vs Approx at each dataset's default k (4 small / 40 large).

#include <benchmark/benchmark.h>

#include "common/unconstrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterUnconstrainedFigure(
      {"Fig3", ticl::bench::UnconstrainedAxis::kVaryR, false});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
