// Paper Fig. 5: running time vs r for the Approx algorithm across epsilon
// in {0.01, 0.05, 0.1, 0.2, 0.5} (sum, size-unconstrained).

#include <benchmark/benchmark.h>

#include "common/unconstrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterUnconstrainedFigure(
      {"Fig5", ticl::bench::UnconstrainedAxis::kVaryR, true});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
