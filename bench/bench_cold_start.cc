// Cold start: time from process-has-nothing to first query answered, the
// metric the zero-copy storage spine exists to crush.
//
// Five configurations per dataset, each iteration doing the full start-up
// plus one Run():
//   text_parse_pagerank   parse the SNAP text edge list, run PageRank,
//                         build the engine (core decomposition), answer
//                         (what a from-scratch deployment pays)
//   snapshot_v1_copy      legacy v1 snapshot: bulk-read the arrays into
//                         heap vectors, build the core index, answer
//   snapshot_v2_copy      v2 snapshot without an index section: copy-load
//                         the arrays, run the decomposition, answer
//   snapshot_v2_copy_index v2 snapshot with embedded CoreIndex, copy-load:
//                         arrays and index are copied, decomposition skipped
//   snapshot_v2_mmap_index v2 snapshot with embedded CoreIndex, mmap'd:
//                         no CSR/weights copy, no decomposition — start-up
//                         work is one validation/checksum pass
//
// Expected shape: text >> v1_copy ~ v2_copy > mmap_index, with the gap
// between copy and mmap growing linearly in graph size.

#include <string>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "algo/weights.h"
#include "common/bench_env.h"
#include "graph/edge_list_io.h"
#include "serve/core_index.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "util/check.h"
#include "util/timing.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DefaultK;
using ticl::bench::DisplayName;

struct ColdStartFiles {
  std::string text_path;
  std::string v1_path;
  std::string v2_path;
  std::string v2_index_path;
};

/// Writes the dataset once per process in every on-disk format compared.
const ColdStartFiles& Files(ticl::StandIn dataset) {
  static std::unordered_map<int, ColdStartFiles> cache;
  const auto it = cache.find(static_cast<int>(dataset));
  if (it != cache.end()) return it->second;

  const ticl::Graph& g = Dataset(dataset);
  ColdStartFiles files;
  const std::string base = "/tmp/ticl_cold_start_" + DisplayName(dataset);
  files.text_path = base + ".txt";
  files.v1_path = base + ".v1.snap";
  files.v2_path = base + ".v2.snap";
  files.v2_index_path = base + ".v2idx.snap";

  std::string error;
  TICL_CHECK_MSG(ticl::SaveEdgeList(files.text_path, g, &error),
                 error.c_str());
  ticl::SaveSnapshotOptions v1;
  v1.version = 1;
  TICL_CHECK_MSG(ticl::SaveSnapshot(files.v1_path, g, v1, &error),
                 error.c_str());
  TICL_CHECK_MSG(ticl::SaveSnapshot(files.v2_path, g, &error),
                 error.c_str());
  const ticl::CoreIndex index(g);
  ticl::SaveSnapshotOptions v2_index;
  v2_index.core_index = &index;
  TICL_CHECK_MSG(
      ticl::SaveSnapshot(files.v2_index_path, g, v2_index, &error),
      error.c_str());
  return cache.emplace(static_cast<int>(dataset), std::move(files))
      .first->second;
}

/// The first query is deliberately cheap (max = components of the k-core,
/// straight off the index) so the measurement is dominated by start-up
/// cost, not solver cost.
ticl::Query FirstQuery(ticl::StandIn dataset) {
  ticl::Query q;
  q.k = DefaultK(dataset);
  q.r = 5;
  q.aggregation = ticl::AggregationSpec::Max();
  return q;
}

ticl::EngineOptions ColdEngineOptions() {
  ticl::EngineOptions options;
  options.num_threads = 1;
  options.cache_member_budget = 0;  // measuring start-up, not cache hits
  return options;
}

void BM_TextParsePageRank(benchmark::State& state, ticl::StandIn dataset) {
  const ColdStartFiles& files = Files(dataset);
  const ticl::Query query = FirstQuery(dataset);
  double startup_seconds = 0.0;
  for (auto _ : state) {
    ticl::WallTimer startup;
    ticl::Graph g;
    std::string error;
    if (!ticl::LoadEdgeList(files.text_path, &g, &error)) {
      state.SkipWithError(error.c_str());
      break;
    }
    ticl::AssignWeights(&g, ticl::WeightScheme::kPageRank, 1);
    ticl::QueryEngine engine(std::move(g), ColdEngineOptions());
    startup_seconds += startup.ElapsedSeconds();
    const ticl::EngineResponse response = engine.Run(query);
    benchmark::DoNotOptimize(response.result->communities.data());
  }
  state.counters["startup_ms"] = benchmark::Counter(
      1e3 * startup_seconds / static_cast<double>(state.iterations()));
}

void BM_SnapshotColdStart(benchmark::State& state, ticl::StandIn dataset,
                          const std::string ColdStartFiles::* path,
                          ticl::SnapshotLoadMode mode) {
  const ColdStartFiles& files = Files(dataset);
  const ticl::Query query = FirstQuery(dataset);
  double startup_seconds = 0.0;
  for (auto _ : state) {
    ticl::WallTimer startup;
    std::string error;
    const auto engine = ticl::QueryEngine::OpenSnapshot(
        files.*path, mode, ColdEngineOptions(), &error);
    if (engine == nullptr) {
      state.SkipWithError(error.c_str());
      break;
    }
    startup_seconds += startup.ElapsedSeconds();
    const ticl::EngineResponse response = engine->Run(query);
    benchmark::DoNotOptimize(response.result->communities.data());
  }
  state.counters["startup_ms"] = benchmark::Counter(
      1e3 * startup_seconds / static_cast<double>(state.iterations()));
}

void RegisterAll(ticl::StandIn dataset) {
  const std::string name = DisplayName(dataset);
  const std::string prefix = "ColdStart/" + name + "/";
  benchmark::RegisterBenchmark((prefix + "text_parse_pagerank").c_str(),
                               BM_TextParsePageRank, dataset)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark((prefix + "snapshot_v1_copy").c_str(),
                               BM_SnapshotColdStart, dataset,
                               &ColdStartFiles::v1_path,
                               ticl::SnapshotLoadMode::kCopy)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark((prefix + "snapshot_v2_copy").c_str(),
                               BM_SnapshotColdStart, dataset,
                               &ColdStartFiles::v2_path,
                               ticl::SnapshotLoadMode::kCopy)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark((prefix + "snapshot_v2_copy_index").c_str(),
                               BM_SnapshotColdStart, dataset,
                               &ColdStartFiles::v2_index_path,
                               ticl::SnapshotLoadMode::kCopy)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark((prefix + "snapshot_v2_mmap_index").c_str(),
                               BM_SnapshotColdStart, dataset,
                               &ColdStartFiles::v2_index_path,
                               ticl::SnapshotLoadMode::kMmap)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll(ticl::StandIn::kEmail);
  RegisterAll(ticl::StandIn::kDblp);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
