// Post-delta cache retention: the number that justifies delta-aware
// partial invalidation. A serving engine answers a steady query mix while
// small deltas land; what matters operationally is how much of the warm
// cache survives each delta and how fast the engine is warm again.
//
//   Cache/post_delta_warm/<ds>/partial    warm a k-sweep workload, apply a
//                                         small churn delta (8 edits per
//                                         side), re-answer the workload.
//                                         Partial invalidation keeps every
//                                         k-level the delta provably did
//                                         not touch.
//   Cache/post_delta_warm/<ds>/wholesale  identical workload with the
//                                         PR 3 behaviour (every delta
//                                         clears the whole cache) via the
//                                         cache_partial_invalidation
//                                         kill-switch: the baseline.
//
// Counters:
//   hit_rate        post-delta hits / post-delta queries (higher better;
//                    wholesale is 0 by construction)
//   kept_entries    cache entries that survived one delta sweep
//   warm_ms         wall time to re-answer the whole workload post-delta
//                    (the "time-to-warm" the README quotes; lower better)
//
// The workload sweeps k over [2, k_max] at two r values: low-k answers die
// with almost any edit (their subgraph spans most of the graph), high-k
// answers survive almost any edit — the partial hit-rate lands between, a
// function of where the churn hits the core hierarchy.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "graph/graph_delta.h"
#include "serve/engine.h"
#include "util/timing.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;
using ticl::bench::KMax;

std::vector<ticl::Query> Workload(ticl::StandIn dataset) {
  std::vector<ticl::Query> queries;
  const ticl::VertexId k_max = KMax(dataset);
  for (ticl::VertexId k = 2; k <= k_max; ++k) {
    for (const std::uint32_t r : {1u, 5u}) {
      ticl::Query q;
      q.k = k;
      q.r = r;
      queries.push_back(q);
    }
  }
  // One level past the degeneracy: the negative-cache path.
  ticl::Query none;
  none.k = k_max + 1;
  none.r = 1;
  queries.push_back(none);
  return queries;
}

void BM_PostDeltaWarm(benchmark::State& state, ticl::StandIn dataset,
                      bool partial) {
  const ticl::Graph& g = Dataset(dataset);
  const ticl::GraphDelta delta =
      ticl::RandomDelta(g, /*seed=*/17, /*inserts=*/8, /*deletes=*/8,
                        /*weight_updates=*/2);
  const std::vector<ticl::Query> workload = Workload(dataset);

  double hits = 0, queries = 0, kept = 0, warm_ms = 0, rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();  // engine construction + warm-up are not the story
    ticl::EngineOptions options;
    options.num_threads = 1;
    options.cache_partial_invalidation = partial;
    ticl::Graph copy = g;
    ticl::QueryEngine engine(std::move(copy), options);
    for (const ticl::Query& q : workload) engine.Run(q);
    std::string error;
    if (!engine.ApplyDelta(delta, &error)) {
      state.SkipWithError(("ApplyDelta: " + error).c_str());
      break;
    }
    const ticl::EngineStats before = engine.stats();
    state.ResumeTiming();

    ticl::WallTimer warm_timer;
    for (const ticl::Query& q : workload) {
      benchmark::DoNotOptimize(engine.Run(q).cache_hit);
    }
    warm_ms += warm_timer.ElapsedSeconds() * 1e3;

    state.PauseTiming();
    const ticl::EngineStats after = engine.stats();
    hits += static_cast<double>(after.cache_hits - before.cache_hits);
    queries += static_cast<double>(after.queries - before.queries);
    kept += static_cast<double>(after.cache_partial_kept);
    rounds += 1;
    state.ResumeTiming();
  }
  if (queries > 0) {
    state.counters["hit_rate"] = benchmark::Counter(hits / queries);
  }
  if (rounds > 0) {
    state.counters["kept_entries"] = benchmark::Counter(kept / rounds);
    state.counters["warm_ms"] = benchmark::Counter(warm_ms / rounds);
  }
}

void RegisterAll(ticl::StandIn dataset) {
  const std::string name = DisplayName(dataset);
  benchmark::RegisterBenchmark(
      ("Cache/post_delta_warm/" + name + "/partial").c_str(),
      BM_PostDeltaWarm, dataset, /*partial=*/true)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark(
      ("Cache/post_delta_warm/" + name + "/wholesale").c_str(),
      BM_PostDeltaWarm, dataset, /*partial=*/false)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll(ticl::StandIn::kEmail);
  RegisterAll(ticl::StandIn::kDblp);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
