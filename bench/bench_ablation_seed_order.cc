// Ablation: local search seed ordering. Algorithm 4 scans seeds in vertex-
// id order; visiting high-weight seeds first changes which communities get
// locked in early — this measures the effect on runtime and on the r-th
// influence value (effectiveness), for both TIC and TONIC.

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "core/local_search.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;

void BM_SeedOrder(benchmark::State& state, ticl::StandIn dataset,
                  ticl::SeedOrder order, bool tonic) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = 4;
  query.r = 5;
  query.size_limit = 20;
  query.non_overlapping = tonic;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::LocalSearchOptions options;
  options.greedy = true;
  options.seed_order = order;
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::LocalSearch(g, query, options);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["rth_influence"] =
      result.communities.empty() ? 0.0 : result.communities.back().influence;
  state.counters["seeds"] =
      static_cast<double>(result.stats.seeds_processed);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kEmail, ticl::StandIn::kYoutube,
        ticl::StandIn::kOrkut}) {
    for (const bool tonic : {false, true}) {
      for (const auto order :
           {ticl::SeedOrder::kVertexId, ticl::SeedOrder::kDescendingWeight}) {
        const std::string name =
            "AblationSeedOrder/" + DisplayName(dataset) +
            (tonic ? "/TONIC" : "/TIC") +
            (order == ticl::SeedOrder::kVertexId ? "/ById" : "/ByWeight");
        benchmark::RegisterBenchmark(
            name.c_str(),
            [dataset, order, tonic](benchmark::State& state) {
              BM_SeedOrder(state, dataset, order, tonic);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
