// Paper Fig. 4: running time vs k for the Approx algorithm across epsilon
// in {0.01, 0.05, 0.1, 0.2, 0.5} (sum, size-unconstrained).

#include <benchmark/benchmark.h>

#include "common/unconstrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterUnconstrainedFigure(
      {"Fig4", ticl::bench::UnconstrainedAxis::kVaryK, true});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
