// Ablation: Algorithm 2's best-first (L_max-first) candidate expansion vs
// FIFO expansion. Both are exact (the top-r fixpoint is order-independent)
// but best-first reaches it with fewer expansions — this quantifies the
// gap.

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "core/improved_search.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DefaultK;
using ticl::bench::DisplayName;

void BM_Order(benchmark::State& state, ticl::StandIn dataset,
              bool best_first) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = DefaultK(dataset);
  query.r = 5;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::ImprovedOptions options;
  options.best_first = best_first;
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::ImprovedSearch(g, query, options);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["peels"] = static_cast<double>(result.stats.peel_operations);
  state.counters["candidates"] =
      static_cast<double>(result.stats.candidates_generated);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kEmail, ticl::StandIn::kDblp,
        ticl::StandIn::kLiveJournal}) {
    for (const bool best_first : {true, false}) {
      benchmark::RegisterBenchmark(
          ("AblationOrder/" + DisplayName(dataset) +
           (best_first ? "/BestFirst" : "/Fifo"))
              .c_str(),
          [dataset, best_first](benchmark::State& state) {
            BM_Order(state, dataset, best_first);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
