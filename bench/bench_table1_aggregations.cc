// Paper Table I: the aggregation-function catalogue — formula and hardness
// class per function, printed from the library's own trait system, plus
// micro-benchmarks of each evaluator.

#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/aggregation.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace {

const std::vector<ticl::AggregationSpec>& AllSpecs() {
  static const std::vector<ticl::AggregationSpec> kSpecs = {
      ticl::AggregationSpec::Min(),
      ticl::AggregationSpec::Max(),
      ticl::AggregationSpec::Sum(),
      ticl::AggregationSpec::SumSurplus(1.0),
      ticl::AggregationSpec::Avg(),
      ticl::AggregationSpec::WeightDensity(1.0),
      ticl::AggregationSpec::BalancedDensity()};
  return kSpecs;
}

void PrintTable() {
  std::printf("\nTable I: Aggregation Functions under the k-core Model\n");
  std::printf("%-18s %-28s %-8s\n", "function", "formula f(H)", "hardness");
  std::printf("%-18s %-28s %-8s\n", "--------", "------------", "--------");
  for (const auto& spec : AllSpecs()) {
    std::printf("%-18s %-28s %-8s\n",
                ticl::AggregationName(spec.kind).c_str(),
                ticl::AggregationFormula(spec).c_str(),
                ticl::HardnessClass(spec).c_str());
  }
  std::printf("\n(size-constrained variants are NP-hard for sum and avg; "
              "paper SSIII)\n\n");
}

/// Micro-benchmark: evaluate one aggregation over a 1000-vertex community.
void BM_Evaluate(benchmark::State& state, ticl::AggregationSpec spec) {
  ticl::GraphBuilder builder;
  builder.SetNumVertices(1000);
  for (ticl::VertexId v = 0; v + 1 < 1000; ++v) builder.AddEdge(v, v + 1);
  ticl::Graph g = builder.Build();
  std::vector<ticl::Weight> weights(1000);
  ticl::Rng rng(7);
  for (auto& w : weights) w = rng.NextDouble();
  g.SetWeights(std::move(weights));
  ticl::VertexList members(1000);
  for (ticl::VertexId v = 0; v < 1000; ++v) members[v] = v;
  for (auto _ : state) {
    const double value = ticl::EvaluateOnSubset(spec, g, members);
    benchmark::DoNotOptimize(value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  PrintTable();
  for (const auto& spec : AllSpecs()) {
    benchmark::RegisterBenchmark(
        ("Table1/Evaluate/" + ticl::AggregationName(spec.kind)).c_str(),
        [spec](benchmark::State& state) { BM_Evaluate(state, spec); });
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
