// Paper Fig. 9: running time vs r (avg, size-constrained) — local search
// Random vs Greedy, k = 4, s = 20.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig9", ticl::bench::ConstrainedAxis::kVaryR,
       ticl::AggregationSpec::Avg()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
