// Ablation: Algorithm 2's Line-13 lower-bound pruning. The O(1) child
// value bound skips most cascade peels; this measures Improve with the
// pruning on vs off (identical results, very different peel counts).

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "core/improved_search.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DefaultK;
using ticl::bench::DisplayName;

void BM_Improved(benchmark::State& state, ticl::StandIn dataset,
                 bool pruning) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = DefaultK(dataset);
  query.r = 5;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::ImprovedOptions options;
  options.enable_bound_pruning = pruning;
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::ImprovedSearch(g, query, options);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["peels"] = static_cast<double>(result.stats.peel_operations);
  state.counters["pruned"] =
      static_cast<double>(result.stats.candidates_pruned);
  state.counters["rth_influence"] =
      result.communities.empty() ? 0.0 : result.communities.back().influence;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kEmail, ticl::StandIn::kDblp,
        ticl::StandIn::kOrkut}) {
    for (const bool pruning : {true, false}) {
      benchmark::RegisterBenchmark(
          ("AblationPruning/" + DisplayName(dataset) +
           (pruning ? "/LineBound" : "/NoPruning"))
              .c_str(),
          [dataset, pruning](benchmark::State& state) {
            BM_Improved(state, dataset, pruning);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
