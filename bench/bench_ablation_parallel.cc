// Ablation: parallel local search (the paper's §VIII future-work
// direction). Measures strided-seed parallel speedup at 1 / 2 / 4 workers
// on the size-constrained sum problem.

#include <benchmark/benchmark.h>

#include "common/bench_env.h"
#include "core/local_search.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;

void BM_Parallel(benchmark::State& state, ticl::StandIn dataset,
                 unsigned threads) {
  const ticl::Graph& g = Dataset(dataset);
  ticl::Query query;
  query.k = 4;
  query.r = 5;
  query.size_limit = 20;
  query.aggregation = ticl::AggregationSpec::Sum();
  ticl::LocalSearchOptions options;
  options.num_threads = threads;
  ticl::SearchResult result;
  for (auto _ : state) {
    result = ticl::LocalSearch(g, query, options);
    benchmark::DoNotOptimize(result.communities.data());
  }
  state.counters["rth_influence"] =
      result.communities.empty() ? 0.0 : result.communities.back().influence;
  state.counters["seeds"] = static_cast<double>(result.stats.seeds_processed);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kYoutube, ticl::StandIn::kOrkut,
        ticl::StandIn::kFriendster}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      benchmark::RegisterBenchmark(
          ("AblationParallel/" + DisplayName(dataset) + "/threads:" +
           std::to_string(threads))
              .c_str(),
          [dataset, threads](benchmark::State& state) {
            BM_Parallel(state, dataset, threads);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond)
          ->MeasureProcessCPUTime()
          ->UseRealTime();
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
