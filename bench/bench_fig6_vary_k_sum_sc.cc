// Paper Fig. 6: running time vs k (sum, size-constrained) — local search
// Random vs Greedy, r = 5, s = 20.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig6", ticl::bench::ConstrainedAxis::kVaryK,
       ticl::AggregationSpec::Sum()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
