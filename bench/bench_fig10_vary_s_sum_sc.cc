// Paper Fig. 10: running time vs s (sum, size-constrained) — local search
// Random vs Greedy, k = 4, r = 5.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig10", ticl::bench::ConstrainedAxis::kVaryS,
       ticl::AggregationSpec::Sum()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
