// Paper Fig. 2: running time vs k (sum, size-unconstrained) — Naive vs
// Improve vs Approx on all six stand-in datasets. Naive points whose cost
// model exceeds the budget are omitted, matching the paper's missing
// points.

#include <benchmark/benchmark.h>

#include "common/unconstrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterUnconstrainedFigure(
      {"Fig2", ticl::bench::UnconstrainedAxis::kVaryK, false});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
