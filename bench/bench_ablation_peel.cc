// Ablation: S2's O(n + m) bucket core decomposition (Batagelj–Zaveršnik)
// vs the O(n^2) repeated-minimum-scan reference implementation.

#include <benchmark/benchmark.h>

#include "algo/core_decomposition.h"
#include "common/bench_env.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;

void BM_Bucket(benchmark::State& state, ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  for (auto _ : state) {
    const auto decomp = ticl::CoreDecomposition(g);
    benchmark::DoNotOptimize(decomp.degeneracy);
  }
}

void BM_NaiveScan(benchmark::State& state, ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  for (auto _ : state) {
    const auto decomp = ticl::CoreDecompositionNaive(g);
    benchmark::DoNotOptimize(decomp.degeneracy);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // The O(n^2) reference is only tractable on the small group.
  for (const ticl::StandIn dataset :
       {ticl::StandIn::kEmail, ticl::StandIn::kDblp,
        ticl::StandIn::kYoutube}) {
    benchmark::RegisterBenchmark(
        ("AblationPeel/" + DisplayName(dataset) + "/Bucket").c_str(),
        [dataset](benchmark::State& state) { BM_Bucket(state, dataset); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("AblationPeel/" + DisplayName(dataset) + "/NaiveScan").c_str(),
        [dataset](benchmark::State& state) { BM_NaiveScan(state, dataset); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
