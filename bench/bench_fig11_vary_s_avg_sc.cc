// Paper Fig. 11: running time vs s (avg, size-constrained) — local search
// Random vs Greedy, k = 4, r = 5.

#include <benchmark/benchmark.h>

#include "common/constrained_fig.h"

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ticl::bench::RegisterConstrainedFigure(
      {"Fig11", ticl::bench::ConstrainedAxis::kVaryS,
       ticl::AggregationSpec::Avg()});
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
