// Delta maintenance vs full rebuild: the number that justifies the
// dynamic-graph machinery. After a churn delta lands, the serving stack
// needs (a) the edited CSR graph and (b) a CoreIndex for it. Both paths
// pay the CSR merge and the per-level re-bucketing; they differ in how
// the core numbers are obtained:
//
//   full_rebuild/<churn>   ApplyDeltaToGraph + CoreIndex(g') — fresh
//                          O(n + m) bucket-peel decomposition
//   maintain/<churn>       ApplyDeltaToGraph + CoreMaintainer fed the
//                          delta + CoreIndex::FromCoreNumbers — the peel
//                          is replaced by O(affected subgraph) traversals
//   maintain_core_only     the core-number update alone (no CSR merge,
//                          no re-bucketing): the asymptotic story
//   rebuild_core_only      the decomposition alone, for the same story
//
// churn is edges churned per side (d deletes + d inserts), so 2d edits.
// Expected shape: maintain beats full_rebuild at every churn level that
// is small relative to m, with the core_only gap widening as the graph
// grows; at massive churn the two converge (the affected subgraph is the
// whole graph).

#include <cstddef>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "algo/core_decomposition.h"
#include "algo/core_maintenance.h"
#include "common/bench_env.h"
#include "graph/graph_delta.h"
#include "serve/core_index.h"

namespace {

using ticl::bench::Dataset;
using ticl::bench::DisplayName;

struct DeltaCase {
  const ticl::Graph* graph;
  ticl::GraphDelta delta;
};

/// Churn deltas are generated once per (dataset, size) and shared by every
/// configuration so all four benchmarks measure identical work.
const DeltaCase& CaseFor(ticl::StandIn dataset, std::size_t churn) {
  static std::vector<std::pair<std::string, DeltaCase>>* cache =
      new std::vector<std::pair<std::string, DeltaCase>>();
  const std::string key =
      DisplayName(dataset) + "/" + std::to_string(churn);
  for (const auto& [cached_key, cached_case] : *cache) {
    if (cached_key == key) return cached_case;
  }
  const ticl::Graph& g = Dataset(dataset);
  DeltaCase made;
  made.graph = &g;
  made.delta = ticl::RandomDelta(g, /*seed=*/17, /*inserts=*/churn,
                                 /*deletes=*/churn, /*weight_updates=*/0);
  cache->emplace_back(key, std::move(made));
  return cache->back().second;
}

void BM_FullRebuild(benchmark::State& state, ticl::StandIn dataset,
                    std::size_t churn) {
  const DeltaCase& c = CaseFor(dataset, churn);
  for (auto _ : state) {
    ticl::Graph edited = ticl::ApplyDeltaToGraph(*c.graph, c.delta);
    ticl::CoreIndex index(edited);
    benchmark::DoNotOptimize(index.degeneracy());
  }
}

void BM_Maintain(benchmark::State& state, ticl::StandIn dataset,
                 std::size_t churn) {
  const DeltaCase& c = CaseFor(dataset, churn);
  const ticl::CoreIndex base_index(*c.graph);
  std::uint64_t visited = 0;
  for (auto _ : state) {
    ticl::CoreMaintainer maintainer(*c.graph, base_index.core_numbers());
    for (const ticl::Edge& e : c.delta.delete_edges) {
      maintainer.DeleteEdge(e.u, e.v);
    }
    for (const ticl::Edge& e : c.delta.insert_edges) {
      maintainer.InsertEdge(e.u, e.v);
    }
    ticl::Graph edited = ticl::ApplyDeltaToGraph(*c.graph, c.delta);
    const std::unique_ptr<ticl::CoreIndex> index =
        ticl::CoreIndex::FromCoreNumbers(edited,
                                         maintainer.TakeCoreNumbers());
    benchmark::DoNotOptimize(index->degeneracy());
    visited += maintainer.visited_vertices();
  }
  state.counters["visited_per_iter"] = benchmark::Counter(
      static_cast<double>(visited) /
      static_cast<double>(state.iterations()));
}

void BM_RebuildCoreOnly(benchmark::State& state, ticl::StandIn dataset,
                        std::size_t churn) {
  const DeltaCase& c = CaseFor(dataset, churn);
  const ticl::Graph edited = ticl::ApplyDeltaToGraph(*c.graph, c.delta);
  for (auto _ : state) {
    const ticl::CoreDecompositionResult decomp =
        ticl::CoreDecomposition(edited);
    benchmark::DoNotOptimize(decomp.degeneracy);
  }
}

void BM_MaintainCoreOnly(benchmark::State& state, ticl::StandIn dataset,
                         std::size_t churn) {
  const DeltaCase& c = CaseFor(dataset, churn);
  const ticl::CoreIndex base_index(*c.graph);
  for (auto _ : state) {
    ticl::CoreMaintainer maintainer(*c.graph, base_index.core_numbers());
    for (const ticl::Edge& e : c.delta.delete_edges) {
      maintainer.DeleteEdge(e.u, e.v);
    }
    for (const ticl::Edge& e : c.delta.insert_edges) {
      maintainer.InsertEdge(e.u, e.v);
    }
    benchmark::DoNotOptimize(maintainer.core_numbers().data());
  }
}

void RegisterAll(ticl::StandIn dataset) {
  const ticl::Graph& g = Dataset(dataset);
  const std::string name = DisplayName(dataset);
  // 16 edits, ~0.1%, ~1%, ~5% of m (per side).
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  for (const std::size_t churn :
       {std::size_t{8}, m / 1000 + 1, m / 100 + 1, m / 20 + 1}) {
    const std::string suffix = name + "/churn:" + std::to_string(churn);
    benchmark::RegisterBenchmark(("Delta/full_rebuild/" + suffix).c_str(),
                                 BM_FullRebuild, dataset, churn)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("Delta/maintain/" + suffix).c_str(),
                                 BM_Maintain, dataset, churn)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Delta/rebuild_core_only/" + suffix).c_str(), BM_RebuildCoreOnly,
        dataset, churn)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Delta/maintain_core_only/" + suffix).c_str(), BM_MaintainCoreOnly,
        dataset, churn)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RegisterAll(ticl::StandIn::kEmail);
  RegisterAll(ticl::StandIn::kDblp);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
