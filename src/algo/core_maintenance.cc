#include "algo/core_maintenance.h"

#include <algorithm>
#include <utility>

#include "algo/core_decomposition.h"
#include "util/check.h"

namespace ticl {

namespace {

bool Contains(const std::vector<VertexId>& list, VertexId v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

void Remove(std::vector<VertexId>* list, VertexId v) {
  list->erase(std::find(list->begin(), list->end(), v));
}

}  // namespace

CoreMaintainer::CoreMaintainer(const Graph& g, std::span<const VertexId> core)
    : g_(&g),
      core_(core.begin(), core.end()),
      extra_(g.num_vertices()),
      removed_(g.num_vertices()),
      stamp_(g.num_vertices(), 0),
      cd_(g.num_vertices(), 0),
      flag_(g.num_vertices(), 0) {
  TICL_CHECK_MSG(core.size() == g.num_vertices(),
                 "core numbers do not match the graph");
}

CoreMaintainer::CoreMaintainer(const Graph& g)
    : CoreMaintainer(g, CoreDecomposition(g).core) {}

template <typename Fn>
void CoreMaintainer::ForEachNeighbor(VertexId v, Fn&& fn) const {
  const std::vector<VertexId>& removed = removed_[v];
  if (total_removed_ == 0 || removed.empty()) {
    for (const VertexId nbr : g_->neighbors(v)) fn(nbr);
  } else {
    for (const VertexId nbr : g_->neighbors(v)) {
      if (!Contains(removed, nbr)) fn(nbr);
    }
  }
  for (const VertexId nbr : extra_[v]) fn(nbr);
}

bool CoreMaintainer::HasEdge(VertexId u, VertexId v) const {
  if (u == v) return false;
  if (Contains(extra_[u], v)) return true;
  return g_->HasEdge(u, v) && !Contains(removed_[u], v);
}

VertexId CoreMaintainer::CandidateDegree(VertexId w, VertexId r) const {
  VertexId cd = 0;
  ForEachNeighbor(w, [&](VertexId x) {
    if (core_[x] >= r) ++cd;
  });
  return cd;
}

void CoreMaintainer::NextEpoch() {
  if (++epoch_ == 0) {  // wrapped: reset stamps once, restart at 1
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

void CoreMaintainer::InsertEdge(VertexId u, VertexId v) {
  const VertexId n = g_->num_vertices();
  TICL_CHECK_MSG(u < n && v < n, "InsertEdge endpoint out of range");
  TICL_CHECK_MSG(u != v, "InsertEdge self-loop");
  TICL_CHECK_MSG(!HasEdge(u, v), "InsertEdge: edge already present");

  // Install the edge: revive a removed base edge, or grow the overlay.
  if (Contains(removed_[u], v)) {
    Remove(&removed_[u], v);
    Remove(&removed_[v], u);
    --total_removed_;
  } else {
    extra_[u].push_back(v);
    extra_[v].push_back(u);
  }

  // Candidate collection around the lower endpoint. Expansion is pruned
  // at vertices with cd <= r: they cannot rise, and a set of risers
  // reachable only through such a vertex would have had (r+1)-core
  // support without the new edge — impossible. A vertex that does expand
  // has every core == r neighbour collected, so the peel's discounts see
  // every edge they need. (When the endpoint cores tie, v is adjacent to
  // u over the new, already-installed edge, so one traversal covers both
  // sides.)
  const VertexId r = std::min(core_[u], core_[v]);
  const VertexId root = core_[u] <= core_[v] ? u : v;
  NextEpoch();
  std::vector<VertexId> collected;
  std::vector<VertexId> stack{root};
  std::vector<VertexId> evict;
  stamp_[root] = epoch_;
  while (!stack.empty()) {
    const VertexId w = stack.back();
    stack.pop_back();
    collected.push_back(w);
    flag_[w] = 0;
    ++visited_;
    VertexId cd = 0;
    ForEachNeighbor(w, [&](VertexId x) {
      if (core_[x] >= r) ++cd;
    });
    cd_[w] = cd;
    if (cd > r) {
      ForEachNeighbor(w, [&](VertexId x) {
        if (core_[x] == r && stamp_[x] != epoch_) {
          stamp_[x] = epoch_;
          stack.push_back(x);
        }
      });
    } else {
      flag_[w] = 1;  // cannot rise; seeds the peel below
      evict.push_back(w);
    }
  }

  // Peel with threshold r: survivors can count > r supports among higher
  // cores and surviving peers, so they rise to r + 1.
  while (!evict.empty()) {
    const VertexId w = evict.back();
    evict.pop_back();
    ForEachNeighbor(w, [&](VertexId x) {
      if (stamp_[x] != epoch_ || flag_[x] != 0 || core_[x] != r) return;
      if (--cd_[x] == r) {
        flag_[x] = 1;
        evict.push_back(x);
      }
    });
  }
  for (const VertexId w : collected) {
    if (flag_[w] == 0) {
      RecordBaseline(w);
      core_[w] = r + 1;
      ++changed_;
    }
  }
}

void CoreMaintainer::DeleteEdge(VertexId u, VertexId v) {
  const VertexId n = g_->num_vertices();
  TICL_CHECK_MSG(u < n && v < n, "DeleteEdge endpoint out of range");
  TICL_CHECK_MSG(u != v, "DeleteEdge self-loop");
  TICL_CHECK_MSG(HasEdge(u, v), "DeleteEdge: edge not present");

  // Uninstall: either drop the overlay edge or mask the base edge.
  if (Contains(extra_[u], v)) {
    Remove(&extra_[u], v);
    Remove(&extra_[v], u);
  } else {
    removed_[u].push_back(v);
    removed_[v].push_back(u);
    ++total_removed_;
  }

  const VertexId r = std::min(core_[u], core_[v]);
  TICL_CHECK_MSG(r >= 1, "an existing edge implies endpoint cores >= 1");
  NextEpoch();

  // Cascade: a level-r vertex whose candidate degree falls below r drops
  // to r - 1, which in turn weakens its level-r neighbours. A falling
  // vertex is *queued* (flag) immediately but its core is lowered — and
  // its neighbours discounted — only when it is popped; that way each
  // fall discounts a neighbour exactly once, whether that neighbour's
  // lazily computed cd predates the fall (decremented on pop) or
  // postdates it (the fresh count already excludes the lowered core).
  std::vector<VertexId> fallen;
  const auto queue_fall = [&](VertexId w) {
    flag_[w] = 1;
    fallen.push_back(w);
  };
  for (const VertexId seed : {u, v}) {
    // A seed dropped by the other endpoint's cascade sits at r - 1 now.
    if (core_[seed] != r) continue;
    if (stamp_[seed] != epoch_) {
      stamp_[seed] = epoch_;
      flag_[seed] = 0;
      cd_[seed] = CandidateDegree(seed, r);
      ++visited_;
    }
    if (flag_[seed] == 0 && cd_[seed] < r) queue_fall(seed);
    while (!fallen.empty()) {
      const VertexId w = fallen.back();
      fallen.pop_back();
      RecordBaseline(w);
      core_[w] = r - 1;
      ++changed_;
      ForEachNeighbor(w, [&](VertexId x) {
        if (core_[x] != r) return;  // fell in an earlier pop
        if (stamp_[x] == epoch_ && flag_[x] == 1) return;  // queued to fall
        if (stamp_[x] != epoch_) {
          stamp_[x] = epoch_;
          flag_[x] = 0;
          cd_[x] = CandidateDegree(x, r);  // w already at r - 1: excluded
          ++visited_;
        } else {
          --cd_[x];
        }
        if (cd_[x] < r) queue_fall(x);
      });
    }
  }
}

AffectedSummary CoreMaintainer::Summary() const {
  AffectedSummary summary;
  for (const auto& [v, old_core] : baseline_) {
    const VertexId new_core = core_[v];
    if (new_core == old_core) continue;  // rose then fell back (or vice versa)
    summary.changed_vertices.push_back(v);
    const VertexId lo = std::min(old_core, new_core) + 1;
    const VertexId hi = std::max(old_core, new_core);
    if (summary.changed_vertices.size() == 1) {
      summary.min_crossed = lo;
      summary.max_crossed = hi;
    } else {
      summary.min_crossed = std::min(summary.min_crossed, lo);
      summary.max_crossed = std::max(summary.max_crossed, hi);
    }
  }
  std::sort(summary.changed_vertices.begin(),
            summary.changed_vertices.end());
  return summary;
}

VertexId CoreMaintainer::ComputeDegeneracy() const {
  VertexId degeneracy = 0;
  for (const VertexId c : core_) degeneracy = std::max(degeneracy, c);
  return degeneracy;
}

}  // namespace ticl
