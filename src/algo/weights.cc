#include "algo/weights.h"

#include <cmath>
#include <vector>

#include "algo/core_decomposition.h"
#include "algo/eigenvector.h"
#include "algo/pagerank.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

std::string WeightSchemeName(WeightScheme scheme) {
  switch (scheme) {
    case WeightScheme::kPageRank:
      return "pagerank";
    case WeightScheme::kDegree:
      return "degree";
    case WeightScheme::kUniform:
      return "uniform";
    case WeightScheme::kLogNormal:
      return "lognormal";
    case WeightScheme::kEigenvector:
      return "eigenvector";
    case WeightScheme::kCoreNumber:
      return "core-number";
  }
  TICL_CHECK_MSG(false, "unknown weight scheme");
  return "";
}

void AssignWeights(Graph* g, WeightScheme scheme, std::uint64_t seed) {
  const VertexId n = g->num_vertices();
  std::vector<Weight> weights(n, 0.0);
  switch (scheme) {
    case WeightScheme::kPageRank: {
      weights = ComputePageRank(*g).scores;
      break;
    }
    case WeightScheme::kDegree: {
      const double max_deg =
          g->max_degree() > 0 ? static_cast<double>(g->max_degree()) : 1.0;
      for (VertexId v = 0; v < n; ++v) {
        weights[v] = static_cast<double>(g->degree(v)) / max_deg;
      }
      break;
    }
    case WeightScheme::kUniform: {
      Rng rng(seed);
      for (VertexId v = 0; v < n; ++v) weights[v] = rng.NextDouble();
      break;
    }
    case WeightScheme::kLogNormal: {
      Rng rng(seed);
      for (VertexId v = 0; v < n; ++v) {
        weights[v] = std::exp(rng.NextGaussian());
      }
      break;
    }
    case WeightScheme::kEigenvector: {
      weights = ComputeEigenvectorCentrality(*g).scores;
      break;
    }
    case WeightScheme::kCoreNumber: {
      const CoreDecompositionResult decomp = CoreDecomposition(*g);
      const double denom =
          decomp.degeneracy > 0 ? static_cast<double>(decomp.degeneracy)
                                : 1.0;
      for (VertexId v = 0; v < n; ++v) {
        weights[v] = static_cast<double>(decomp.core[v]) / denom;
      }
      break;
    }
  }
  g->SetWeights(std::move(weights));
}

}  // namespace ticl
