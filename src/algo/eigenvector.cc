#include "algo/eigenvector.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ticl {

EigenvectorResult ComputeEigenvectorCentrality(
    const Graph& g, const EigenvectorOptions& options) {
  TICL_CHECK(options.max_iterations >= 1);
  const VertexId n = g.num_vertices();
  EigenvectorResult out;
  out.scores.assign(n, 0.0);
  if (n == 0 || g.num_edges() == 0) return out;

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // next = (A + I) * x. The identity shift keeps the same eigenvectors
    // but breaks the +/-lambda symmetry of bipartite graphs (e.g. stars),
    // where plain power iteration oscillates forever.
    for (VertexId v = 0; v < n; ++v) {
      double acc = x[v];
      for (const VertexId nbr : g.neighbors(v)) acc += x[nbr];
      next[v] = acc;
    }
    double norm = 0.0;
    for (const double value : next) norm += value * value;
    norm = std::sqrt(norm);
    if (norm == 0.0) break;     // degenerate (cannot happen with edges)
    out.eigenvalue = norm - 1;  // undo the +I shift in the estimate
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      next[v] /= norm;
      const double diff = next[v] - x[v];
      delta += diff * diff;
    }
    x.swap(next);
    out.iterations = iter + 1;
    if (std::sqrt(delta) < options.tolerance) break;
  }

  const double max_score = *std::max_element(x.begin(), x.end());
  if (max_score > 0.0) {
    for (double& value : x) value = std::max(0.0, value / max_score);
  }
  out.scores = std::move(x);
  return out;
}

}  // namespace ticl
