// Disjoint-set union with union-by-size and path halving.

#ifndef TICL_ALGO_UNION_FIND_H_
#define TICL_ALGO_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/types.h"

namespace ticl {

class UnionFind {
 public:
  explicit UnionFind(VertexId n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  /// Representative of x's set.
  VertexId Find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns true if they were distinct.
  bool Union(VertexId a, VertexId b) {
    VertexId ra = Find(a);
    VertexId rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) {
      const VertexId tmp = ra;
      ra = rb;
      rb = tmp;
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(VertexId a, VertexId b) { return Find(a) == Find(b); }

  /// Size of the set containing x.
  VertexId SetSize(VertexId x) { return size_[Find(x)]; }

  /// Current number of disjoint sets.
  VertexId num_sets() const { return num_sets_; }

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
  VertexId num_sets_;
};

}  // namespace ticl

#endif  // TICL_ALGO_UNION_FIND_H_
