// Eigenvector centrality by power iteration — another structural weight
// scheme for the influential community model (the paper's §I lists
// PageRank, Closeness, Degree, Betweenness as candidate weights; this adds
// the classic spectral one).

#ifndef TICL_ALGO_EIGENVECTOR_H_
#define TICL_ALGO_EIGENVECTOR_H_

#include <vector>

#include "graph/graph.h"

namespace ticl {

struct EigenvectorOptions {
  int max_iterations = 200;
  /// L2 convergence threshold between successive normalized iterates.
  double tolerance = 1e-12;
};

struct EigenvectorResult {
  /// Non-negative scores, normalized to unit maximum (all-zero for an
  /// edgeless graph).
  std::vector<double> scores;
  int iterations = 0;
  /// Rayleigh-quotient estimate of the dominant eigenvalue.
  double eigenvalue = 0.0;
};

/// Principal eigenvector of the adjacency matrix (Perron–Frobenius vector
/// of the largest connected structure). Isolated vertices score 0.
EigenvectorResult ComputeEigenvectorCentrality(
    const Graph& g, const EigenvectorOptions& options = {});

}  // namespace ticl

#endif  // TICL_ALGO_EIGENVECTOR_H_
