// Vertex-weight assignment schemes. The paper's evaluation uses PageRank
// weights; the model itself admits any non-negative per-vertex score
// (H-index, income, centralities — §I), so the library ships several.

#ifndef TICL_ALGO_WEIGHTS_H_
#define TICL_ALGO_WEIGHTS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace ticl {

enum class WeightScheme {
  /// PageRank scores, damping 0.85 (the paper's setting).
  kPageRank,
  /// Degree / max-degree, a cheap structural centrality.
  kDegree,
  /// i.i.d. uniform in [0, 1).
  kUniform,
  /// i.i.d. log-normal (mu = 0, sigma = 1): heavy-tailed, H-index-like.
  kLogNormal,
  /// Eigenvector centrality (unit-max normalized).
  kEigenvector,
  /// Core number / degeneracy: rewards membership in deep cores.
  kCoreNumber,
};

/// Human-readable name ("pagerank", "degree", ...).
std::string WeightSchemeName(WeightScheme scheme);

/// Computes and installs weights on `g`. `seed` feeds the random schemes
/// (ignored by the deterministic ones).
void AssignWeights(Graph* g, WeightScheme scheme, std::uint64_t seed = 0);

}  // namespace ticl

#endif  // TICL_ALGO_WEIGHTS_H_
