// Connectivity primitives: whole-graph components, components of a vertex
// subset, and bounded BFS neighbourhood collection (the "s-nearest
// neighbours" primitive of the paper's local search).

#ifndef TICL_ALGO_CONNECTIVITY_H_
#define TICL_ALGO_CONNECTIVITY_H_

#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ticl {

/// Labels every vertex with a component id in [0, num_components).
struct ComponentLabels {
  std::vector<VertexId> label;
  VertexId num_components = 0;
};

/// Connected components of the whole graph (BFS).
ComponentLabels ConnectedComponents(const Graph& g);

/// Connected components of the subgraph induced by `members`.
/// Each returned component is sorted ascending. `members` must not contain
/// duplicates. Complexity O(sum of member degrees). Takes a span so callers
/// holding zero-copy views (CoreIndex member lists over a mapped snapshot)
/// avoid materializing a vector.
std::vector<VertexList> ComponentsOfSubset(const Graph& g,
                                           std::span<const VertexId> members);

/// True if the subgraph induced by `members` is connected (empty sets and
/// singletons count as connected).
bool IsSubsetConnected(const Graph& g, const VertexList& members);

/// Collects up to `limit` vertices in BFS order from `seed` (seed included,
/// distance ties broken by adjacency order, which is ascending vertex id).
/// `allowed` filters which vertices may be visited; it must accept the seed.
/// This realizes the paper's s-nearest-neighbour expansion: when the 1-hop
/// ball is too small the search continues to 2 hops and beyond.
VertexList CollectNearestNeighbors(
    const Graph& g, VertexId seed, std::size_t limit,
    const std::function<bool(VertexId)>& allowed);

}  // namespace ticl

#endif  // TICL_ALGO_CONNECTIVITY_H_
