#include "algo/pagerank.h"

#include <cmath>

#include "util/check.h"

namespace ticl {

PageRankResult ComputePageRank(const Graph& g,
                               const PageRankOptions& options) {
  TICL_CHECK(options.damping >= 0.0 && options.damping < 1.0);
  TICL_CHECK(options.max_iterations >= 1);
  const VertexId n = g.num_vertices();
  PageRankResult out;
  if (n == 0) return out;

  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling_mass = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (g.degree(v) == 0) dangling_mass += rank[v];
    }
    const double base =
        (1.0 - options.damping) * inv_n +
        options.damping * dangling_mass * inv_n;
    for (VertexId v = 0; v < n; ++v) next[v] = base;
    for (VertexId v = 0; v < n; ++v) {
      const VertexId deg = g.degree(v);
      if (deg == 0) continue;
      const double share =
          options.damping * rank[v] / static_cast<double>(deg);
      for (const VertexId nbr : g.neighbors(v)) next[nbr] += share;
    }
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::fabs(next[v] - rank[v]);
    rank.swap(next);
    out.iterations = iter + 1;
    out.final_delta = delta;
    if (delta < options.tolerance) break;
  }
  out.scores = std::move(rank);
  return out;
}

}  // namespace ticl
