#include "algo/kcore_peeler.h"

#include <algorithm>

#include "util/check.h"

namespace ticl {

SubsetPeeler::SubsetPeeler(const Graph& g)
    : g_(&g),
      epoch_of_(g.num_vertices(), 0),
      alive_(g.num_vertices(), 0),
      local_deg_(g.num_vertices(), 0),
      visit_epoch_of_(g.num_vertices(), 0) {}

std::size_t SubsetPeeler::BeginEpoch(const VertexList& members,
                                     VertexId skip) {
  ++epoch_;
  std::size_t working = 0;
  for (const VertexId v : members) {
    if (v == skip) continue;
    TICL_DCHECK(v < g_->num_vertices());
    TICL_CHECK_MSG(epoch_of_[v] != epoch_, "duplicate vertex in peel subset");
    epoch_of_[v] = epoch_;
    alive_[v] = 1;
    ++working;
  }
  for (const VertexId v : members) {
    if (v == skip) continue;
    VertexId d = 0;
    for (const VertexId nbr : g_->neighbors(v)) {
      if (epoch_of_[nbr] == epoch_) ++d;
    }
    local_deg_[v] = d;
  }
  return working;
}

void SubsetPeeler::Cascade(VertexId k) {
  // The entry points have already pushed the initial under-degree victims
  // into queue_ (right after BeginEpoch computed induced degrees); this
  // drains it to the fixpoint.
  last_cascade_size_ = 0;
  while (!queue_.empty()) {
    const VertexId v = queue_.back();
    queue_.pop_back();
    if (!InWorkingSet(v)) continue;
    alive_[v] = 0;
    ++last_cascade_size_;
    for (const VertexId nbr : g_->neighbors(v)) {
      if (!InWorkingSet(nbr)) continue;
      if (local_deg_[nbr] > 0) --local_deg_[nbr];
      if (local_deg_[nbr] < k) queue_.push_back(nbr);
    }
  }
}

VertexList SubsetPeeler::Survivors(const VertexList& members,
                                   VertexId skip) const {
  VertexList out;
  for (const VertexId v : members) {
    if (v != skip && InWorkingSet(v)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

VertexList SubsetPeeler::Peel(const VertexList& members, VertexId k) {
  BeginEpoch(members, kInvalidVertex);
  queue_.clear();
  for (const VertexId v : members) {
    if (local_deg_[v] < k) queue_.push_back(v);
  }
  Cascade(k);
  return Survivors(members, kInvalidVertex);
}

std::vector<VertexList> SubsetPeeler::SplitSurvivors(
    const VertexList& members, VertexId skip) {
  std::vector<VertexList> components;
  std::vector<VertexId> stack;
  for (const VertexId start : members) {
    if (start == skip || !InWorkingSet(start)) continue;
    if (visit_epoch_of_[start] == epoch_) continue;
    VertexList component;
    visit_epoch_of_[start] = epoch_;
    stack.clear();
    stack.push_back(start);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      component.push_back(v);
      for (const VertexId nbr : g_->neighbors(v)) {
        if (InWorkingSet(nbr) && visit_epoch_of_[nbr] != epoch_) {
          visit_epoch_of_[nbr] = epoch_;
          stack.push_back(nbr);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

std::vector<VertexList> SubsetPeeler::PeelAndSplit(const VertexList& members,
                                                   VertexId k) {
  BeginEpoch(members, kInvalidVertex);
  queue_.clear();
  for (const VertexId v : members) {
    if (local_deg_[v] < k) queue_.push_back(v);
  }
  Cascade(k);
  return SplitSurvivors(members, kInvalidVertex);
}

std::vector<VertexList> SubsetPeeler::RemoveAndSplit(
    const VertexList& members, VertexId removed, VertexId k) {
  TICL_DCHECK(std::find(members.begin(), members.end(), removed) !=
              members.end());
  BeginEpoch(members, removed);
  queue_.clear();
  for (const VertexId v : members) {
    if (v != removed && local_deg_[v] < k) queue_.push_back(v);
  }
  Cascade(k);
  return SplitSurvivors(members, removed);
}

}  // namespace ticl
