#include "algo/core_decomposition.h"

#include <algorithm>

#include "algo/connectivity.h"
#include "util/check.h"

namespace ticl {

CoreDecompositionResult CoreDecomposition(const Graph& g) {
  const VertexId n = g.num_vertices();
  CoreDecompositionResult out;
  out.core.assign(n, 0);
  if (n == 0) return out;

  // Bucket sort vertices by degree.
  const VertexId max_deg = g.max_degree();
  std::vector<VertexId> bin(static_cast<std::size_t>(max_deg) + 2, 0);
  std::vector<VertexId> deg(n);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    ++bin[deg[v]];
  }
  VertexId start = 0;
  for (VertexId d = 0; d <= max_deg; ++d) {
    const VertexId count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);   // vertices sorted by current degree
  std::vector<VertexId> pos(n);     // position of each vertex in `order`
  for (VertexId v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]];
    order[pos[v]] = v;
    ++bin[deg[v]];
  }
  // Restore bin[d] = first index with degree d.
  for (VertexId d = max_deg; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  // Peel in non-decreasing degree order; when v is peeled, its remaining
  // neighbours' degrees drop by one (constant-time bucket moves).
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    out.core[v] = deg[v];
    for (const VertexId u : g.neighbors(v)) {
      if (deg[u] <= deg[v]) continue;  // already peeled or tied
      const VertexId du = deg[u];
      const VertexId pu = pos[u];
      const VertexId pw = bin[du];  // first vertex of u's bucket
      const VertexId w = order[pw];
      if (u != w) {
        std::swap(order[pu], order[pw]);
        pos[u] = pw;
        pos[w] = pu;
      }
      ++bin[du];
      --deg[u];
    }
  }
  out.degeneracy = *std::max_element(out.core.begin(), out.core.end());
  return out;
}

CoreDecompositionResult CoreDecompositionNaive(const Graph& g) {
  const VertexId n = g.num_vertices();
  CoreDecompositionResult out;
  out.core.assign(n, 0);
  if (n == 0) return out;

  std::vector<VertexId> deg(n);
  std::vector<bool> removed(n, false);
  for (VertexId v = 0; v < n; ++v) deg[v] = g.degree(v);

  for (VertexId peeled = 0; peeled < n; ++peeled) {
    // Linear scan for the minimum-degree surviving vertex.
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (removed[v]) continue;
      if (best == kInvalidVertex || deg[v] < deg[best]) best = v;
    }
    removed[best] = true;
    // Core number is monotone over the peel: at least the previous max seen.
    out.degeneracy = std::max(out.degeneracy, deg[best]);
    out.core[best] = out.degeneracy;
    for (const VertexId u : g.neighbors(best)) {
      if (!removed[u] && deg[u] > 0) --deg[u];
    }
  }
  return out;
}

VertexList MaximalKCore(const Graph& g, VertexId k) {
  const CoreDecompositionResult decomp = CoreDecomposition(g);
  VertexList members;
  const VertexId n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (decomp.core[v] >= k) members.push_back(v);
  }
  return members;
}

std::vector<VertexList> KCoreComponents(const Graph& g, VertexId k) {
  return ComponentsOfSubset(g, MaximalKCore(g, k));
}

}  // namespace ticl
