#include "algo/connectivity.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/check.h"

namespace ticl {

ComponentLabels ConnectedComponents(const Graph& g) {
  const VertexId n = g.num_vertices();
  ComponentLabels out;
  out.label.assign(n, kInvalidVertex);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (out.label[start] != kInvalidVertex) continue;
    const VertexId id = out.num_components++;
    out.label[start] = id;
    queue.clear();
    queue.push_back(start);
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      for (const VertexId nbr : g.neighbors(v)) {
        if (out.label[nbr] == kInvalidVertex) {
          out.label[nbr] = id;
          queue.push_back(nbr);
        }
      }
    }
  }
  return out;
}

std::vector<VertexList> ComponentsOfSubset(const Graph& g,
                                           std::span<const VertexId> members) {
  // Hash-set membership keeps this O(sum of degrees) without O(n) scratch,
  // so it stays cheap when called with many small subsets.
  std::unordered_set<VertexId> in_set(members.begin(), members.end());
  TICL_CHECK_MSG(in_set.size() == members.size(),
                 "duplicate vertex in subset");
  std::unordered_set<VertexId> visited;
  visited.reserve(members.size());

  std::vector<VertexList> components;
  std::vector<VertexId> queue;
  for (const VertexId start : members) {
    if (visited.contains(start)) continue;
    VertexList component;
    queue.clear();
    queue.push_back(start);
    visited.insert(start);
    while (!queue.empty()) {
      const VertexId v = queue.back();
      queue.pop_back();
      component.push_back(v);
      for (const VertexId nbr : g.neighbors(v)) {
        if (in_set.contains(nbr) && !visited.contains(nbr)) {
          visited.insert(nbr);
          queue.push_back(nbr);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

bool IsSubsetConnected(const Graph& g, const VertexList& members) {
  if (members.size() <= 1) return true;
  std::unordered_set<VertexId> in_set(members.begin(), members.end());
  TICL_CHECK_MSG(in_set.size() == members.size(),
                 "duplicate vertex in subset");
  std::unordered_set<VertexId> visited;
  visited.reserve(members.size());
  std::vector<VertexId> queue{members.front()};
  visited.insert(members.front());
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    for (const VertexId nbr : g.neighbors(v)) {
      if (in_set.contains(nbr) && !visited.contains(nbr)) {
        visited.insert(nbr);
        queue.push_back(nbr);
      }
    }
  }
  return visited.size() == members.size();
}

VertexList CollectNearestNeighbors(
    const Graph& g, VertexId seed, std::size_t limit,
    const std::function<bool(VertexId)>& allowed) {
  VertexList collected;
  if (limit == 0) return collected;
  TICL_CHECK(seed < g.num_vertices());
  TICL_CHECK_MSG(allowed(seed), "seed filtered out by `allowed`");

  std::unordered_set<VertexId> visited;
  std::deque<VertexId> frontier;
  visited.insert(seed);
  frontier.push_back(seed);
  collected.push_back(seed);
  while (!frontier.empty() && collected.size() < limit) {
    const VertexId v = frontier.front();
    frontier.pop_front();
    for (const VertexId nbr : g.neighbors(v)) {
      if (visited.contains(nbr) || !allowed(nbr)) continue;
      visited.insert(nbr);
      frontier.push_back(nbr);
      collected.push_back(nbr);
      if (collected.size() == limit) break;
    }
  }
  return collected;
}

}  // namespace ticl
