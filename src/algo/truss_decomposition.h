// k-truss machinery. The paper (§I, §VII) notes that the influential
// community model extends beyond k-core to other cohesiveness metrics,
// k-truss in particular [Cohen 2008]; this module provides that substrate.
//
// A k-truss is a subgraph in which every edge participates in at least
// k - 2 triangles (within the subgraph). Truss numbers are computed by the
// standard support-peeling algorithm: count per-edge triangle supports,
// then repeatedly peel the minimum-support edge, decrementing the supports
// of the edges it formed triangles with.

#ifndef TICL_ALGO_TRUSS_DECOMPOSITION_H_
#define TICL_ALGO_TRUSS_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ticl {

struct TrussDecompositionResult {
  /// Canonical undirected edge array (u < v), sorted lexicographically —
  /// the index into this array is the edge id used below.
  std::vector<Edge> edges;
  /// truss[e] = largest k such that edge e belongs to a k-truss (>= 2).
  std::vector<VertexId> truss;
  /// Maximum truss number over all edges (2 for a triangle-free graph with
  /// edges; 0 for an edgeless graph).
  VertexId max_truss = 0;
};

/// Support-peeling truss decomposition. O(m^1.5) triangle counting plus
/// near-linear peeling.
TrussDecompositionResult TrussDecomposition(const Graph& g);

/// Vertices incident to at least one edge of truss number >= k (sorted).
/// k must be >= 2.
VertexList MaximalKTruss(const Graph& g, VertexId k);

/// Connected components of the maximal k-truss, connected *via truss
/// edges* (two vertices in the same component iff joined by a path of
/// edges with truss >= k). Each component sorted ascending.
std::vector<VertexList> KTrussComponents(const Graph& g, VertexId k);

/// Validation helper: "" if the subgraph induced by `members` is a
/// connected k-truss (every induced edge in >= k - 2 induced triangles,
/// every member incident to at least one induced edge, connected);
/// otherwise a diagnostic. Singleton sets are rejected (a truss community
/// needs an edge).
std::string ValidateKTrussSubgraph(const Graph& g, const VertexList& members,
                                   VertexId k);

}  // namespace ticl

#endif  // TICL_ALGO_TRUSS_DECOMPOSITION_H_
