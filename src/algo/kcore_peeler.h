// Cascade peeling of vertex subsets back to k-cores.
//
// Algorithms 1 and 2 delete one vertex from a candidate community and must
// then restore the k-core property (removals can cascade) and split the
// survivors into connected components. This class owns the O(n) scratch
// arrays (epoch-stamped so they are reset in O(1) per call) and performs
// each peel in time linear in the size of the subset plus its incident
// edges.

#ifndef TICL_ALGO_KCORE_PEELER_H_
#define TICL_ALGO_KCORE_PEELER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ticl {

class SubsetPeeler {
 public:
  /// The graph must outlive the peeler.
  explicit SubsetPeeler(const Graph& g);

  /// Returns the maximal k-core of the subgraph induced by `members`
  /// (sorted ascending; possibly empty). `members` must be duplicate-free.
  VertexList Peel(const VertexList& members, VertexId k);

  /// Peel, then split the survivors into connected components (each sorted).
  std::vector<VertexList> PeelAndSplit(const VertexList& members, VertexId k);

  /// Convenience for the solvers' inner step: removes `removed` from
  /// `members`, peels, splits. `removed` must be present in `members`.
  std::vector<VertexList> RemoveAndSplit(const VertexList& members,
                                         VertexId removed, VertexId k);

  /// Vertices peeled away (beyond explicit removals) by the last call.
  std::size_t last_cascade_size() const { return last_cascade_size_; }

 private:
  /// Stamps `members` (minus `skip`, if valid) into the working set and
  /// computes their induced degrees. Returns the working-set size.
  std::size_t BeginEpoch(const VertexList& members, VertexId skip);

  /// Queue-based cascade removal of working-set vertices with degree < k.
  void Cascade(VertexId k);

  /// Survivors of `members` after Cascade, sorted.
  VertexList Survivors(const VertexList& members, VertexId skip) const;

  /// Components of the surviving working set.
  std::vector<VertexList> SplitSurvivors(const VertexList& members,
                                         VertexId skip);

  bool InWorkingSet(VertexId v) const {
    return epoch_of_[v] == epoch_ && alive_[v];
  }

  const Graph* g_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> epoch_of_;
  std::vector<std::uint8_t> alive_;
  std::vector<VertexId> local_deg_;
  std::vector<VertexId> queue_;
  // Component-split scratch (second stamp so Cascade state is preserved).
  std::vector<std::uint64_t> visit_epoch_of_;
  std::size_t last_cascade_size_ = 0;
};

}  // namespace ticl

#endif  // TICL_ALGO_KCORE_PEELER_H_
