// k-core machinery: full core decomposition (Batagelj–Zaveršnik bucket
// peel), maximal k-core extraction, and the k-core connected components that
// seed every top-r solver.

#ifndef TICL_ALGO_CORE_DECOMPOSITION_H_
#define TICL_ALGO_CORE_DECOMPOSITION_H_

#include <vector>

#include "graph/graph.h"

namespace ticl {

/// Result of a full core decomposition.
struct CoreDecompositionResult {
  /// core[v] = largest k such that v belongs to a k-core.
  std::vector<VertexId> core;
  /// Degeneracy of the graph: max over core[] (the paper's k_max).
  VertexId degeneracy = 0;
};

/// O(n + m) bucket-peeling core decomposition.
CoreDecompositionResult CoreDecomposition(const Graph& g);

/// Reference implementation that repeatedly scans for a minimum-degree
/// vertex (O(n^2 + m) worst case). Exists to cross-check the bucket peel in
/// tests and to quantify its benefit in bench_ablation_peel.
CoreDecompositionResult CoreDecompositionNaive(const Graph& g);

/// Vertices of the maximal k-core (sorted ascending; empty if none).
VertexList MaximalKCore(const Graph& g, VertexId k);

/// Connected components of the maximal k-core, each sorted ascending.
/// These are the disjoint communities L_0 of Algorithms 1, 2 and 4.
std::vector<VertexList> KCoreComponents(const Graph& g, VertexId k);

}  // namespace ticl

#endif  // TICL_ALGO_CORE_DECOMPOSITION_H_
