// Incremental k-core maintenance: keep exact core numbers up to date
// across a stream of edge insertions and deletions without re-running the
// O(n + m) bucket peel per change.
//
// The algorithm is the order-based / traversal scheme from the core
// maintenance literature (Sarıyüce et al., "Streaming algorithms for
// k-core decomposition"; Zhang et al., "A fast order-based approach for
// core maintenance"): a single edge change moves any core number by at
// most one, and only within the *subcore* around the touched endpoints —
// the connected region of vertices sharing the smaller endpoint core
// number. Each operation therefore costs O(|affected subgraph|), which on
// real graphs is orders of magnitude below n + m:
//
//   insert {u, v}:  r = min(core(u), core(v)). Traverse the core == r
//                   region from the lower endpoint, but expand only
//                   through vertices whose candidate degree
//                   cd(w) = |{x in N(w) : core(x) >= r}| exceeds r — a
//                   vertex at cd <= r cannot rise, and any set of risers
//                   disconnected from the new edge through risers would
//                   already have been an (r+1)-core, so pruning there is
//                   lossless. Peel the collected set with threshold r;
//                   survivors rise to r + 1.
//   delete {u, v}:  r = min(core(u), core(v)). Endpoints at level r whose
//                   cd drops below r fall to r - 1; each fall decrements
//                   neighbouring cds, cascading through the subcore.
//
// The maintainer never mutates the (immutable, possibly mmap-backed)
// Graph it starts from. Edits live in a small overlay — per-vertex insert
// lists plus a deleted-edge hash set — so construction is O(n) and memory
// stays proportional to the edit count, not to a second copy of the CSR.
// After feeding a whole GraphDelta, harvest core_numbers() into
// CoreIndex::FromCoreNumbers over the rebuilt graph; equivalence with a
// from-scratch decomposition is bit-exact and asserted by the randomized
// tests.

#ifndef TICL_ALGO_CORE_MAINTENANCE_H_
#define TICL_ALGO_CORE_MAINTENANCE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace ticl {

/// Net effect of an edit batch on the core decomposition: which vertices
/// ended at a different core number than they started, and the range of
/// k-thresholds those moves crossed. A vertex moving c_old -> c_new
/// changes membership of exactly the k-cores with k in
/// (min(c_old, c_new), max(c_old, c_new)] — so a consumer that cares
/// about level k is unaffected whenever k lies outside
/// [min_crossed, max_crossed]. The serve layer's result cache keys its
/// partial invalidation on this (src/serve/result_cache.h).
struct AffectedSummary {
  /// Vertices whose core number differs from the baseline, ascending.
  /// Intermediate moves that cancel out across the batch are excluded.
  std::vector<VertexId> changed_vertices;
  /// Smallest / largest k-threshold crossed by any net change; both 0
  /// when changed_vertices is empty.
  VertexId min_crossed = 0;
  VertexId max_crossed = 0;

  bool any() const { return !changed_vertices.empty(); }
};

class CoreMaintainer {
 public:
  /// Seeds the maintainer with `g` and its current core numbers (from a
  /// CoreIndex or a fresh CoreDecomposition; must describe exactly `g`).
  /// The graph must outlive the maintainer.
  CoreMaintainer(const Graph& g, std::span<const VertexId> core);

  /// Convenience: runs the decomposition itself.
  explicit CoreMaintainer(const Graph& g);

  /// Applies one edge insertion. The edge must be absent (TICL_CHECKed
  /// against the overlay state, not the base graph).
  void InsertEdge(VertexId u, VertexId v);

  /// Applies one edge deletion. The edge must be present.
  void DeleteEdge(VertexId u, VertexId v);

  /// True when {u, v} exists in the current (base + overlay) graph.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Current exact core numbers.
  const std::vector<VertexId>& core_numbers() const { return core_; }

  /// Moves the core numbers out (the maintainer is spent afterwards).
  std::vector<VertexId> TakeCoreNumbers() { return std::move(core_); }

  /// Max core number (recomputed on demand, O(n)).
  VertexId ComputeDegeneracy() const;

  /// Vertices whose core number changed since construction, and total
  /// vertices visited by the traversals — the "affected subgraph" the
  /// benchmarks report.
  std::uint64_t changed_vertices() const { return changed_; }
  std::uint64_t visited_vertices() const { return visited_; }

  /// Net changes since construction (O(changed) to compute). Valid until
  /// TakeCoreNumbers(); callers needing both must take the summary first.
  AffectedSummary Summary() const;

 private:
  /// Remembers the pre-batch core number the first time `v` moves, so
  /// Summary() can report net (not gross) changes.
  void RecordBaseline(VertexId v) { baseline_.emplace(v, core_[v]); }
  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn&& fn) const;

  /// Number of neighbours x of w with core(x) >= r.
  VertexId CandidateDegree(VertexId w, VertexId r) const;

  /// Fresh epoch for the stamped scratch arrays (O(1) reset per edit).
  void NextEpoch();

  const Graph* g_;
  std::vector<VertexId> core_;
  /// Overlay: per-vertex inserted and deleted neighbours (tiny lists —
  /// edit batches are small relative to the graph, and a vertex with no
  /// edits pays one empty() check per row scan, not a hash probe per
  /// neighbour).
  std::vector<std::vector<VertexId>> extra_;
  std::vector<std::vector<VertexId>> removed_;
  std::uint64_t total_removed_ = 0;
  /// First-seen (pre-batch) core number of every vertex that ever moved.
  std::unordered_map<VertexId, VertexId> baseline_;
  /// Epoch-stamped scratch shared by both traversals.
  std::vector<std::uint32_t> stamp_;
  std::vector<VertexId> cd_;
  std::vector<std::uint8_t> flag_;  // insertion: evicted; deletion: dropped
  std::uint32_t epoch_ = 0;
  std::uint64_t changed_ = 0;
  std::uint64_t visited_ = 0;
};

}  // namespace ticl

#endif  // TICL_ALGO_CORE_MAINTENANCE_H_
