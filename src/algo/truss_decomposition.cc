#include "algo/truss_decomposition.h"

#include <algorithm>

#include "algo/union_find.h"
#include "util/check.h"

namespace ticl {

namespace {

/// Index of value `v` inside the sorted neighbour list of `u`, or npos.
std::size_t NeighborPosition(const Graph& g, VertexId u, VertexId v) {
  const auto nbrs = g.neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(g.offsets()[u] +
                                  static_cast<EdgeIndex>(it - nbrs.begin()));
}

}  // namespace

TrussDecompositionResult TrussDecomposition(const Graph& g) {
  TrussDecompositionResult out;
  const VertexId n = g.num_vertices();
  const std::size_t m = static_cast<std::size_t>(g.num_edges());
  out.edges.reserve(m);
  out.truss.assign(m, 2);
  if (m == 0) return out;

  // Canonical edge ids: every directed CSR position maps to the undirected
  // edge id. Ids are assigned in lexicographic (u < v) order.
  std::vector<std::uint32_t> pos_to_eid(g.adjacency().size(), 0);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeIndex p = g.offsets()[u]; p < g.offsets()[u + 1]; ++p) {
      const VertexId v = g.adjacency()[p];
      if (u < v) {
        pos_to_eid[p] = static_cast<std::uint32_t>(out.edges.size());
        out.edges.push_back(Edge{u, v});
      } else {
        // The mirror direction was assigned while iterating v < u.
        const std::size_t q = NeighborPosition(g, v, u);
        pos_to_eid[p] = pos_to_eid[q];
      }
    }
  }

  const auto edge_id = [&](VertexId a, VertexId b) -> std::uint32_t {
    // Search from the lower-degree endpoint.
    if (g.degree(a) > g.degree(b)) std::swap(a, b);
    return pos_to_eid[NeighborPosition(g, a, b)];
  };

  // Triangle supports: iterate the smaller endpoint adjacency, test
  // membership in the larger via binary search.
  std::vector<VertexId> support(m, 0);
  VertexId max_support = 0;
  for (std::uint32_t e = 0; e < m; ++e) {
    VertexId a = out.edges[e].u;
    VertexId b = out.edges[e].v;
    if (g.degree(a) > g.degree(b)) std::swap(a, b);
    VertexId count = 0;
    for (const VertexId w : g.neighbors(a)) {
      if (w == b) continue;
      if (g.HasEdge(b, w)) ++count;
    }
    support[e] = count;
    max_support = std::max(max_support, count);
  }

  // Bucket peel over edges by support (mirror of the core decomposition).
  std::vector<std::uint32_t> bin(static_cast<std::size_t>(max_support) + 2,
                                 0);
  for (std::uint32_t e = 0; e < m; ++e) ++bin[support[e]];
  std::uint32_t start = 0;
  for (VertexId s = 0; s <= max_support; ++s) {
    const std::uint32_t count = bin[s];
    bin[s] = start;
    start += count;
  }
  std::vector<std::uint32_t> order(m);
  std::vector<std::uint32_t> pos(m);
  for (std::uint32_t e = 0; e < m; ++e) {
    pos[e] = bin[support[e]];
    order[pos[e]] = e;
    ++bin[support[e]];
  }
  for (VertexId s = max_support; s >= 1; --s) bin[s] = bin[s - 1];
  bin[0] = 0;

  std::vector<std::uint8_t> alive(m, 1);
  const auto lower_support = [&](std::uint32_t e, VertexId floor_value) {
    if (support[e] <= floor_value) return;
    const VertexId s = support[e];
    const std::uint32_t pe = pos[e];
    const std::uint32_t pw = bin[s];
    const std::uint32_t w = order[pw];
    if (e != w) {
      std::swap(order[pe], order[pw]);
      pos[e] = pw;
      pos[w] = pe;
    }
    ++bin[s];
    --support[e];
  };

  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint32_t e = order[i];
    const VertexId s = support[e];
    out.truss[e] = s + 2;
    out.max_truss = std::max<VertexId>(out.max_truss, s + 2);
    alive[e] = 0;
    // Every still-alive triangle through e loses this edge: decrement the
    // two partner edges (never below s, to keep the peel order intact).
    VertexId a = out.edges[e].u;
    VertexId b = out.edges[e].v;
    if (g.degree(a) > g.degree(b)) std::swap(a, b);
    for (const VertexId w : g.neighbors(a)) {
      if (w == b) continue;
      if (!g.HasEdge(b, w)) continue;
      const std::uint32_t e1 = edge_id(a, w);
      const std::uint32_t e2 = edge_id(b, w);
      if (!alive[e1] || !alive[e2]) continue;
      lower_support(e1, s);
      lower_support(e2, s);
    }
  }
  return out;
}

VertexList MaximalKTruss(const Graph& g, VertexId k) {
  TICL_CHECK(k >= 2);
  const TrussDecompositionResult decomp = TrussDecomposition(g);
  std::vector<std::uint8_t> in_truss(g.num_vertices(), 0);
  for (std::size_t e = 0; e < decomp.edges.size(); ++e) {
    if (decomp.truss[e] >= k) {
      in_truss[decomp.edges[e].u] = 1;
      in_truss[decomp.edges[e].v] = 1;
    }
  }
  VertexList members;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_truss[v]) members.push_back(v);
  }
  return members;
}

std::vector<VertexList> KTrussComponents(const Graph& g, VertexId k) {
  TICL_CHECK(k >= 2);
  const TrussDecompositionResult decomp = TrussDecomposition(g);
  UnionFind uf(g.num_vertices());
  std::vector<std::uint8_t> in_truss(g.num_vertices(), 0);
  for (std::size_t e = 0; e < decomp.edges.size(); ++e) {
    if (decomp.truss[e] >= k) {
      uf.Union(decomp.edges[e].u, decomp.edges[e].v);
      in_truss[decomp.edges[e].u] = 1;
      in_truss[decomp.edges[e].v] = 1;
    }
  }
  // Group members by representative.
  std::vector<std::pair<VertexId, VertexId>> rep_vertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_truss[v]) rep_vertex.emplace_back(uf.Find(v), v);
  }
  std::sort(rep_vertex.begin(), rep_vertex.end());
  std::vector<VertexList> components;
  for (std::size_t i = 0; i < rep_vertex.size();) {
    VertexList component;
    const VertexId rep = rep_vertex[i].first;
    while (i < rep_vertex.size() && rep_vertex[i].first == rep) {
      component.push_back(rep_vertex[i].second);
      ++i;
    }
    components.push_back(std::move(component));
  }
  return components;
}

std::string ValidateKTrussSubgraph(const Graph& g, const VertexList& members,
                                   VertexId k) {
  if (members.size() < 2) return "a k-truss community needs an edge";
  if (!std::is_sorted(members.begin(), members.end())) {
    return "members not sorted";
  }
  const InducedSubgraph sub = ExtractInducedSubgraph(g, members);
  const TrussDecompositionResult decomp = TrussDecomposition(sub.graph);
  UnionFind uf(sub.graph.num_vertices());
  std::vector<std::uint8_t> covered(sub.graph.num_vertices(), 0);
  for (std::size_t e = 0; e < decomp.edges.size(); ++e) {
    if (decomp.truss[e] >= k) {
      uf.Union(decomp.edges[e].u, decomp.edges[e].v);
      covered[decomp.edges[e].u] = 1;
      covered[decomp.edges[e].v] = 1;
    }
  }
  for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    if (!covered[lv]) {
      return "vertex " + std::to_string(sub.to_original[lv]) +
             " is not on any induced truss-" + std::to_string(k) + " edge";
    }
  }
  for (VertexId lv = 1; lv < sub.graph.num_vertices(); ++lv) {
    if (!uf.Connected(0, lv)) {
      return "not connected via truss edges";
    }
  }
  return "";
}

}  // namespace ticl
