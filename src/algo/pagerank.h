// PageRank by power iteration. The paper weights every vertex with its
// PageRank value at damping factor 0.85; this module reproduces that
// weighting from scratch.

#ifndef TICL_ALGO_PAGERANK_H_
#define TICL_ALGO_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace ticl {

struct PageRankOptions {
  /// Damping factor d; the paper's experiments use 0.85.
  double damping = 0.85;
  /// Iteration cap.
  int max_iterations = 100;
  /// L1 convergence threshold between successive iterations.
  double tolerance = 1e-12;
};

struct PageRankResult {
  /// Scores summing to 1 (up to floating error).
  std::vector<double> scores;
  /// Iterations actually performed.
  int iterations = 0;
  /// L1 delta of the final iteration.
  double final_delta = 0.0;
};

/// Computes PageRank on the undirected graph (each undirected edge acts as
/// two directed edges). Mass of degree-0 vertices is redistributed
/// uniformly, the standard dangling-node treatment.
PageRankResult ComputePageRank(const Graph& g,
                               const PageRankOptions& options = {});

}  // namespace ticl

#endif  // TICL_ALGO_PAGERANK_H_
