// FNV-1a 64-bit hashing, shared by the snapshot format (file checksum) and
// the graph fingerprint (cheap identity check between a Graph and a
// CoreIndex built for it). Incremental: feed sections as they stream.

#ifndef TICL_UTIL_FNV1A_H_
#define TICL_UTIL_FNV1A_H_

#include <cstddef>
#include <cstdint>

namespace ticl {

class Fnv1a {
 public:
  void Update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t Digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

inline std::uint64_t Fnv1aHash(const void* data, std::size_t bytes) {
  Fnv1a h;
  h.Update(data, bytes);
  return h.Digest();
}

}  // namespace ticl

#endif  // TICL_UTIL_FNV1A_H_
