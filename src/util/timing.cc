#include "util/timing.h"

namespace ticl {

void WallTimer::Restart() { start_ = std::chrono::steady_clock::now(); }

double WallTimer::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double WallTimer::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

}  // namespace ticl
