#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace ticl {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const { return count_ ? min_ : 0.0; }
double RunningStats::max() const { return count_ ? max_ : 0.0; }
double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  TICL_CHECK(!values.empty());
  TICL_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string FormatWithCommas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace ticl
