// Small numeric-summary helpers shared by graph statistics, generators and
// the benchmark harness.

#ifndef TICL_UTIL_STATS_H_
#define TICL_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ticl {

/// Streaming accumulator for min / max / mean / variance (Welford).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Exact percentile of a sample (nearest-rank). q in [0, 1].
double Percentile(std::vector<double> values, double q);

/// Formats a count with thousands separators, e.g. 1049866 -> "1,049,866".
std::string FormatWithCommas(std::uint64_t value);

/// Formats seconds as an engineering-style string ("12.3 ms", "4.56 s").
std::string FormatSeconds(double seconds);

}  // namespace ticl

#endif  // TICL_UTIL_STATS_H_
