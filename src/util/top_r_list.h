// Bounded "best r items" container.
//
// All top-r searches in the library funnel their candidates through this
// structure. Ordering is by score descending with an explicit 64-bit
// tie-break key (callers pass the community's vertex-set hash), which makes
// result order deterministic even when influence values collide.

#ifndef TICL_UTIL_TOP_R_LIST_H_
#define TICL_UTIL_TOP_R_LIST_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ticl {

template <typename T>
class TopRList {
 public:
  struct Entry {
    double score;
    std::uint64_t tie_break;
    T value;
  };

  /// capacity = r; must be at least 1.
  explicit TopRList(std::size_t capacity) : capacity_(capacity) {
    TICL_CHECK(capacity >= 1);
  }

  /// Strict "a ranks ahead of b" order used throughout.
  static bool Better(double score_a, std::uint64_t tie_a, double score_b,
                     std::uint64_t tie_b) {
    if (score_a != score_b) return score_a > score_b;
    return tie_a < tie_b;
  }

  /// Offers an item. Returns true if it entered the list (possibly evicting
  /// the current worst member).
  bool Insert(double score, std::uint64_t tie_break, T value) {
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{score, tie_break, std::move(value)});
      std::push_heap(entries_.begin(), entries_.end(), HeapCmp);
      return true;
    }
    const Entry& worst = entries_.front();
    if (!Better(score, tie_break, worst.score, worst.tie_break)) return false;
    std::pop_heap(entries_.begin(), entries_.end(), HeapCmp);
    entries_.back() = Entry{score, tie_break, std::move(value)};
    std::push_heap(entries_.begin(), entries_.end(), HeapCmp);
    return true;
  }

  /// True if an item with this (score, tie_break) would enter the list.
  bool WouldInsert(double score, std::uint64_t tie_break) const {
    if (entries_.size() < capacity_) return true;
    const Entry& worst = entries_.front();
    return Better(score, tie_break, worst.score, worst.tie_break);
  }

  /// Score of the current r-th (worst retained) entry, or -inf while the
  /// list holds fewer than r items. This is the pruning threshold f(L_r).
  double Threshold() const {
    if (entries_.size() < capacity_) {
      return -std::numeric_limits<double>::infinity();
    }
    return entries_.front().score;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return entries_.empty(); }

  /// Unordered view of the retained entries (heap order).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Copies the entries sorted best-first.
  std::vector<Entry> SortedDescending() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return Better(a.score, a.tie_break, b.score, b.tie_break);
    });
    return out;
  }

  /// Moves the entries out, sorted best-first; the list becomes empty.
  std::vector<Entry> TakeSortedDescending() {
    std::vector<Entry> out = std::move(entries_);
    entries_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return Better(a.score, a.tie_break, b.score, b.tie_break);
    });
    return out;
  }

 private:
  // Min-heap on (score asc, tie desc) so the front is the worst entry.
  static bool HeapCmp(const Entry& a, const Entry& b) {
    return Better(a.score, a.tie_break, b.score, b.tie_break);
  }

  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace ticl

#endif  // TICL_UTIL_TOP_R_LIST_H_
