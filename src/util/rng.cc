#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace ticl {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashU64(std::uint64_t x) {
  std::uint64_t state = x;
  return SplitMix64(&state);
}

std::uint64_t HashVertexSet(const std::uint32_t* ids, std::size_t n) {
  // Sum + xor of per-element hashes: commutative, so insertion order does
  // not matter; mixing both accumulators keeps collisions rare.
  std::uint64_t sum = 0x12345678abcdef01ULL;
  std::uint64_t xor_acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = HashU64(static_cast<std::uint64_t>(ids[i]) + 1);
    sum += h;
    xor_acc ^= Rotl(h, 17);
  }
  return HashU64(sum ^ Rotl(xor_acc, 29) ^ n);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  TICL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t v = Next();
    if (v >= threshold) return v % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  TICL_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; u1 nudged away from zero so log() is finite.
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return radius * std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::Fork(std::uint64_t stream_id) const {
  return Rng(HashU64(seed_ ^ Rotl(stream_id, 32) ^ 0x5bd1e995c6b3a1f7ULL));
}

}  // namespace ticl
