// Lightweight runtime checks used across the library.
//
// TICL_CHECK is active in all build types: substrate invariants (CSR
// consistency, peel bookkeeping) are cheap relative to the graph work they
// guard and catching a violated invariant beats silently returning a wrong
// community. TICL_DCHECK compiles out of release builds and is meant for
// per-edge / per-vertex hot-loop assertions.

#ifndef TICL_UTIL_CHECK_H_
#define TICL_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TICL_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TICL_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TICL_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TICL_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define TICL_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define TICL_DCHECK(cond) TICL_CHECK(cond)
#endif

#endif  // TICL_UTIL_CHECK_H_
