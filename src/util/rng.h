// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (graph generators, random
// strategies, property tests) takes an explicit seed and derives its stream
// from this generator, so any result in the repository can be reproduced
// bit-for-bit from the recorded seed.

#ifndef TICL_UTIL_RNG_H_
#define TICL_UTIL_RNG_H_

#include <cstdint>

namespace ticl {

/// xoshiro256** seeded via splitmix64. Fast, high-quality, and — unlike
/// std::mt19937 + std::uniform_int_distribution — guaranteed to produce the
/// same stream on every platform and standard library.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances built from the same seed produce
  /// identical streams.
  explicit Rng(std::uint64_t seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t Next();

  /// Returns a uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal variate (Box–Muller; consumes two doubles).
  double NextGaussian();

  /// Derives an independent generator for a named sub-stream. Forking the
  /// same (parent seed, stream id) always yields the same child stream.
  Rng Fork(std::uint64_t stream_id) const;

  /// Fisher–Yates shuffle of [first, first + n).
  template <typename T>
  void Shuffle(T* first, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      T tmp = first[i - 1];
      first[i - 1] = first[j];
      first[j] = tmp;
    }
  }

 private:
  Rng() = default;

  std::uint64_t state_[4] = {0, 0, 0, 0};
  std::uint64_t seed_ = 0;
};

/// splitmix64 single step — also useful as a cheap integer hash.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Hashes a 64-bit value (stateless splitmix64 finalizer).
std::uint64_t HashU64(std::uint64_t x);

/// Order-independent hash of a set of 32-bit ids. Used to deduplicate
/// candidate communities: two equal vertex sets hash equally regardless of
/// the order their members are listed in.
std::uint64_t HashVertexSet(const std::uint32_t* ids, std::size_t n);

}  // namespace ticl

#endif  // TICL_UTIL_RNG_H_
