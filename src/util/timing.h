// Wall-clock timing helpers used by solvers (per-query stats) and benches.

#ifndef TICL_UTIL_TIMING_H_
#define TICL_UTIL_TIMING_H_

#include <chrono>

namespace ticl {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ticl

#endif  // TICL_UTIL_TIMING_H_
