#include "gen/erdos_renyi.h"

#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

Graph GenerateErdosRenyi(VertexId n, std::uint64_t m, std::uint64_t seed) {
  GraphBuilder builder;
  builder.SetNumVertices(n);
  if (n >= 2) {
    const std::uint64_t max_edges =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (m > max_edges) m = max_edges;
    TICL_CHECK_MSG(m <= max_edges / 2 + 8 || n < 64,
                   "dense G(n,m) would make rejection sampling slow; "
                   "use a smaller m");
    Rng rng(seed);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(m) * 2);
    while (seen.size() < m) {
      auto u = static_cast<VertexId>(rng.NextBounded(n));
      auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
      if (seen.insert(key).second) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace ticl
