// Named stand-ins for the paper's SNAP datasets (Table III).
//
// The originals (Email, DBLP, Youtube, Orkut, LiveJournal, FriendSter) are
// multi-GB downloads; the benchmark harness instead generates seeded
// Chung–Lu power-law graphs whose relative sizes and densities mirror the
// originals, scaled to a laptop/CI budget. `scale` multiplies vertex counts
// (TICL_SCALE env var in the bench harness); seeds are fixed so every run
// sees identical graphs.

#ifndef TICL_GEN_DATASET_SUITE_H_
#define TICL_GEN_DATASET_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ticl {

enum class StandIn {
  kEmail,
  kDblp,
  kYoutube,
  kOrkut,
  kLiveJournal,
  kFriendster,
};

/// All stand-ins, in the paper's Table III order.
const std::vector<StandIn>& AllStandIns();

/// "email", "dblp", ... (lower-case, benchmark-label friendly).
std::string StandInName(StandIn dataset);

struct DatasetSpec {
  std::string name;
  VertexId num_vertices = 0;     // after scaling
  double average_degree = 0.0;   // mirrors the original's 2m/n
  double gamma = 2.5;            // power-law exponent
  /// True for the paper's "large" group (Orkut, LiveJournal, FriendSter):
  /// the paper defaults k = 40 there and k = 4 on the small group.
  bool large = false;
  std::uint64_t seed = 0;
  /// Original SNAP statistics, for the Table III comparison column.
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
};

/// Spec for a stand-in at the given scale (scale > 0; 1.0 = defaults).
DatasetSpec GetDatasetSpec(StandIn dataset, double scale);

/// Generates the stand-in topology (no weights; callers typically install
/// PageRank weights to match the paper's setup).
Graph GenerateStandIn(StandIn dataset, double scale);

}  // namespace ticl

#endif  // TICL_GEN_DATASET_SUITE_H_
