#include "gen/planted_communities.h"

#include "gen/chung_lu.h"
#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

PlantedCommunities GeneratePlantedCommunities(
    const PlantedCommunitiesOptions& options) {
  TICL_CHECK(options.community_size >= 2);
  TICL_CHECK(options.intra_probability > 0.0 &&
             options.intra_probability <= 1.0);
  Rng rng(options.seed);

  // Background topology.
  ChungLuOptions bg;
  bg.num_vertices = options.background_vertices;
  bg.target_average_degree = options.background_average_degree;
  bg.gamma = options.background_gamma;
  bg.seed = rng.Fork(1).Next();
  const Graph background = GenerateChungLu(bg);

  const VertexId total =
      options.background_vertices +
      options.num_communities * options.community_size;
  GraphBuilder builder;
  builder.SetNumVertices(total);
  for (VertexId u = 0; u < background.num_vertices(); ++u) {
    for (const VertexId v : background.neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }

  PlantedCommunities out;
  Rng intra_rng = rng.Fork(2);
  Rng attach_rng = rng.Fork(3);
  VertexId next_id = options.background_vertices;
  for (std::uint32_t c = 0; c < options.num_communities; ++c) {
    VertexList members;
    for (VertexId i = 0; i < options.community_size; ++i) {
      members.push_back(next_id++);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (intra_rng.NextBernoulli(options.intra_probability)) {
          builder.AddEdge(members[i], members[j]);
        }
      }
    }
    if (options.background_vertices > 0) {
      for (std::uint32_t e = 0; e < options.attachment_edges; ++e) {
        const auto bg_v = static_cast<VertexId>(
            attach_rng.NextBounded(options.background_vertices));
        const VertexId member =
            members[attach_rng.NextBounded(members.size())];
        builder.AddEdge(member, bg_v);
      }
    }
    out.planted.push_back(std::move(members));
  }

  out.graph = builder.Build();

  // Weights: low for background, boosted for planted members.
  Rng weight_rng = rng.Fork(4);
  std::vector<Weight> weights(total);
  for (VertexId v = 0; v < total; ++v) weights[v] = weight_rng.NextDouble();
  for (const VertexList& block : out.planted) {
    for (const VertexId v : block) weights[v] += options.weight_boost;
  }
  out.graph.SetWeights(std::move(weights));
  return out;
}

}  // namespace ticl
