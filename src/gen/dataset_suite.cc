#include "gen/dataset_suite.h"

#include <cmath>

#include "gen/chung_lu.h"
#include "util/check.h"

namespace ticl {

const std::vector<StandIn>& AllStandIns() {
  static const std::vector<StandIn> kAll = {
      StandIn::kEmail,       StandIn::kDblp,        StandIn::kYoutube,
      StandIn::kOrkut,       StandIn::kLiveJournal, StandIn::kFriendster};
  return kAll;
}

std::string StandInName(StandIn dataset) {
  switch (dataset) {
    case StandIn::kEmail:
      return "email";
    case StandIn::kDblp:
      return "dblp";
    case StandIn::kYoutube:
      return "youtube";
    case StandIn::kOrkut:
      return "orkut";
    case StandIn::kLiveJournal:
      return "livejournal";
    case StandIn::kFriendster:
      return "friendster";
  }
  TICL_CHECK_MSG(false, "unknown stand-in");
  return "";
}

DatasetSpec GetDatasetSpec(StandIn dataset, double scale) {
  TICL_CHECK(scale > 0.0);
  DatasetSpec spec;
  spec.name = StandInName(dataset);
  // Baseline (scale = 1) sizes keep the full bench suite in a minutes-level
  // budget on a 2-core box while preserving the original ordering by n and
  // by density. Average degree and the Orkut/Friendster density spike come
  // straight from Table III of the paper.
  switch (dataset) {
    case StandIn::kEmail:
      spec.num_vertices = 3000;
      spec.average_degree = 10.0;
      spec.gamma = 2.5;
      spec.large = false;
      spec.seed = 0xE3A11;
      spec.paper_vertices = 36692;
      spec.paper_edges = 183831;
      break;
    case StandIn::kDblp:
      spec.num_vertices = 8000;
      spec.average_degree = 6.6;
      spec.gamma = 2.3;
      spec.large = false;
      spec.seed = 0xDB1B;
      spec.paper_vertices = 317080;
      spec.paper_edges = 1049866;
      break;
    case StandIn::kYoutube:
      spec.num_vertices = 14000;
      spec.average_degree = 5.3;
      spec.gamma = 2.2;
      spec.large = false;
      spec.seed = 0x107BE;
      spec.paper_vertices = 1134890;
      spec.paper_edges = 2987624;
      break;
    case StandIn::kOrkut:
      spec.num_vertices = 9000;
      spec.average_degree = 76.0;
      spec.gamma = 2.4;
      spec.large = true;
      spec.seed = 0x0124;
      spec.paper_vertices = 3072441;
      spec.paper_edges = 117185083;
      break;
    case StandIn::kLiveJournal:
      spec.num_vertices = 16000;
      spec.average_degree = 17.3;
      spec.gamma = 2.3;
      spec.large = true;
      spec.seed = 0x11FE;
      spec.paper_vertices = 3997962;
      spec.paper_edges = 34681189;
      break;
    case StandIn::kFriendster:
      spec.num_vertices = 20000;
      spec.average_degree = 55.0;
      spec.gamma = 2.5;
      spec.large = true;
      spec.seed = 0xF51E;
      spec.paper_vertices = 65608366;
      spec.paper_edges = 1806067135;
      break;
  }
  spec.num_vertices = static_cast<VertexId>(
      std::llround(static_cast<double>(spec.num_vertices) * scale));
  if (spec.num_vertices < 16) spec.num_vertices = 16;
  return spec;
}

Graph GenerateStandIn(StandIn dataset, double scale) {
  const DatasetSpec spec = GetDatasetSpec(dataset, scale);
  ChungLuOptions options;
  options.num_vertices = spec.num_vertices;
  options.target_average_degree = spec.average_degree;
  options.gamma = spec.gamma;
  options.seed = spec.seed;
  return GenerateChungLu(options);
}

}  // namespace ticl
