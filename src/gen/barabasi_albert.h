// Barabási–Albert preferential attachment: each arriving vertex attaches to
// `edges_per_vertex` existing vertices chosen proportionally to degree.
// Produces power-law degree tails with guaranteed connectivity.

#ifndef TICL_GEN_BARABASI_ALBERT_H_
#define TICL_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/graph.h"

namespace ticl {

/// Generates a BA graph with n vertices. The first
/// `edges_per_vertex + 1` vertices form a clique seed. Requires
/// n > edges_per_vertex >= 1. Deterministic in `seed`.
Graph GenerateBarabasiAlbert(VertexId n, VertexId edges_per_vertex,
                             std::uint64_t seed);

}  // namespace ticl

#endif  // TICL_GEN_BARABASI_ALBERT_H_
