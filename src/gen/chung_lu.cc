#include "gen/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

Graph GenerateChungLu(const ChungLuOptions& options) {
  const VertexId n = options.num_vertices;
  TICL_CHECK(options.gamma > 2.0 && options.gamma < 3.0);
  TICL_CHECK(options.target_average_degree > 0.0);
  GraphBuilder builder;
  builder.SetNumVertices(n);
  if (n < 2) return builder.Build();

  // Power-law expected-degree sequence: theta_i ~ (i + i0)^(-1/(gamma-1)),
  // shifted so the maximum expected degree stays near sqrt(theta_sum)
  // (keeps p_uv = theta_u * theta_v / sum <= 1 approximately valid).
  const double exponent = -1.0 / (options.gamma - 1.0);
  std::vector<double> theta(n);
  double theta_sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    theta[i] = std::pow(static_cast<double>(i) + 1.0, exponent);
    theta_sum += theta[i];
  }
  // Scale so the sum of expected degrees is n * target_average_degree.
  const double scale =
      static_cast<double>(n) * options.target_average_degree / theta_sum;
  double cap_sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    theta[i] *= scale;
    cap_sum += theta[i];
  }

  // Cumulative distribution for endpoint sampling.
  std::vector<double> cumulative(n);
  double acc = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    acc += theta[i];
    cumulative[i] = acc;
  }
  const double total = acc;

  Rng rng(options.seed);
  const auto sample_endpoint = [&]() -> VertexId {
    const double x = rng.NextDouble() * total;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), x);
    return static_cast<VertexId>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(n) - 1));
  };

  // Sample m = cap_sum / 2 edges (expected-degree bookkeeping), dropping
  // self-loops and duplicates.
  const auto target_edges = static_cast<std::uint64_t>(cap_sum / 2.0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target_edges) * 2);
  for (std::uint64_t e = 0; e < target_edges; ++e) {
    VertexId u = sample_endpoint();
    VertexId v = sample_endpoint();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace ticl
