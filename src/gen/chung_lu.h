// Chung–Lu random graphs with power-law expected degrees.
//
// This is the stand-in model for the paper's SNAP datasets: the paper's own
// complexity analysis (§IV, "Power-Law Graph") assumes degree distribution
// P(k) ~ k^-gamma with 2 < gamma < 3, which is exactly what this generator
// produces. Endpoints of each sampled edge are drawn proportionally to a
// power-law weight sequence; duplicates and self-loops are discarded.

#ifndef TICL_GEN_CHUNG_LU_H_
#define TICL_GEN_CHUNG_LU_H_

#include <cstdint>

#include "graph/graph.h"

namespace ticl {

struct ChungLuOptions {
  VertexId num_vertices = 0;
  /// Target average degree (2m/n). Realized value is slightly lower because
  /// duplicate samples are discarded.
  double target_average_degree = 8.0;
  /// Power-law exponent, 2 < gamma < 3 per the paper's model.
  double gamma = 2.5;
  std::uint64_t seed = 0;
};

Graph GenerateChungLu(const ChungLuOptions& options);

}  // namespace ticl

#endif  // TICL_GEN_CHUNG_LU_H_
