// Synthetic co-authorship network in the shape of the paper's Aminer case
// study (Fig. 14): five research fields, dense research groups inside each
// field, sparse cross-group and cross-field collaborations, and
// citation-metric vertex weights (h-index / g-index / i10-index analogues).
//
// The real Aminer dump is not redistributable here; this generator plants
// the same recoverable structure — labelled research groups whose weight
// profiles separate the behaviour of min / avg / sum — with ground-truth
// labels attached, which is exactly what the case study needs.

#ifndef TICL_GEN_COAUTHOR_NETWORK_H_
#define TICL_GEN_COAUTHOR_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ticl {

/// Which citation metric the vertex weights emulate. The paper's case study
/// observes that min pairs well with i10 while avg pairs well with g-index.
enum class CitationMetric {
  kHIndex,
  kGIndex,
  kI10Index,
};

std::string CitationMetricName(CitationMetric metric);

struct CoauthorNetworkOptions {
  std::uint32_t num_fields = 5;
  std::uint32_t groups_per_field = 8;
  VertexId min_group_size = 5;
  VertexId max_group_size = 12;
  /// Collaboration probability inside a research group.
  double intra_group_probability = 0.85;
  /// Cross-group collaborations per group (same field).
  std::uint32_t cross_group_edges = 3;
  /// Cross-field bridge collaborations in total.
  std::uint32_t cross_field_edges = 40;
  /// Fraction of each group that are senior researchers (high metrics);
  /// the rest are "freshly graduated" juniors per the paper's §I example.
  double senior_fraction = 0.5;
  CitationMetric metric = CitationMetric::kHIndex;
  std::uint64_t seed = 0;
};

struct CoauthorNetwork {
  Graph graph;  // weights installed (citation metric values)
  std::vector<std::string> names;      // per vertex
  std::vector<std::uint32_t> field;    // per vertex
  std::vector<std::uint32_t> group;    // per vertex, globally unique id
  std::vector<std::string> field_names;
  /// Ground-truth group member lists (sorted), indexed by group id.
  std::vector<VertexList> group_members;
};

CoauthorNetwork GenerateCoauthorNetwork(const CoauthorNetworkOptions& options);

}  // namespace ticl

#endif  // TICL_GEN_COAUTHOR_NETWORK_H_
