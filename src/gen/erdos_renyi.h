// Uniform random graph G(n, m): m distinct edges sampled uniformly from all
// unordered pairs. Baseline topology for tests and ablations.

#ifndef TICL_GEN_ERDOS_RENYI_H_
#define TICL_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/graph.h"

namespace ticl {

/// Generates G(n, m). `m` is clamped to n*(n-1)/2. Deterministic in `seed`.
Graph GenerateErdosRenyi(VertexId n, std::uint64_t m, std::uint64_t seed);

}  // namespace ticl

#endif  // TICL_GEN_ERDOS_RENYI_H_
