#include "gen/barabasi_albert.h"

#include <vector>

#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

Graph GenerateBarabasiAlbert(VertexId n, VertexId edges_per_vertex,
                             std::uint64_t seed) {
  TICL_CHECK(edges_per_vertex >= 1);
  TICL_CHECK(n > edges_per_vertex);
  Rng rng(seed);
  GraphBuilder builder;
  builder.SetNumVertices(n);

  // endpoint list: every edge contributes both endpoints, so sampling a
  // uniform element is degree-proportional sampling.
  std::vector<VertexId> endpoints;
  const VertexId seed_size = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<VertexId> targets(edges_per_vertex);
  for (VertexId v = seed_size; v < n; ++v) {
    // Sample edges_per_vertex distinct targets (retry on collision).
    std::size_t filled = 0;
    while (filled < edges_per_vertex) {
      const VertexId candidate =
          endpoints[rng.NextBounded(endpoints.size())];
      bool duplicate = false;
      for (std::size_t i = 0; i < filled; ++i) {
        if (targets[i] == candidate) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) targets[filled++] = candidate;
    }
    for (std::size_t i = 0; i < filled; ++i) {
      builder.AddEdge(v, targets[i]);
      endpoints.push_back(v);
      endpoints.push_back(targets[i]);
    }
  }
  return builder.Build();
}

}  // namespace ticl
