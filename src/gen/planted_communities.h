// Planted-community workloads with known ground truth.
//
// Effectiveness experiments (paper Figs. 12–13) and the property tests need
// graphs where the best influential communities are known by construction:
// dense high-weight blocks embedded in a sparse background.

#ifndef TICL_GEN_PLANTED_COMMUNITIES_H_
#define TICL_GEN_PLANTED_COMMUNITIES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ticl {

struct PlantedCommunitiesOptions {
  /// Background vertices (Chung–Lu power law).
  VertexId background_vertices = 1000;
  double background_average_degree = 6.0;
  double background_gamma = 2.5;
  /// Number of planted blocks and members per block.
  std::uint32_t num_communities = 5;
  VertexId community_size = 10;
  /// Intra-block edge probability (1.0 = clique).
  double intra_probability = 1.0;
  /// Random edges attaching each block to the background.
  std::uint32_t attachment_edges = 2;
  /// Weights: background ~ Uniform[0, 1); planted members get
  /// Uniform[0, 1) + weight_boost.
  double weight_boost = 10.0;
  std::uint64_t seed = 0;
};

struct PlantedCommunities {
  Graph graph;  // weights installed
  /// Ground-truth member lists (sorted), one per planted block. Vertices
  /// [background_vertices, n) are the planted ones.
  std::vector<VertexList> planted;
};

PlantedCommunities GeneratePlantedCommunities(
    const PlantedCommunitiesOptions& options);

}  // namespace ticl

#endif  // TICL_GEN_PLANTED_COMMUNITIES_H_
