#include "gen/coauthor_network.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.h"
#include "util/check.h"
#include "util/rng.h"

namespace ticl {

namespace {

constexpr const char* kFieldNames[] = {
    "Data Mining", "Medical Informatics", "Theory", "Visualization",
    "Database"};

constexpr const char* kSurnames[] = {
    "Abel",    "Baker",  "Chen",    "Dumas",   "Egan",    "Farrell",
    "Gupta",   "Huang",  "Ishida",  "Jansen",  "Kim",     "Laurent",
    "Mehta",   "Nakano", "Olsen",   "Petrov",  "Quinn",   "Rossi",
    "Sato",    "Tanaka", "Ullman",  "Varga",   "Weber",   "Xu",
    "Yilmaz",  "Zhang",  "Adler",   "Bauer",   "Costa",   "Dietrich",
    "Eriksen", "Fischer", "Garcia", "Hoffman", "Iyer",    "Johnson",
    "Klein",   "Lopez",  "Moreau",  "Novak",   "Oliveira", "Park"};

constexpr char kInitials[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

double SampleMetric(CitationMetric metric, bool senior, Rng* rng) {
  // Seniors draw from a heavy-tailed (log-normal) citation profile; juniors
  // sit near the bottom — the "freshly graduated students joined as new
  // professors" situation from the paper's §I research-group example.
  const double base = senior ? std::exp(rng->NextGaussian() * 0.5 + 3.0)
                             : std::exp(rng->NextGaussian() * 0.4 + 1.0);
  switch (metric) {
    case CitationMetric::kHIndex:
      return std::floor(base);
    case CitationMetric::kGIndex:
      // g >= h in practice; roughly 1.7x with noise.
      return std::floor(base * (1.5 + 0.4 * rng->NextDouble()));
    case CitationMetric::kI10Index:
      // i10 grows super-linearly in h for productive researchers.
      return std::floor(std::pow(base, 1.15));
  }
  TICL_CHECK_MSG(false, "unknown citation metric");
  return 0.0;
}

}  // namespace

std::string CitationMetricName(CitationMetric metric) {
  switch (metric) {
    case CitationMetric::kHIndex:
      return "h-index";
    case CitationMetric::kGIndex:
      return "g-index";
    case CitationMetric::kI10Index:
      return "i10-index";
  }
  TICL_CHECK_MSG(false, "unknown citation metric");
  return "";
}

CoauthorNetwork GenerateCoauthorNetwork(
    const CoauthorNetworkOptions& options) {
  TICL_CHECK(options.num_fields >= 1);
  TICL_CHECK(options.groups_per_field >= 1);
  TICL_CHECK(options.min_group_size >= 2);
  TICL_CHECK(options.min_group_size <= options.max_group_size);
  Rng rng(options.seed);
  Rng size_rng = rng.Fork(1);
  Rng edge_rng = rng.Fork(2);
  Rng weight_rng = rng.Fork(3);
  Rng name_rng = rng.Fork(4);

  CoauthorNetwork out;
  for (std::uint32_t f = 0; f < options.num_fields; ++f) {
    const std::size_t pool = sizeof(kFieldNames) / sizeof(kFieldNames[0]);
    std::string name = kFieldNames[f % pool];
    if (f >= pool) {
      name += ' ';
      name += std::to_string(f / pool + 1);
    }
    out.field_names.push_back(std::move(name));
  }

  // Lay out the groups.
  VertexId next_id = 0;
  for (std::uint32_t f = 0; f < options.num_fields; ++f) {
    for (std::uint32_t gi = 0; gi < options.groups_per_field; ++gi) {
      const auto size = static_cast<VertexId>(size_rng.NextInRange(
          options.min_group_size, options.max_group_size));
      VertexList members;
      for (VertexId i = 0; i < size; ++i) {
        members.push_back(next_id++);
        out.field.push_back(f);
        out.group.push_back(static_cast<std::uint32_t>(
            out.group_members.size()));
      }
      out.group_members.push_back(std::move(members));
    }
  }
  const VertexId n = next_id;

  GraphBuilder builder;
  builder.SetNumVertices(n);
  // Intra-group collaborations. A spanning path guarantees each group is
  // connected even at low intra-group probability.
  for (const VertexList& members : out.group_members) {
    for (std::size_t i = 0; i + 1 < members.size(); ++i) {
      builder.AddEdge(members[i], members[i + 1]);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (edge_rng.NextBernoulli(options.intra_group_probability)) {
          builder.AddEdge(members[i], members[j]);
        }
      }
    }
  }
  // Cross-group (same field) collaborations.
  const std::uint32_t groups_total =
      options.num_fields * options.groups_per_field;
  for (std::uint32_t g = 0; g < groups_total; ++g) {
    const std::uint32_t f = g / options.groups_per_field;
    for (std::uint32_t e = 0; e < options.cross_group_edges; ++e) {
      const std::uint32_t other =
          f * options.groups_per_field +
          static_cast<std::uint32_t>(
              edge_rng.NextBounded(options.groups_per_field));
      if (other == g) continue;
      const VertexList& a = out.group_members[g];
      const VertexList& b = out.group_members[other];
      builder.AddEdge(a[edge_rng.NextBounded(a.size())],
                      b[edge_rng.NextBounded(b.size())]);
    }
  }
  // Cross-field bridges.
  if (options.num_fields > 1) {
    for (std::uint32_t e = 0; e < options.cross_field_edges; ++e) {
      const auto u = static_cast<VertexId>(edge_rng.NextBounded(n));
      const auto v = static_cast<VertexId>(edge_rng.NextBounded(n));
      if (out.field[u] != out.field[v]) builder.AddEdge(u, v);
    }
  }
  out.graph = builder.Build();

  // Citation-metric weights: each group gets a senior cohort with strong
  // metrics and a junior cohort near the floor.
  std::vector<Weight> weights(n, 0.0);
  for (const VertexList& members : out.group_members) {
    const auto seniors = static_cast<std::size_t>(
        std::ceil(static_cast<double>(members.size()) *
                  options.senior_fraction));
    for (std::size_t i = 0; i < members.size(); ++i) {
      const bool senior = i < seniors;
      weights[members[i]] =
          SampleMetric(options.metric, senior, &weight_rng);
    }
  }
  out.graph.SetWeights(std::move(weights));

  // Names: "X. Surname" plus a disambiguating suffix when the pool repeats.
  const std::size_t surname_pool = sizeof(kSurnames) / sizeof(kSurnames[0]);
  const std::size_t initial_pool = sizeof(kInitials) - 1;
  out.names.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    const char initial =
        kInitials[name_rng.NextBounded(initial_pool)];
    const std::string surname =
        kSurnames[name_rng.NextBounded(surname_pool)];
    out.names[v] = std::string(1, initial) + ". " + surname + " [" +
                   std::to_string(v) + "]";
  }
  return out;
}

}  // namespace ticl
