#include "serve/protocol.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ticl {

namespace {

// -- Tokenizer --------------------------------------------------------------
//
// Request lines are flat objects, but "flat" is a promise about the
// sender, not the attacker: the scanner below accepts exactly one JSON
// object per line, rejects structural damage (unterminated strings,
// missing colons, trailing garbage, duplicate keys) and records each
// value's type so the field readers can distinguish "absent" from
// "present but wrong" — the old substring scan silently defaulted both.

struct JsonValue {
  enum class Type { kString, kNumber, kBool, kNull, kComposite };
  Type type = Type::kNull;
  std::string string_value;  // decoded, kString only
  double number_value = 0.0;
  bool bool_value = false;
  /// Exact slice of the input line, usable for verbatim echo.
  std::string raw;
};

struct Field {
  std::string key;
  JsonValue value;
};

class Scanner {
 public:
  Scanner(const std::string& line, std::string* error)
      : line_(line), error_(error) {}

  bool Scan(std::vector<Field>* fields) {
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return CheckTrailing();
    }
    while (true) {
      SkipSpace();
      Field field;
      if (Peek() != '"') return Fail("expected a quoted key");
      std::string raw_unused;
      if (!ParseString(&field.key, &raw_unused)) return false;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':' after key");
      SkipSpace();
      if (!ParseValue(&field.value)) return false;
      for (const Field& prior : *fields) {
        if (prior.key == field.key) {
          return Fail("duplicate key \"" + field.key + "\"");
        }
      }
      fields->push_back(std::move(field));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return CheckTrailing();
      }
      return Fail("expected ',' or '}'");
    }
  }

 private:
  char Peek() const { return pos_ < line_.size() ? line_[pos_] : '\0'; }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  void SkipSpace() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t' || line_[pos_] == '\r' ||
            line_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    *error_ = message;
    return false;
  }

  bool CheckTrailing() {
    SkipSpace();
    if (pos_ != line_.size()) return Fail("trailing garbage after '}'");
    return true;
  }

  static void AppendUtf8(std::uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseHex4(std::uint32_t* out) {
    if (pos_ + 4 > line_.size()) return Fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = line_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  /// At the opening quote. Decodes into *out, records the raw slice
  /// (quotes included) into *raw.
  bool ParseString(std::string* out, std::string* raw) {
    const std::size_t start = pos_;
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= line_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(line_[pos_]);
      if (c == '"') {
        ++pos_;
        *raw = line_.substr(start, pos_ - start);
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= line_.size()) return Fail("unterminated string");
      const char esc = line_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= line_.size() || line_[pos_] != '\\' ||
                line_[pos_ + 1] != 'u') {
              return Fail("lone surrogate in \\u escape");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("lone surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone surrogate in \\u escape");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("invalid escape in string");
      }
    }
  }

  /// Validates the JSON number grammar before handing the slice to
  /// strtod — strtod alone accepts "inf", "0x10" and similar non-JSON.
  bool ParseNumber(JsonValue* value) {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Fail("malformed number");
    }
    if (Peek() == '.') {
      ++pos_;
      if (!(Peek() >= '0' && Peek() <= '9')) return Fail("malformed number");
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!(Peek() >= '0' && Peek() <= '9')) return Fail("malformed number");
      while (Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    value->type = JsonValue::Type::kNumber;
    value->raw = line_.substr(start, pos_ - start);
    value->number_value = std::strtod(value->raw.c_str(), nullptr);
    return true;
  }

  bool ConsumeLiteral(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (line_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  /// Skips a nested array/object with string-aware bracket matching. The
  /// value is kept only as a raw slice — no known field takes one, but an
  /// unknown field carrying one must not desynchronize the scan.
  bool ParseComposite(JsonValue* value) {
    const std::size_t start = pos_;
    std::vector<char> stack;
    do {
      if (pos_ >= line_.size()) return Fail("unterminated array or object");
      const char c = line_[pos_];
      if (c == '[' || c == '{') {
        stack.push_back(c == '[' ? ']' : '}');
        ++pos_;
      } else if (c == ']' || c == '}') {
        if (stack.empty() || stack.back() != c) {
          return Fail("mismatched brackets");
        }
        stack.pop_back();
        ++pos_;
      } else if (c == '"') {
        std::string decoded, raw;
        if (!ParseString(&decoded, &raw)) return false;
      } else {
        ++pos_;
      }
    } while (!stack.empty());
    value->type = JsonValue::Type::kComposite;
    value->raw = line_.substr(start, pos_ - start);
    return true;
  }

  bool ParseValue(JsonValue* value) {
    const char c = Peek();
    if (c == '"') {
      value->type = JsonValue::Type::kString;
      return ParseString(&value->string_value, &value->raw);
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(value);
    if (c == 't' || c == 'f') {
      const bool truth = c == 't';
      if (!ConsumeLiteral(truth ? "true" : "false")) {
        return Fail("malformed value");
      }
      value->type = JsonValue::Type::kBool;
      value->bool_value = truth;
      value->raw = truth ? "true" : "false";
      return true;
    }
    if (c == 'n') {
      if (!ConsumeLiteral("null")) return Fail("malformed value");
      value->type = JsonValue::Type::kNull;
      value->raw = "null";
      return true;
    }
    if (c == '[' || c == '{') return ParseComposite(value);
    return Fail("malformed value");
  }

  const std::string& line_;
  std::string* error_;
  std::size_t pos_ = 0;
};

// -- Field readers ----------------------------------------------------------

/// null-valued fields count as absent: {"s": null} means "no size limit",
/// matching a sender that drops the key entirely.
const JsonValue* Find(const std::vector<Field>& fields,
                      const std::string& key) {
  for (const Field& field : fields) {
    if (field.key == key) {
      return field.value.type == JsonValue::Type::kNull ? nullptr
                                                        : &field.value;
    }
  }
  return nullptr;
}

/// Optional non-negative integer field. JSON has one number type, so 4.0
/// is accepted but 4.5, -1, 1e12 and "4" are type/range errors.
bool ReadU32(const std::vector<Field>& fields, const std::string& key,
             std::uint32_t* out, std::string* error) {
  const JsonValue* value = Find(fields, key);
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kNumber) {
    *error = "\"" + key + "\" must be a number";
    return false;
  }
  const double number = value->number_value;
  if (!(number >= 0.0) || number > 4294967295.0 ||
      number != std::floor(number)) {
    *error = "\"" + key + "\" must be an integer in [0, 4294967295]";
    return false;
  }
  *out = static_cast<std::uint32_t>(number);
  return true;
}

bool ReadFinite(const std::vector<Field>& fields, const std::string& key,
                double* out, std::string* error) {
  const JsonValue* value = Find(fields, key);
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kNumber ||
      !std::isfinite(value->number_value)) {
    *error = "\"" + key + "\" must be a finite number";
    return false;
  }
  *out = value->number_value;
  return true;
}

bool ReadBool(const std::vector<Field>& fields, const std::string& key,
              bool* out, std::string* error) {
  const JsonValue* value = Find(fields, key);
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kBool) {
    *error = "\"" + key + "\" must be true or false";
    return false;
  }
  *out = value->bool_value;
  return true;
}

bool ReadString(const std::vector<Field>& fields, const std::string& key,
                std::string* out, std::string* error) {
  const JsonValue* value = Find(fields, key);
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kString) {
    *error = "\"" + key + "\" must be a string";
    return false;
  }
  *out = value->string_value;
  return true;
}

bool ParseQueryFields(const std::vector<Field>& fields, Query* query,
                      std::string* error) {
  if (!ReadU32(fields, "k", &query->k, error)) return false;
  if (!ReadU32(fields, "r", &query->r, error)) return false;
  if (!ReadU32(fields, "s", &query->size_limit, error)) return false;
  if (!ReadBool(fields, "non_overlapping", &query->non_overlapping, error)) {
    return false;
  }
  double alpha = 1.0;
  double beta = 1.0;
  if (!ReadFinite(fields, "alpha", &alpha, error)) return false;
  if (!ReadFinite(fields, "beta", &beta, error)) return false;
  std::string f = "sum";
  if (!ReadString(fields, "f", &f, error)) return false;
  if (f == "min") {
    query->aggregation = AggregationSpec::Min();
  } else if (f == "max") {
    query->aggregation = AggregationSpec::Max();
  } else if (f == "sum") {
    query->aggregation = AggregationSpec::Sum();
  } else if (f == "sum-surplus") {
    query->aggregation = AggregationSpec::SumSurplus(alpha);
  } else if (f == "avg") {
    query->aggregation = AggregationSpec::Avg();
  } else if (f == "weight-density") {
    query->aggregation = AggregationSpec::WeightDensity(beta);
  } else if (f == "balanced-density") {
    query->aggregation = AggregationSpec::BalancedDensity();
  } else {
    *error = "unknown aggregation: " + f;
    return false;
  }
  return true;
}

bool ParseAdminFields(const std::vector<Field>& fields,
                      ParsedRequest* request, std::string* error) {
  const JsonValue* verb = Find(fields, "admin");
  if (verb->type != JsonValue::Type::kString) {
    *error = "\"admin\" must be a string";
    return false;
  }
  request->kind = ParsedRequest::Kind::kAdmin;
  request->admin_verb = verb->string_value;
  if (request->admin_verb == "apply_delta") {
    if (!ReadString(fields, "path", &request->admin_path, error)) return false;
    if (request->admin_path.empty()) {
      *error = "admin apply_delta needs a non-empty \"path\"";
      return false;
    }
    return true;
  }
  if (request->admin_verb == "stats" || request->admin_verb == "drain" ||
      request->admin_verb == "ping") {
    return true;
  }
  *error = "unknown admin command \"" + request->admin_verb +
           "\" (expected apply_delta, stats, drain or ping)";
  return false;
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

bool ParseRequestLine(const std::string& line, std::size_t line_number,
                      ParsedRequest* request, std::string* error) {
  *request = ParsedRequest{};
  request->id_json = std::to_string(line_number);
  if (line.size() > kMaxRequestLineBytes) {
    *error = "line exceeds " + std::to_string(kMaxRequestLineBytes) +
             " bytes";
    return false;
  }
  std::vector<Field> fields;
  Scanner scanner(line, error);
  if (!scanner.Scan(&fields)) return false;

  // Echoing a composite id back would be legal JSON, but the id exists to
  // be a cheap correlation token; keep the historical contract (scalar or
  // synthesized line number).
  for (const Field& field : fields) {
    if (field.key != "id") continue;
    if (field.value.type != JsonValue::Type::kComposite &&
        field.value.type != JsonValue::Type::kNull) {
      request->id_json = field.value.raw;
    }
    break;
  }

  if (Find(fields, "admin") != nullptr) {
    return ParseAdminFields(fields, request, error);
  }
  request->kind = ParsedRequest::Kind::kQuery;
  return ParseQueryFields(fields, &request->query, error);
}

bool ParseQueryLine(const std::string& line, std::size_t line_number,
                    Query* query, std::string* id_json, std::string* error) {
  ParsedRequest request;
  const bool ok = ParseRequestLine(line, line_number, &request, error);
  *id_json = request.id_json;
  if (!ok) return false;
  if (request.kind != ParsedRequest::Kind::kQuery) {
    *error = "admin commands are not supported on this front end";
    return false;
  }
  *query = request.query;
  return true;
}

std::string FormatCommunitiesJson(const SearchResult& result) {
  std::string out = "[";
  char buffer[64];
  for (std::size_t i = 0; i < result.communities.size(); ++i) {
    const Community& c = result.communities[i];
    if (i != 0) out += ", ";
    std::snprintf(buffer, sizeof(buffer), "{\"influence\": %.17g, ",
                  c.influence);
    out += buffer;
    out += "\"members\": [";
    for (std::size_t j = 0; j < c.members.size(); ++j) {
      if (j != 0) out += ", ";
      std::snprintf(buffer, sizeof(buffer), "%u", c.members[j]);
      out += buffer;
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string FormatResultLine(const std::string& id_json, const Query& query,
                             const SearchResult& result, bool cached) {
  std::string out = "{\"id\": " + id_json + ", \"query\": \"" +
                    JsonEscape(QueryToString(query)) + "\", \"cached\": " +
                    (cached ? "true" : "false");
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ", \"elapsed_seconds\": %.6f, ",
                result.stats.elapsed_seconds);
  out += buffer;
  out += "\"communities\": ";
  out += FormatCommunitiesJson(result);
  out += "}\n";
  return out;
}

std::string FormatErrorLine(const std::string& id_json,
                            const std::string& message,
                            const std::string& kind) {
  return "{\"id\": " + id_json + ", \"error\": \"" + JsonEscape(message) +
         "\", \"kind\": \"" + kind + "\"}\n";
}

}  // namespace ticl
