#include "serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "serve/core_index.h"
#include "serve/snapshot_format.h"
#include "util/check.h"
#include "util/fnv1a.h"

namespace ticl {

namespace snapshot_internal {

std::string ValidateCsr(std::span<const EdgeIndex> offsets,
                        std::span<const VertexId> adjacency) {
  if (offsets.empty()) return "offsets section empty";
  if (offsets.front() != 0) return "offsets[0] != 0";
  if (offsets.back() != adjacency.size()) {
    return "offsets[n] does not match adjacency length";
  }
  const std::size_t n = offsets.size() - 1;
  // Full monotonicity first: together with front == 0 and back ==
  // adjacency.size() it bounds every edge range, so the per-edge loop
  // below cannot index past the adjacency array even on hostile input.
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) return "offsets not monotone";
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      if (adjacency[e] >= n) return "neighbour id out of range";
      if (adjacency[e] == static_cast<VertexId>(v)) return "self-loop";
      if (e > offsets[v] && adjacency[e - 1] >= adjacency[e]) {
        return "neighbour list not strictly ascending";
      }
    }
  }
  return "";
}

bool ParseV2Table(const unsigned char* data, std::size_t size,
                  std::vector<SectionRef>* sections, std::string* error) {
  const auto fail = [error](std::string msg) {
    *error = "snapshot: " + std::move(msg);
    return false;
  };
  TICL_CHECK_MSG(reinterpret_cast<std::uintptr_t>(data) % 8 == 0,
                 "snapshot image must be 8-byte aligned");
  if (size < kV2HeaderBytes + kChecksumBytes) {
    return fail("truncated file (no room for header)");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic (not a TICL snapshot)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, data + 8, sizeof(version));
  if (version != 2) {
    return fail("unsupported format version " + std::to_string(version) +
                " (ParseV2Table reads version 2)");
  }
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, data + 12, sizeof(section_count));

  const std::size_t payload_end = size - kChecksumBytes;
  if (section_count >
      (payload_end - kV2HeaderBytes) / kSectionEntryBytes) {
    return fail("truncated section table (" + std::to_string(section_count) +
                " sections declared)");
  }
  const std::size_t table_end =
      kV2HeaderBytes + section_count * kSectionEntryBytes;

  // One checksum pass over everything before the trailing digest; every
  // later check can then trust the bytes it reads.
  std::uint64_t stored_digest = 0;
  std::memcpy(&stored_digest, data + payload_end, sizeof(stored_digest));
  if (Fnv1aHash(data, payload_end) != stored_digest) {
    return fail("checksum mismatch (file corrupted)");
  }

  sections->clear();
  sections->reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* entry = data + kV2HeaderBytes +
                                 static_cast<std::size_t>(i) *
                                     kSectionEntryBytes;
    std::uint32_t type = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::memcpy(&type, entry, sizeof(type));
    std::memcpy(&offset, entry + 8, sizeof(offset));
    std::memcpy(&length, entry + 16, sizeof(length));
    if (offset % kSectionAlignment != 0) {
      return fail("misaligned section (type " + std::to_string(type) + ")");
    }
    if (offset < table_end || offset > payload_end ||
        length > payload_end - offset) {
      return fail("section out of bounds (type " + std::to_string(type) +
                  ")");
    }
    sections->push_back(SectionRef{type, data + offset, length});
  }
  return true;
}

bool ParseV2(const unsigned char* data, std::size_t size, ParsedSnapshot* out,
             std::string* error) {
  const auto fail = [error](std::string msg) {
    *error = "snapshot: " + std::move(msg);
    return false;
  };
  std::vector<SectionRef> sections;
  if (!ParseV2Table(data, size, &sections, error)) return false;

  const unsigned char* meta = nullptr;
  const unsigned char* offsets_ptr = nullptr;
  const unsigned char* adjacency_ptr = nullptr;
  const unsigned char* weights_ptr = nullptr;
  const unsigned char* index_ptr = nullptr;
  std::uint64_t meta_len = 0;
  std::uint64_t offsets_len = 0;
  std::uint64_t adjacency_len = 0;
  std::uint64_t weights_len = 0;
  std::uint64_t index_len = 0;
  bool has_delta_sections = false;

  for (const SectionRef& section : sections) {
    const auto claim = [&](const unsigned char** ptr, std::uint64_t* len,
                           const char* what) {
      if (*ptr != nullptr) {
        *error = std::string("snapshot: duplicate section (") + what + ")";
        return false;
      }
      *ptr = section.data;
      *len = section.length;
      return true;
    };
    switch (section.type) {
      case kSectionGraphMeta:
        if (!claim(&meta, &meta_len, "graph_meta")) return false;
        break;
      case kSectionOffsets:
        if (!claim(&offsets_ptr, &offsets_len, "offsets")) return false;
        break;
      case kSectionAdjacency:
        if (!claim(&adjacency_ptr, &adjacency_len, "adjacency")) return false;
        break;
      case kSectionWeights:
        if (!claim(&weights_ptr, &weights_len, "weights")) return false;
        break;
      case kSectionCoreIndex:
        if (!claim(&index_ptr, &index_len, "core_index")) return false;
        break;
      case kSectionDeltaMeta:
      case kSectionDeltaEdges:
      case kSectionDeltaWeights:
        has_delta_sections = true;
        break;
      default:
        break;  // unknown optional section: skip (forward compatibility)
    }
  }

  if (meta == nullptr || offsets_ptr == nullptr || adjacency_ptr == nullptr) {
    if (has_delta_sections) {
      return fail("this is a delta snapshot (edits against a parent), not a "
                  "full graph; replay it onto its base with LoadSnapshotChain "
                  "/ --delta");
    }
    return fail("missing required section (graph_meta/offsets/adjacency)");
  }
  // A full snapshot must not also carry delta sections — accepting the mix
  // would serve the base graph with the recorded edits silently dropped
  // (and the delta loader rejects the same file, so the two loaders would
  // disagree about what it is).
  if (has_delta_sections) {
    return fail("file carries both graph and delta sections");
  }
  if (meta_len != 16) return fail("graph_meta section size mismatch");
  std::uint64_t n = 0;
  std::uint64_t adj_count = 0;
  std::memcpy(&n, meta, sizeof(n));
  std::memcpy(&adj_count, meta + 8, sizeof(adj_count));
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    return fail("vertex count exceeds VertexId range");
  }
  if (offsets_len != (n + 1) * sizeof(EdgeIndex)) {
    return fail("offsets section size mismatch");
  }
  if (adj_count > (size - kChecksumBytes) / sizeof(VertexId)) {
    return fail("declared adjacency length exceeds file size");
  }
  if (adjacency_len != adj_count * sizeof(VertexId)) {
    return fail("adjacency section size mismatch");
  }
  if (weights_ptr != nullptr && weights_len != n * sizeof(Weight)) {
    return fail("weights section size mismatch");
  }

  out->offsets = {reinterpret_cast<const EdgeIndex*>(offsets_ptr),
                  static_cast<std::size_t>(n + 1)};
  out->adjacency = {reinterpret_cast<const VertexId*>(adjacency_ptr),
                    static_cast<std::size_t>(adj_count)};
  out->weights =
      weights_ptr == nullptr
          ? std::span<const Weight>{}
          : std::span<const Weight>{reinterpret_cast<const Weight*>(
                                        weights_ptr),
                                    static_cast<std::size_t>(n)};
  out->core_index = index_ptr;
  out->core_index_size = static_cast<std::size_t>(index_len);

  const std::string csr_problem = ValidateCsr(out->offsets, out->adjacency);
  if (!csr_problem.empty()) {
    return fail("invalid graph data: " + csr_problem);
  }
  for (const Weight w : out->weights) {
    if (!(w >= 0.0)) {  // catches negatives and NaN
      return fail("negative or NaN vertex weight");
    }
  }
  return true;
}

}  // namespace snapshot_internal

namespace {

namespace fmt = snapshot_internal;

/// fclose on scope exit; remove() the temp file unless committed.
class FileGuard {
 public:
  FileGuard(std::FILE* f, std::string path) : f_(f), path_(std::move(path)) {}
  ~FileGuard() {
    if (f_ != nullptr) std::fclose(f_);
    if (!committed_ && !path_.empty()) std::remove(path_.c_str());
  }
  void CloseAndCommit() {
    std::fclose(f_);
    f_ = nullptr;
    committed_ = true;
  }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
  std::string path_;
  bool committed_ = false;
};

bool WriteChecked(std::FILE* f, Fnv1a* checksum, const void* data,
                  std::size_t bytes, std::string* error) {
  if (bytes == 0) return true;
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    *error = "snapshot: short write";
    return false;
  }
  if (checksum != nullptr) checksum->Update(data, bytes);
  return true;
}

bool ReadChecked(std::FILE* f, Fnv1a* checksum, void* data, std::size_t bytes,
                 const char* what, std::string* error) {
  if (bytes == 0) return true;
  if (std::fread(data, 1, bytes, f) != bytes) {
    *error = std::string("snapshot: truncated file (while reading ") + what +
             ")";
    return false;
  }
  if (checksum != nullptr) checksum->Update(data, bytes);
  return true;
}

std::uint64_t AlignUp(std::uint64_t x) {
  return (x + (fmt::kSectionAlignment - 1)) &
         ~static_cast<std::uint64_t>(fmt::kSectionAlignment - 1);
}

/// The v1 body (everything after the shared temp-file plumbing). Kept so
/// compatibility tests and benchmarks can produce old files on demand.
bool WriteV1Body(std::FILE* f, const Graph& g, std::string* error) {
  const std::uint32_t version = 1;
  const std::uint32_t flags = g.has_weights() ? fmt::kFlagHasWeights : 0;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t adj_len = g.adjacency().size();

  // num_vertices() == 0 graphs legitimately have an empty offsets array;
  // normalize to the canonical one-entry [0] so loads round-trip.
  const std::vector<EdgeIndex> empty_offsets{0};
  const std::span<const EdgeIndex> offsets =
      g.offsets().empty() ? std::span<const EdgeIndex>(empty_offsets)
                          : g.offsets();

  Fnv1a checksum;
  if (!WriteChecked(f, &checksum, fmt::kMagic, sizeof(fmt::kMagic), error) ||
      !WriteChecked(f, &checksum, &version, sizeof(version), error) ||
      !WriteChecked(f, &checksum, &flags, sizeof(flags), error) ||
      !WriteChecked(f, &checksum, &n, sizeof(n), error) ||
      !WriteChecked(f, &checksum, &adj_len, sizeof(adj_len), error) ||
      !WriteChecked(f, &checksum, offsets.data(),
                    offsets.size() * sizeof(EdgeIndex), error) ||
      !WriteChecked(f, &checksum, g.adjacency().data(),
                    adj_len * sizeof(VertexId), error)) {
    return false;
  }
  if (g.has_weights() &&
      !WriteChecked(f, &checksum, g.weights().data(), n * sizeof(Weight),
                    error)) {
    return false;
  }
  const std::uint64_t digest = checksum.Digest();
  return WriteChecked(f, nullptr, &digest, sizeof(digest), error);
}

struct Section {
  std::uint32_t type;
  const void* data;
  std::uint64_t length;
};

/// Writes the whole v2 container — header, section table, payloads padded
/// to the 8-byte boundary (padding is zero and checksummed; `length`
/// stays unpadded), trailing digest. Shared by the full-snapshot and
/// delta-snapshot writers.
bool WriteV2Container(std::FILE* f, const std::vector<Section>& sections,
                      std::string* error) {
  Fnv1a checksum;
  const std::uint32_t version = 2;
  const auto section_count = static_cast<std::uint32_t>(sections.size());
  if (!WriteChecked(f, &checksum, fmt::kMagic, sizeof(fmt::kMagic), error) ||
      !WriteChecked(f, &checksum, &version, sizeof(version), error) ||
      !WriteChecked(f, &checksum, &section_count, sizeof(section_count),
                    error)) {
    return false;
  }
  std::uint64_t cursor =
      fmt::kV2HeaderBytes + sections.size() * fmt::kSectionEntryBytes;
  for (const Section& section : sections) {
    const std::uint32_t reserved = 0;
    if (!WriteChecked(f, &checksum, &section.type, sizeof(section.type),
                      error) ||
        !WriteChecked(f, &checksum, &reserved, sizeof(reserved), error) ||
        !WriteChecked(f, &checksum, &cursor, sizeof(cursor), error) ||
        !WriteChecked(f, &checksum, &section.length, sizeof(section.length),
                      error)) {
      return false;
    }
    cursor += AlignUp(section.length);
  }
  const unsigned char padding[fmt::kSectionAlignment] = {0};
  for (const Section& section : sections) {
    if (!WriteChecked(f, &checksum, section.data, section.length, error) ||
        !WriteChecked(f, &checksum, padding,
                      AlignUp(section.length) - section.length, error)) {
      return false;
    }
  }
  const std::uint64_t digest = checksum.Digest();
  return WriteChecked(f, nullptr, &digest, sizeof(digest), error);
}

bool WriteV2Body(std::FILE* f, const Graph& g,
                 const SaveSnapshotOptions& options, std::string* error) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t adj_count = g.adjacency().size();

  const std::vector<EdgeIndex> empty_offsets{0};
  const std::span<const EdgeIndex> offsets =
      g.offsets().empty() ? std::span<const EdgeIndex>(empty_offsets)
                          : g.offsets();

  unsigned char meta[16];
  std::memcpy(meta, &n, sizeof(n));
  std::memcpy(meta + 8, &adj_count, sizeof(adj_count));

  std::vector<unsigned char> index_bytes;
  if (options.core_index != nullptr) {
    if (!(options.core_index->fingerprint() == g.fingerprint())) {
      *error = "snapshot: core index does not match the graph being saved";
      return false;
    }
    options.core_index->AppendSerialized(&index_bytes);
  }

  std::vector<Section> sections;
  sections.push_back({fmt::kSectionGraphMeta, meta, sizeof(meta)});
  sections.push_back({fmt::kSectionOffsets, offsets.data(),
                      offsets.size() * sizeof(EdgeIndex)});
  sections.push_back({fmt::kSectionAdjacency, g.adjacency().data(),
                      adj_count * sizeof(VertexId)});
  if (g.has_weights()) {
    sections.push_back(
        {fmt::kSectionWeights, g.weights().data(), n * sizeof(Weight)});
  }
  if (options.core_index != nullptr) {
    sections.push_back(
        {fmt::kSectionCoreIndex, index_bytes.data(), index_bytes.size()});
  }
  return WriteV2Container(f, sections, error);
}

/// v1 load body. `checksum` has already consumed magic + version.
bool LoadV1Body(std::FILE* f, Fnv1a checksum, Graph* out,
                std::string* error) {
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t adj_len = 0;
  if (!ReadChecked(f, &checksum, &flags, sizeof(flags), "flags", error) ||
      !ReadChecked(f, &checksum, &n, sizeof(n), "vertex count", error) ||
      !ReadChecked(f, &checksum, &adj_len, sizeof(adj_len),
                   "adjacency length", error)) {
    return false;
  }
  if ((flags & ~fmt::kFlagHasWeights) != 0) {
    *error = "snapshot: unknown flag bits set";
    return false;
  }
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    *error = "snapshot: vertex count exceeds VertexId range";
    return false;
  }
  // Reject sizes inconsistent with the actual file before allocating.
  const long header_end = std::ftell(f);
  if (header_end < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  const long file_size = std::ftell(f);
  if (file_size < 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  // n is already bounded by the VertexId range (so the offsets/weights
  // terms cannot overflow); bound adj_len by the actual file size before
  // multiplying so a crafted header cannot wrap `expected` around and
  // sneak past this check into a huge allocation.
  if (adj_len > static_cast<std::uint64_t>(file_size) / sizeof(VertexId)) {
    *error = "snapshot: declared adjacency length exceeds file size";
    return false;
  }
  std::uint64_t expected = static_cast<std::uint64_t>(header_end);
  expected += (n + 1) * sizeof(EdgeIndex);
  expected += adj_len * sizeof(VertexId);
  if ((flags & fmt::kFlagHasWeights) != 0) expected += n * sizeof(Weight);
  expected += sizeof(std::uint64_t);  // checksum
  if (static_cast<std::uint64_t>(file_size) != expected) {
    *error = "snapshot: file size " + std::to_string(file_size) +
             " does not match declared sections (expected " +
             std::to_string(expected) + ")";
    return false;
  }
  if (std::fseek(f, header_end, SEEK_SET) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }

  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> adjacency(adj_len);
  std::vector<Weight> weights;
  if (!ReadChecked(f, &checksum, offsets.data(),
                   offsets.size() * sizeof(EdgeIndex), "offsets", error) ||
      !ReadChecked(f, &checksum, adjacency.data(),
                   adj_len * sizeof(VertexId), "adjacency", error)) {
    return false;
  }
  if ((flags & fmt::kFlagHasWeights) != 0) {
    weights.resize(n);
    if (!ReadChecked(f, &checksum, weights.data(), n * sizeof(Weight),
                     "weights", error)) {
      return false;
    }
  }
  std::uint64_t stored_digest = 0;
  if (!ReadChecked(f, nullptr, &stored_digest, sizeof(stored_digest),
                   "checksum", error)) {
    return false;
  }
  if (stored_digest != checksum.Digest()) {
    *error = "snapshot: checksum mismatch (file corrupted)";
    return false;
  }

  const std::string csr_problem = fmt::ValidateCsr(offsets, adjacency);
  if (!csr_problem.empty()) {
    *error = "snapshot: invalid graph data: " + csr_problem;
    return false;
  }
  for (const Weight w : weights) {
    if (!(w >= 0.0)) {  // catches negatives and NaN
      *error = "snapshot: negative or NaN vertex weight";
      return false;
    }
  }

  Graph loaded(std::move(offsets), std::move(adjacency));
  if (!weights.empty()) loaded.SetWeights(std::move(weights));
  *out = std::move(loaded);
  return true;
}

/// v2 copy-load: slurp the file and parse it in place, then deep-copy the
/// sections into an owning Graph (the zero-copy alternative lives in
/// serve/mapped_snapshot.h). When index_payload is non-null it receives a
/// copy of the core_index section bytes (empty when absent).
bool LoadV2Body(std::FILE* f, Graph* out,
                std::vector<unsigned char>* index_payload,
                std::string* error) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  std::vector<unsigned char> buffer(static_cast<std::size_t>(file_size));
  if (!ReadChecked(f, nullptr, buffer.data(), buffer.size(), "file", error)) {
    return false;
  }
  fmt::ParsedSnapshot parsed;
  if (!fmt::ParseV2(buffer.data(), buffer.size(), &parsed, error)) {
    return false;
  }
  std::vector<EdgeIndex> offsets(parsed.offsets.begin(),
                                 parsed.offsets.end());
  std::vector<VertexId> adjacency(parsed.adjacency.begin(),
                                  parsed.adjacency.end());
  Graph loaded(std::move(offsets), std::move(adjacency));
  if (!parsed.weights.empty()) {
    loaded.SetWeights(
        std::vector<Weight>(parsed.weights.begin(), parsed.weights.end()));
  }
  if (index_payload != nullptr && parsed.core_index != nullptr) {
    index_payload->assign(parsed.core_index,
                          parsed.core_index + parsed.core_index_size);
  }
  *out = std::move(loaded);
  return true;
}

/// Writes `path` atomically: the body goes to a sibling temp file that is
/// renamed over `path` on success.
template <typename BodyFn>
bool AtomicWrite(const std::string& path, BodyFn&& body, std::string* error) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* raw = std::fopen(tmp_path.c_str(), "wb");
  if (raw == nullptr) {
    *error = "snapshot: cannot open " + tmp_path + " for writing";
    return false;
  }
  FileGuard file(raw, tmp_path);
  std::FILE* f = file.get();
  if (!body(f)) return false;
  if (std::fflush(f) != 0) {
    *error = "snapshot: flush failed";
    return false;
  }
  file.CloseAndCommit();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    *error = "snapshot: cannot rename " + tmp_path + " to " + path;
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool SaveSnapshot(const std::string& path, const Graph& g,
                  std::string* error) {
  return SaveSnapshot(path, g, SaveSnapshotOptions{}, error);
}

bool SaveSnapshot(const std::string& path, const Graph& g,
                  const SaveSnapshotOptions& options, std::string* error) {
  if (options.version != 1 && options.version != 2) {
    *error = "snapshot: unsupported writer version " +
             std::to_string(options.version);
    return false;
  }
  if (options.version == 1 && options.core_index != nullptr) {
    *error = "snapshot: format v1 cannot embed a core index (use v2)";
    return false;
  }
  return AtomicWrite(
      path,
      [&](std::FILE* f) {
        return options.version == 2 ? WriteV2Body(f, g, options, error)
                                    : WriteV1Body(f, g, error);
      },
      error);
}

bool LoadSnapshot(const std::string& path, Graph* out, std::string* error) {
  return LoadSnapshotWithIndex(path, out, nullptr, error);
}

bool LoadSnapshotWithIndex(const std::string& path, Graph* out,
                           std::vector<unsigned char>* core_index_payload,
                           std::string* error) {
  if (core_index_payload != nullptr) core_index_payload->clear();
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) {
    *error = "snapshot: cannot open " + path;
    return false;
  }
  FileGuard file(raw, "");
  std::FILE* f = file.get();

  char magic[8];
  std::uint32_t version = 0;
  Fnv1a checksum;
  if (!ReadChecked(f, &checksum, magic, sizeof(magic), "magic", error)) {
    return false;
  }
  if (std::memcmp(magic, fmt::kMagic, sizeof(fmt::kMagic)) != 0) {
    *error = "snapshot: bad magic (not a TICL snapshot)";
    return false;
  }
  if (!ReadChecked(f, &checksum, &version, sizeof(version), "version",
                   error)) {
    return false;
  }
  if (version == 1) return LoadV1Body(f, checksum, out, error);
  if (version == 2) return LoadV2Body(f, out, core_index_payload, error);
  *error = "snapshot: unsupported format version " + std::to_string(version) +
           " (newest supported " + std::to_string(kSnapshotFormatVersion) +
           ")";
  return false;
}

bool SaveDeltaSnapshot(const std::string& path, const GraphDelta& delta,
                       const GraphFingerprint& parent, std::string* error) {
  unsigned char meta[fmt::kDeltaMetaBytes];
  const std::uint64_t insert_count = delta.insert_edges.size();
  const std::uint64_t delete_count = delta.delete_edges.size();
  const std::uint64_t weight_count = delta.weight_updates.size();
  std::memcpy(meta, &parent.num_vertices, 8);
  std::memcpy(meta + 8, &parent.adjacency_len, 8);
  std::memcpy(meta + 16, &parent.csr_hash, 8);
  std::memcpy(meta + 24, &insert_count, 8);
  std::memcpy(meta + 32, &delete_count, 8);
  std::memcpy(meta + 40, &weight_count, 8);

  // Edge pairs are stored normalized (u < v) so a byte-identical delta
  // always produces a byte-identical file.
  std::vector<VertexId> edge_words;
  edge_words.reserve((insert_count + delete_count) * 2);
  const auto append_edges = [&edge_words](const std::vector<Edge>& edges) {
    for (const Edge& e : edges) {
      edge_words.push_back(std::min(e.u, e.v));
      edge_words.push_back(std::max(e.u, e.v));
    }
  };
  append_edges(delta.insert_edges);
  append_edges(delta.delete_edges);

  std::vector<unsigned char> weight_bytes;
  weight_bytes.reserve(weight_count * 16);
  for (const WeightUpdate& wu : delta.weight_updates) {
    const std::uint64_t vertex = wu.vertex;
    const unsigned char* vp = reinterpret_cast<const unsigned char*>(&vertex);
    const unsigned char* wp =
        reinterpret_cast<const unsigned char*>(&wu.weight);
    weight_bytes.insert(weight_bytes.end(), vp, vp + 8);
    weight_bytes.insert(weight_bytes.end(), wp, wp + 8);
  }

  std::vector<Section> sections;
  sections.push_back({fmt::kSectionDeltaMeta, meta, sizeof(meta)});
  if (!edge_words.empty()) {
    sections.push_back({fmt::kSectionDeltaEdges, edge_words.data(),
                        edge_words.size() * sizeof(VertexId)});
  }
  if (!weight_bytes.empty()) {
    sections.push_back({fmt::kSectionDeltaWeights, weight_bytes.data(),
                        weight_bytes.size()});
  }
  return AtomicWrite(
      path, [&](std::FILE* f) { return WriteV2Container(f, sections, error); },
      error);
}

bool LoadDeltaSnapshot(const std::string& path, GraphDelta* delta,
                       GraphFingerprint* parent, std::string* error) {
  const auto fail = [error](std::string msg) {
    *error = "snapshot: " + std::move(msg);
    return false;
  };
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) {
    *error = "snapshot: cannot open " + path;
    return false;
  }
  FileGuard file(raw, "");
  std::FILE* f = file.get();
  if (std::fseek(f, 0, SEEK_END) != 0) return fail("seek failed");
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return fail("seek failed");
  }
  std::vector<unsigned char> buffer(static_cast<std::size_t>(file_size));
  if (!ReadChecked(f, nullptr, buffer.data(), buffer.size(), "file", error)) {
    return false;
  }

  std::vector<fmt::SectionRef> sections;
  if (!fmt::ParseV2Table(buffer.data(), buffer.size(), &sections, error)) {
    return false;
  }
  const fmt::SectionRef* meta = nullptr;
  const fmt::SectionRef* edges = nullptr;
  const fmt::SectionRef* weights = nullptr;
  bool has_graph_sections = false;
  for (const fmt::SectionRef& section : sections) {
    switch (section.type) {
      case fmt::kSectionDeltaMeta:
        if (meta != nullptr) return fail("duplicate section (delta_meta)");
        meta = &section;
        break;
      case fmt::kSectionDeltaEdges:
        if (edges != nullptr) return fail("duplicate section (delta_edges)");
        edges = &section;
        break;
      case fmt::kSectionDeltaWeights:
        if (weights != nullptr) {
          return fail("duplicate section (delta_weights)");
        }
        weights = &section;
        break;
      case fmt::kSectionGraphMeta:
        has_graph_sections = true;
        break;
      default:
        break;
    }
  }
  if (meta == nullptr) {
    if (has_graph_sections) {
      return fail("this is a full snapshot, not a delta; load it with "
                  "LoadSnapshot / --snapshot");
    }
    return fail("missing required section (delta_meta)");
  }
  if (has_graph_sections) {
    return fail("file carries both graph and delta sections");
  }
  if (meta->length != fmt::kDeltaMetaBytes) {
    return fail("delta_meta section size mismatch");
  }

  GraphFingerprint stored;
  std::uint64_t insert_count = 0;
  std::uint64_t delete_count = 0;
  std::uint64_t weight_count = 0;
  std::memcpy(&stored.num_vertices, meta->data, 8);
  std::memcpy(&stored.adjacency_len, meta->data + 8, 8);
  std::memcpy(&stored.csr_hash, meta->data + 16, 8);
  std::memcpy(&insert_count, meta->data + 24, 8);
  std::memcpy(&delete_count, meta->data + 32, 8);
  std::memcpy(&weight_count, meta->data + 40, 8);
  const std::uint64_t n = stored.num_vertices;
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    return fail("parent vertex count exceeds VertexId range");
  }

  const std::uint64_t edge_bytes_budget =
      edges == nullptr ? 0 : edges->length;
  if (insert_count > edge_bytes_budget / 8 ||
      delete_count > edge_bytes_budget / 8 ||
      (insert_count + delete_count) * 8 != edge_bytes_budget) {
    return fail("delta_edges section size mismatch");
  }
  const std::uint64_t weight_bytes_budget =
      weights == nullptr ? 0 : weights->length;
  if (weight_count > weight_bytes_budget / 16 ||
      weight_count * 16 != weight_bytes_budget) {
    return fail("delta_weights section size mismatch");
  }

  GraphDelta parsed;
  parsed.insert_edges.reserve(insert_count);
  parsed.delete_edges.reserve(delete_count);
  parsed.weight_updates.reserve(weight_count);
  for (std::uint64_t i = 0; i < insert_count + delete_count; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    std::memcpy(&u, edges->data + i * 8, 4);
    std::memcpy(&v, edges->data + i * 8 + 4, 4);
    if (u >= n || v >= n) return fail("delta edge endpoint out of range");
    if (u == v) return fail("delta edge is a self-loop");
    Edge e{std::min(u, v), std::max(u, v)};
    if (i < insert_count) {
      parsed.insert_edges.push_back(e);
    } else {
      parsed.delete_edges.push_back(e);
    }
  }
  for (std::uint64_t i = 0; i < weight_count; ++i) {
    std::uint64_t vertex = 0;
    Weight weight = 0.0;
    std::memcpy(&vertex, weights->data + i * 16, 8);
    std::memcpy(&weight, weights->data + i * 16 + 8, 8);
    if (vertex >= n) return fail("delta weight vertex out of range");
    if (!(weight >= 0.0) || std::isinf(weight)) {
      return fail("delta weight must be finite and non-negative");
    }
    parsed.weight_updates.push_back(
        WeightUpdate{static_cast<VertexId>(vertex), weight});
  }

  *delta = std::move(parsed);
  *parent = stored;
  return true;
}

bool LoadSnapshotChain(const std::string& base_path,
                       const std::vector<std::string>& delta_paths,
                       Graph* out, std::string* error) {
  Graph g;
  if (!LoadSnapshot(base_path, &g, error)) return false;
  for (const std::string& path : delta_paths) {
    GraphDelta delta;
    GraphFingerprint parent;
    if (!LoadDeltaSnapshot(path, &delta, &parent, error)) return false;
    if (!(parent == g.fingerprint())) {
      *error = "snapshot: delta " + path +
               " was recorded against a different parent (fingerprint "
               "mismatch — wrong base snapshot or wrong chain order)";
      return false;
    }
    const std::string problem = ValidateDelta(g, delta);
    if (!problem.empty()) {
      *error = "snapshot: delta " + path + ": " + problem;
      return false;
    }
    g = ApplyValidatedDelta(g, delta);
  }
  *out = std::move(g);
  return true;
}

}  // namespace ticl
