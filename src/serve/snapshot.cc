#include "serve/snapshot.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace ticl {

namespace {

constexpr char kMagic[8] = {'T', 'I', 'C', 'L', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kFlagHasWeights = 1u << 0;

/// FNV-1a 64-bit, processed incrementally across sections.
class Fnv1a {
 public:
  void Update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t Digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// fclose on scope exit; remove() the temp file unless committed.
class FileGuard {
 public:
  FileGuard(std::FILE* f, std::string path) : f_(f), path_(std::move(path)) {}
  ~FileGuard() {
    if (f_ != nullptr) std::fclose(f_);
    if (!committed_ && !path_.empty()) std::remove(path_.c_str());
  }
  void CloseAndCommit() {
    std::fclose(f_);
    f_ = nullptr;
    committed_ = true;
  }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
  std::string path_;
  bool committed_ = false;
};

bool WriteChecked(std::FILE* f, Fnv1a* checksum, const void* data,
                  std::size_t bytes, std::string* error) {
  if (bytes == 0) return true;
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    *error = "snapshot: short write";
    return false;
  }
  if (checksum != nullptr) checksum->Update(data, bytes);
  return true;
}

bool ReadChecked(std::FILE* f, Fnv1a* checksum, void* data, std::size_t bytes,
                 const char* what, std::string* error) {
  if (bytes == 0) return true;
  if (std::fread(data, 1, bytes, f) != bytes) {
    *error = std::string("snapshot: truncated file (while reading ") + what +
             ")";
    return false;
  }
  if (checksum != nullptr) checksum->Update(data, bytes);
  return true;
}

/// The structural invariants Graph's CSR constructor assumes. Symmetry is
/// not re-verified (O(m log d) — the writer only ever saw symmetric
/// graphs); everything cheap and memory-safety-critical is.
std::string ValidateCsr(const std::vector<EdgeIndex>& offsets,
                        const std::vector<VertexId>& adjacency) {
  if (offsets.empty()) return "offsets section empty";
  if (offsets.front() != 0) return "offsets[0] != 0";
  if (offsets.back() != adjacency.size()) {
    return "offsets[n] does not match adjacency length";
  }
  const std::size_t n = offsets.size() - 1;
  // Full monotonicity first: together with front == 0 and back ==
  // adjacency.size() it bounds every edge range, so the per-edge loop
  // below cannot index past the adjacency array even on hostile input.
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) return "offsets not monotone";
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (EdgeIndex e = offsets[v]; e < offsets[v + 1]; ++e) {
      if (adjacency[e] >= n) return "neighbour id out of range";
      if (adjacency[e] == static_cast<VertexId>(v)) return "self-loop";
      if (e > offsets[v] && adjacency[e - 1] >= adjacency[e]) {
        return "neighbour list not strictly ascending";
      }
    }
  }
  return "";
}

}  // namespace

bool SaveSnapshot(const std::string& path, const Graph& g,
                  std::string* error) {
  const std::string tmp_path = path + ".tmp";
  std::FILE* raw = std::fopen(tmp_path.c_str(), "wb");
  if (raw == nullptr) {
    *error = "snapshot: cannot open " + tmp_path + " for writing";
    return false;
  }
  FileGuard file(raw, tmp_path);

  const std::uint32_t version = kSnapshotFormatVersion;
  const std::uint32_t flags = g.has_weights() ? kFlagHasWeights : 0;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t adj_len = g.adjacency().size();

  // num_vertices() == 0 graphs legitimately have an empty offsets array;
  // normalize to the canonical one-entry [0] so loads round-trip.
  const std::vector<EdgeIndex> empty_offsets{0};
  const std::vector<EdgeIndex>& offsets =
      g.offsets().empty() ? empty_offsets : g.offsets();

  Fnv1a checksum;
  std::FILE* f = file.get();
  if (!WriteChecked(f, &checksum, kMagic, sizeof(kMagic), error) ||
      !WriteChecked(f, &checksum, &version, sizeof(version), error) ||
      !WriteChecked(f, &checksum, &flags, sizeof(flags), error) ||
      !WriteChecked(f, &checksum, &n, sizeof(n), error) ||
      !WriteChecked(f, &checksum, &adj_len, sizeof(adj_len), error) ||
      !WriteChecked(f, &checksum, offsets.data(),
                    offsets.size() * sizeof(EdgeIndex), error) ||
      !WriteChecked(f, &checksum, g.adjacency().data(),
                    adj_len * sizeof(VertexId), error)) {
    return false;
  }
  if (g.has_weights() &&
      !WriteChecked(f, &checksum, g.weights().data(), n * sizeof(Weight),
                    error)) {
    return false;
  }
  const std::uint64_t digest = checksum.Digest();
  if (!WriteChecked(f, nullptr, &digest, sizeof(digest), error)) return false;
  if (std::fflush(f) != 0) {
    *error = "snapshot: flush failed";
    return false;
  }
  file.CloseAndCommit();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    *error = "snapshot: cannot rename " + tmp_path + " to " + path;
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool LoadSnapshot(const std::string& path, Graph* out, std::string* error) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  if (raw == nullptr) {
    *error = "snapshot: cannot open " + path;
    return false;
  }
  FileGuard file(raw, "");
  std::FILE* f = file.get();

  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t adj_len = 0;
  Fnv1a checksum;
  if (!ReadChecked(f, &checksum, magic, sizeof(magic), "magic", error)) {
    return false;
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    *error = "snapshot: bad magic (not a TICL snapshot)";
    return false;
  }
  if (!ReadChecked(f, &checksum, &version, sizeof(version), "version",
                   error) ||
      !ReadChecked(f, &checksum, &flags, sizeof(flags), "flags", error) ||
      !ReadChecked(f, &checksum, &n, sizeof(n), "vertex count", error) ||
      !ReadChecked(f, &checksum, &adj_len, sizeof(adj_len),
                   "adjacency length", error)) {
    return false;
  }
  if (version != kSnapshotFormatVersion) {
    *error = "snapshot: unsupported format version " +
             std::to_string(version) + " (expected " +
             std::to_string(kSnapshotFormatVersion) + ")";
    return false;
  }
  if ((flags & ~kFlagHasWeights) != 0) {
    *error = "snapshot: unknown flag bits set";
    return false;
  }
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    *error = "snapshot: vertex count exceeds VertexId range";
    return false;
  }
  // Reject sizes inconsistent with the actual file before allocating.
  const long header_end = std::ftell(f);
  if (header_end < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  const long file_size = std::ftell(f);
  if (file_size < 0) {
    *error = "snapshot: seek failed";
    return false;
  }
  // n is already bounded by the VertexId range (so the offsets/weights
  // terms cannot overflow); bound adj_len by the actual file size before
  // multiplying so a crafted header cannot wrap `expected` around and
  // sneak past this check into a huge allocation.
  if (adj_len > static_cast<std::uint64_t>(file_size) / sizeof(VertexId)) {
    *error = "snapshot: declared adjacency length exceeds file size";
    return false;
  }
  std::uint64_t expected = static_cast<std::uint64_t>(header_end);
  expected += (n + 1) * sizeof(EdgeIndex);
  expected += adj_len * sizeof(VertexId);
  if ((flags & kFlagHasWeights) != 0) expected += n * sizeof(Weight);
  expected += sizeof(std::uint64_t);  // checksum
  if (static_cast<std::uint64_t>(file_size) != expected) {
    *error = "snapshot: file size " + std::to_string(file_size) +
             " does not match declared sections (expected " +
             std::to_string(expected) + ")";
    return false;
  }
  if (std::fseek(f, header_end, SEEK_SET) != 0) {
    *error = "snapshot: seek failed";
    return false;
  }

  std::vector<EdgeIndex> offsets(n + 1);
  std::vector<VertexId> adjacency(adj_len);
  std::vector<Weight> weights;
  if (!ReadChecked(f, &checksum, offsets.data(),
                   offsets.size() * sizeof(EdgeIndex), "offsets", error) ||
      !ReadChecked(f, &checksum, adjacency.data(),
                   adj_len * sizeof(VertexId), "adjacency", error)) {
    return false;
  }
  if ((flags & kFlagHasWeights) != 0) {
    weights.resize(n);
    if (!ReadChecked(f, &checksum, weights.data(), n * sizeof(Weight),
                     "weights", error)) {
      return false;
    }
  }
  std::uint64_t stored_digest = 0;
  if (!ReadChecked(f, nullptr, &stored_digest, sizeof(stored_digest),
                   "checksum", error)) {
    return false;
  }
  if (stored_digest != checksum.Digest()) {
    *error = "snapshot: checksum mismatch (file corrupted)";
    return false;
  }

  const std::string csr_problem = ValidateCsr(offsets, adjacency);
  if (!csr_problem.empty()) {
    *error = "snapshot: invalid graph data: " + csr_problem;
    return false;
  }
  for (const Weight w : weights) {
    if (!(w >= 0.0)) {  // catches negatives and NaN
      *error = "snapshot: negative or NaN vertex weight";
      return false;
    }
  }

  Graph loaded(std::move(offsets), std::move(adjacency));
  if (!weights.empty()) loaded.SetWeights(std::move(weights));
  *out = std::move(loaded);
  return true;
}

}  // namespace ticl
