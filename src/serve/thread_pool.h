// Fixed-size worker pool for the query engine.
//
// Deliberately minimal: a mutex-guarded FIFO of std::function jobs drained
// by N long-lived workers. Query execution is seconds-scale graph work, so
// per-submit overhead is irrelevant; what matters is a bounded thread
// count (one pool per engine, not one thread per request) and a clean
// join-on-destruction so engines can be torn down safely mid-load.

#ifndef TICL_SERVE_THREAD_POOL_H_
#define TICL_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ticl {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1; 0 is clamped to
  /// hardware_concurrency, itself clamped to at least 1).
  explicit ThreadPool(unsigned num_threads);

  /// Calls Shutdown(): pending jobs still run, then workers exit and join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Returns true when the job was accepted; returns
  /// false — dropping the job — once shutdown has begun. The caller must
  /// then handle the work itself (QueryEngine runs it inline), so a
  /// teardown race degrades to on-caller execution instead of a
  /// TICL_CHECK abort of the whole process.
  [[nodiscard]] bool Submit(std::function<void()> job);

  /// Stops accepting jobs, lets the queue drain, and joins the workers.
  /// Idempotent and safe to call concurrently with Submit; the destructor
  /// calls it too.
  void Shutdown();

  /// Blocks until every submitted job has finished executing (not merely
  /// been dequeued).
  void Wait();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ticl

#endif  // TICL_SERVE_THREAD_POOL_H_
