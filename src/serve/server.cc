#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/graph_delta.h"

namespace ticl {

namespace {

/// epoll user-data values for the two non-connection descriptors;
/// connection ids start above them.
constexpr std::uint64_t kWakeToken = 0;
constexpr std::uint64_t kListenToken = 1;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string U64(std::uint64_t value) { return std::to_string(value); }

}  // namespace

/// Per-connection state. `in` accumulates bytes until a newline; `out`
/// holds formatted replies awaiting the socket. `line_number` feeds the
/// synthesized ids of id-less requests. `paused` means EPOLLIN is off —
/// either write backpressure, EOF already seen, or drain.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;
  std::string out;
  /// Bytes of `out` already written to the socket. A cursor instead of
  /// front-erasing per send: a backpressured buffer is megabytes, and
  /// repeated memmove on the event-loop thread would stall every other
  /// connection.
  std::size_t out_offset = 0;
  std::size_t in_flight = 0;
  std::size_t line_number = 0;
  bool paused = false;
  bool peer_closed = false;
  /// An oversized line was answered with an error; swallow bytes until
  /// the next newline to resynchronize.
  bool discarding = false;

  std::size_t pending_out() const { return out.size() - out_offset; }
};

Server::CompletionQueue::~CompletionQueue() {
  if (wake_fd >= 0) ::close(wake_fd);
}

void Server::CompletionQueue::Push(std::uint64_t conn_id, std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    items.emplace_back(conn_id, std::move(line));
  }
  Wake();
}

void Server::CompletionQueue::Wake() {
  // Lock-free and async-signal-safe: RequestDrain calls this from signal
  // context.
  if (wake_fd < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t written =
      ::write(wake_fd, &one, sizeof(one));
}

Server::Server(QueryEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      per_conn_cap_(options_.max_in_flight_per_conn != 0
                        ? options_.max_in_flight_per_conn
                        : std::max<std::size_t>(
                              options_.max_in_flight / 4, 1)),
      completions_(std::make_shared<CompletionQueue>()) {}

Server::~Server() {
  for (auto& [id, conn] : connections_) ::close(conn->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  // completions_->wake_fd belongs to the queue, which dies with the last
  // engine callback still holding a reference — a completion racing this
  // destructor writes to a live eventfd and is dropped, instead of
  // writing to a recycled descriptor.
}

bool Server::Start(std::string* error) {
  if (started_) {
    *error = "server already started";
    return false;
  }
  completions_->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (completions_->wake_fd < 0) {
    *error = Errno("eventfd");
    return false;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    *error = Errno("epoll_create1");
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    *error = Errno("socket");
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    *error = "invalid bind address (numeric IPv4 expected): " +
             options_.bind_address;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = Errno("cannot bind " + options_.bind_address + ":" +
                   std::to_string(options_.port));
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = Errno("listen");
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    *error = Errno("getsockname");
    return false;
  }
  port_ = ntohs(bound.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, completions_->wake_fd, &ev) !=
      0) {
    *error = Errno("epoll_ctl(wake)");
    return false;
  }
  ev.data.u64 = kListenToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    *error = Errno("epoll_ctl(listen)");
    return false;
  }
  started_ = true;
  return true;
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  completions_->Wake();
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::Serve() {
  if (!started_) return;
  epoll_event events[64];
  while (!done_) {
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      BeginDrain();
    }
    MaybeFinishDrain();
    if (done_) break;
    // While draining, bound the wait by the grace deadline: one peer
    // that never reads its replies must not hold shutdown hostage.
    int timeout_ms = -1;
    if (draining_ && options_.drain_grace_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= drain_deadline_) {
        ForceCloseStragglers();
        MaybeFinishDrain();
        if (done_) break;
        // Still waiting on in-flight solves (compute-bound, they
        // finish); tick so a reply that stalls post-deadline is also
        // force-closed promptly.
        timeout_ms = 50;
      } else {
        timeout_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drain_deadline_ - now)
                .count() +
            1);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    if (n == 0) continue;  // drain deadline tick
    for (int i = 0; i < n; ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        DrainCompletions();
        continue;
      }
      if (token == kListenToken) {
        AcceptNew();
        continue;
      }
      const auto it = connections_.find(token);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(token);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
        if (connections_.find(token) == connections_.end()) continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
  }
}

void Server::AcceptNew() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: the backlog entry stays pending, and
        // level-triggered EPOLLIN would re-fire forever. Park the
        // listener until a connection closes.
        PauseListener();
      }
      return;  // EAGAIN, or a transient accept failure — next event retries
    }
    if (draining_ || connections_.size() >= options_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_refused;
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::HandleReadable(Connection* conn) {
  const std::uint64_t conn_id = conn->id;
  while (!conn->paused) {
    char buffer[16384];
    const ssize_t got = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (got > 0) {
      conn->in.append(buffer, static_cast<std::size_t>(got));
      ProcessInput(conn);
      continue;
    }
    if (got == 0) {
      conn->peer_closed = true;
      // A final line without a trailing newline is still a request
      // (batch pipes end that way); an oversized tail being discarded is
      // not.
      if (!conn->in.empty() && !conn->discarding && !draining_) {
        std::string line;
        line.swap(conn->in);
        HandleLine(conn, line);
      }
      conn->in.clear();
      if (conn->in_flight == 0 && conn->pending_out() == 0) {
        CloseConnection(conn_id);
        return;
      }
      // Stop polling for input: level-triggered EPOLLIN would spin on
      // EOF forever. Replies still flush via EPOLLOUT.
      PauseReading(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
}

void Server::ReportOversized(Connection* conn) {
  ++conn->line_number;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.parse_errors;
    ++stats_.oversized_lines;
  }
  Reply(conn, FormatErrorLine(U64(conn->line_number),
                              "line exceeds " + U64(kMaxRequestLineBytes) +
                                  " bytes",
                              kErrorKindParse));
}

void Server::ProcessInput(Connection* conn) {
  // Consume complete lines behind a cursor and erase the prefix once:
  // per-line front-erase would be quadratic in lines-per-chunk, on the
  // event-loop thread.
  std::size_t consumed = 0;
  while (!conn->paused) {
    const std::size_t newline = conn->in.find('\n', consumed);
    if (newline == std::string::npos) break;
    std::string line = conn->in.substr(consumed, newline - consumed);
    consumed = newline + 1;
    if (conn->discarding) {
      // Tail of the oversized line (already counted and answered).
      conn->discarding = false;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > kMaxRequestLineBytes) {
      ReportOversized(conn);
      continue;
    }
    HandleLine(conn, line);
    if (conn->in.empty()) {
      // BeginDrain (reachable through an admin line) dropped the buffer
      // under us; nothing left to consume.
      consumed = 0;
      break;
    }
  }
  if (consumed > 0) conn->in.erase(0, consumed);
  if (conn->paused) return;
  if (conn->discarding) {
    // Still inside an oversized line: swallow what has streamed in.
    conn->in.clear();
  } else if (conn->in.size() > kMaxRequestLineBytes) {
    // Over the cap with no newline in sight: answer now (same verdict a
    // complete over-limit line gets, so the reply does not depend on how
    // TCP chunked the bytes), swallow the rest as it arrives.
    ReportOversized(conn);
    conn->discarding = true;
    conn->in.clear();
  }
}

void Server::HandleLine(Connection* conn, const std::string& line) {
  ++conn->line_number;
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos || line[first] == '#') return;
  ParsedRequest request;
  std::string error;
  if (!ParseRequestLine(line, conn->line_number, &request, &error)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.parse_errors;
    }
    Reply(conn, FormatErrorLine(request.id_json, error, kErrorKindParse));
    return;
  }
  if (draining_) {
    // Parsed first so the reply echoes the request's own id — clients
    // correlate by id, and a synthesized line number would orphan this
    // error.
    Reply(conn, FormatErrorLine(request.id_json, "server is draining",
                                kErrorKindDraining));
    return;
  }
  if (request.kind == ParsedRequest::Kind::kAdmin) {
    HandleAdmin(conn, request);
    return;
  }
  SubmitQuery(conn, request);
}

void Server::SubmitQuery(Connection* conn, const ParsedRequest& request) {
  const std::string problem = engine_->Validate(request.query);
  if (!problem.empty()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.invalid_queries;
    }
    Reply(conn, FormatErrorLine(request.id_json, "invalid query: " + problem,
                                kErrorKindInvalid));
    return;
  }
  if (total_in_flight_ >= options_.max_in_flight) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.server_rejected;
    }
    Reply(conn,
          FormatErrorLine(request.id_json,
                          "server at capacity: " + U64(total_in_flight_) +
                              " queries in flight",
                          kErrorKindRejected));
    return;
  }
  // Fairness: global slots are free, but this connection already holds
  // its share of them — reject it (distinct message, so its operator
  // knows which limit bit) instead of letting one chatty client claim
  // every slot and starve the quiet ones.
  if (conn->in_flight >= per_conn_cap_) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.server_rejected_per_conn;
    }
    Reply(conn,
          FormatErrorLine(request.id_json,
                          "connection at capacity: " + U64(conn->in_flight) +
                              " queries in flight on this connection",
                          kErrorKindRejected));
    return;
  }
  ++total_in_flight_;
  ++conn->in_flight;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries_submitted;
  }
  // The callback owns everything it touches: a shared_ptr keeps the
  // completion queue alive past any server teardown, and the reply is
  // formatted on the worker thread, off the event loop. It fires exactly
  // once even when the solve throws (null result + error message), so
  // the in-flight slot is always returned.
  engine_->Submit(
      request.query,
      [completions = completions_, conn_id = conn->id,
       id_json = request.id_json,
       query = request.query](EngineResponse response) {
        std::string line =
            response.result != nullptr
                ? FormatResultLine(id_json, query, *response.result,
                                   response.cache_hit)
                : FormatErrorLine(id_json,
                                  "internal error: " +
                                      (response.error.empty()
                                           ? std::string("solver failed")
                                           : response.error),
                                  kErrorKindInternal);
        completions->Push(conn_id, std::move(line));
      });
}

void Server::HandleAdmin(Connection* conn, const ParsedRequest& request) {
  if (!options_.enable_admin) {
    Reply(conn, FormatErrorLine(request.id_json,
                                "admin commands are disabled on this server",
                                kErrorKindAdmin));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.admin_commands;
  }
  if (request.admin_verb == "ping") {
    Reply(conn, "{\"id\": " + request.id_json +
                    ", \"admin\": \"ping\", \"ok\": true}\n");
    return;
  }
  if (request.admin_verb == "drain") {
    // The acknowledgement is appended before the drain starts, so it is
    // flushed as part of the drain itself.
    Reply(conn, "{\"id\": " + request.id_json +
                    ", \"admin\": \"drain\", \"ok\": true}\n");
    drain_requested_.store(true, std::memory_order_relaxed);
    BeginDrain();
    return;
  }
  if (request.admin_verb == "stats") {
    const EngineStats engine_stats = engine_->stats();
    const ServerStats server_stats = stats();
    std::string reply = "{\"id\": " + request.id_json +
                        ", \"admin\": \"stats\", \"ok\": true, \"graph\": "
                        "{\"n\": " +
                        U64(engine_->graph().num_vertices()) + ", \"m\": " +
                        U64(engine_->graph().num_edges()) + "}, ";
    reply += "\"engine\": {\"queries\": " + U64(engine_stats.queries) +
             ", \"cache_hits\": " + U64(engine_stats.cache_hits) +
             ", \"cache_misses\": " + U64(engine_stats.cache_misses) +
             ", \"cache_coalesced\": " + U64(engine_stats.cache_coalesced) +
             ", \"cache_evictions\": " + U64(engine_stats.cache_evictions) +
             ", \"cache_uncacheable\": " +
             U64(engine_stats.cache_uncacheable) +
             ", \"cache_negative_hits\": " +
             U64(engine_stats.cache_negative_hits) +
             ", \"cache_expired\": " + U64(engine_stats.cache_expired) +
             ", \"cache_partial_kept\": " +
             U64(engine_stats.cache_partial_kept) +
             ", \"cache_partial_evicted\": " +
             U64(engine_stats.cache_partial_evicted) +
             ", \"cache_charge\": " + U64(engine_stats.cache_charge) +
             ", \"deltas_applied\": " + U64(engine_stats.deltas_applied) +
             "}, ";
    reply += "\"server\": {\"connections\": " + U64(connections_.size()) +
             ", \"in_flight\": " + U64(total_in_flight_) +
             ", \"connections_accepted\": " +
             U64(server_stats.connections_accepted) +
             ", \"connections_refused\": " +
             U64(server_stats.connections_refused) +
             ", \"queries_submitted\": " +
             U64(server_stats.queries_submitted) +
             ", \"responses_sent\": " + U64(server_stats.responses_sent) +
             ", \"responses_dropped\": " +
             U64(server_stats.responses_dropped) +
             ", \"parse_errors\": " + U64(server_stats.parse_errors) +
             ", \"invalid_queries\": " + U64(server_stats.invalid_queries) +
             ", \"server_rejected\": " + U64(server_stats.server_rejected) +
             ", \"server_rejected_per_conn\": " +
             U64(server_stats.server_rejected_per_conn) +
             ", \"admin_commands\": " + U64(server_stats.admin_commands) +
             ", \"oversized_lines\": " + U64(server_stats.oversized_lines) +
             "}}\n";
    Reply(conn, std::move(reply));
    return;
  }
  // apply_delta: load from disk, verify parentage, swap live. Runs on
  // the event-loop thread — intake pauses for the maintenance duration
  // (single-writer by construction), in-flight solves continue on the
  // pool against the pinned pre-delta state.
  GraphDelta delta;
  std::string error;
  if (!engine_->ApplyDeltaSnapshotFile(request.admin_path, &error, &delta)) {
    Reply(conn, FormatErrorLine(request.id_json, error, kErrorKindAdmin));
    return;
  }
  Reply(conn, "{\"id\": " + request.id_json +
                  ", \"admin\": \"apply_delta\", \"ok\": true, "
                  "\"inserts\": " +
                  U64(delta.insert_edges.size()) + ", \"deletes\": " +
                  U64(delta.delete_edges.size()) + ", \"reweights\": " +
                  U64(delta.weight_updates.size()) +
                  ", \"deltas_applied\": " +
                  U64(engine_->stats().deltas_applied) + "}\n");
}

void Server::Reply(Connection* conn, std::string line) {
  conn->out += line;
  if (conn->pending_out() > options_.max_write_buffer_bytes) {
    // Write backpressure: stop consuming requests from a peer that is
    // not consuming replies; the kernel receive buffer then fills and
    // the client's send() blocks — pressure propagates to the source.
    PauseReading(conn);
  }
  UpdateEpoll(conn);
}

void Server::DrainCompletions() {
  std::uint64_t counter = 0;
  [[maybe_unused]] const ssize_t got =
      ::read(completions_->wake_fd, &counter, sizeof(counter));
  std::deque<std::pair<std::uint64_t, std::string>> items;
  {
    std::lock_guard<std::mutex> lock(completions_->mutex);
    items.swap(completions_->items);
  }
  for (auto& [conn_id, line] : items) {
    if (total_in_flight_ > 0) --total_in_flight_;
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.responses_dropped;
      continue;
    }
    Connection* conn = it->second.get();
    if (conn->in_flight > 0) --conn->in_flight;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.responses_sent;
    }
    Reply(conn, std::move(line));
  }
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_grace_ms);
  if (listen_fd_ >= 0) {
    // Late connections are refused at the kernel: nothing is listening.
    if (!listener_paused_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [id, conn] : connections_) {
    // A partial line that never got its newline was never an accepted
    // request; drop it. Accepted (submitted) queries run to completion.
    conn->in.clear();
    conn->discarding = false;
    PauseReading(conn.get());
  }
}

void Server::MaybeFinishDrain() {
  if (!draining_) return;
  std::vector<std::uint64_t> flushed;
  for (const auto& [id, conn] : connections_) {
    if (conn->in_flight == 0 && conn->pending_out() == 0) {
      flushed.push_back(id);
    }
  }
  for (const std::uint64_t id : flushed) CloseConnection(id);
  // Queries of already-closed connections still count: wait them out so
  // engine callbacks never outlive Serve() unexpectedly.
  if (connections_.empty() && total_in_flight_ == 0) done_ = true;
}

void Server::HandleWritable(Connection* conn) {
  const std::uint64_t conn_id = conn->id;
  while (conn->pending_out() > 0) {
    const ssize_t sent =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->pending_out(), MSG_NOSIGNAL);
    if (sent > 0) {
      conn->out_offset += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > (1u << 20)) {
    // Partial flush with a megabyte of dead prefix: compact once.
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  if (conn->pending_out() == 0) {
    if (conn->paused && !draining_ && !conn->peer_closed) {
      // (peer_closed needs no resume: the EOF path already consumed or
      // dropped everything the socket will ever deliver.)
      ResumeReading(conn);
    }
    if ((conn->peer_closed || draining_) && conn->in_flight == 0 &&
        conn->pending_out() == 0) {
      CloseConnection(conn_id);
      return;
    }
  }
  UpdateEpoll(conn);
}

void Server::ForceCloseStragglers() {
  // Only connections whose peer has stopped *reading*: an unflushed
  // reply past the grace deadline is on the client. In-flight solves
  // are compute-bound and always waited out — a slow query is not a
  // reason to drop its (still deliverable) answer.
  std::vector<std::uint64_t> stragglers;
  for (const auto& [id, conn] : connections_) {
    if (conn->pending_out() > 0) stragglers.push_back(id);
  }
  if (!stragglers.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.drain_forced_closes += stragglers.size();
  }
  for (const std::uint64_t id : stragglers) CloseConnection(id);
}

void Server::PauseListener() {
  if (listener_paused_ || listen_fd_ < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  listener_paused_ = true;
}

void Server::ResumeListener() {
  if (!listener_paused_ || listen_fd_ < 0 || draining_) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenToken;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
    listener_paused_ = false;
  }
}

void Server::CloseConnection(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  connections_.erase(it);
  // A freed descriptor may unblock an accept4 that hit EMFILE.
  ResumeListener();
}

void Server::PauseReading(Connection* conn) {
  if (conn->paused) return;
  conn->paused = true;
  UpdateEpoll(conn);
}

void Server::ResumeReading(Connection* conn) {
  if (!conn->paused) return;
  conn->paused = false;
  // Lines buffered behind the pause first — they may immediately
  // re-pause us.
  ProcessInput(conn);
  UpdateEpoll(conn);
}

void Server::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn->paused) ev.events |= EPOLLIN;
  if (conn->pending_out() > 0) ev.events |= EPOLLOUT;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

}  // namespace ticl
