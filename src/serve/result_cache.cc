#include "serve/result_cache.h"

#include <algorithm>
#include <utility>

#include "core/community.h"
#include "util/check.h"

namespace ticl {

namespace {

/// Size-aware cache charge: total member ids held by the result, floored
/// at 1 so negative (zero-community) entries still occupy a slot's worth
/// of budget.
std::size_t ResultCharge(const SearchResult& result) {
  std::size_t members = 0;
  for (const Community& c : result.communities) members += c.members.size();
  return std::max<std::size_t>(members, 1);
}

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options)
    : member_budget_(options.member_budget),
      ttl_ms_(options.ttl_ms),
      clock_(options.clock_for_test) {}

std::chrono::steady_clock::time_point ResultCache::Now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

std::chrono::steady_clock::time_point ResultCache::ExpiryFromNow() const {
  using TimePoint = std::chrono::steady_clock::time_point;
  if (ttl_ms_ == 0) return TimePoint::max();
  const TimePoint now = Now();
  // Saturate instead of overflowing: a TTL too large for the clock's
  // representation means "effectively never expires" — wrapping would
  // instead land the deadline in the past and keep the cache forever
  // cold.
  const auto headroom = std::chrono::duration_cast<std::chrono::milliseconds>(
      TimePoint::max() - now);
  if (headroom.count() <= 0 ||
      ttl_ms_ >= static_cast<std::uint64_t>(headroom.count())) {
    return TimePoint::max();
  }
  return now + std::chrono::milliseconds(ttl_ms_);
}

std::shared_ptr<const SearchResult> ResultCache::Lookup(
    const std::string& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  if (ttl_ms_ != 0 && Now() >= it->second->expires_at) {
    ++counters_.expired;
    EraseEntry(it->second);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  if (it->second->result->communities.empty()) ++counters_.negative_hits;
  return it->second->result;
}

ResultCache::InsertOutcome ResultCache::Insert(
    const std::string& key, const CacheEntryMeta& meta,
    std::shared_ptr<const SearchResult> result) {
  TICL_CHECK_MSG(enabled(), "Insert on a disabled cache");
  TICL_CHECK_MSG(result != nullptr, "cannot cache a null result");
  if (map_.find(key) != map_.end()) return InsertOutcome::kDuplicate;
  const std::size_t charge = ResultCharge(*result);
  if (charge > member_budget_) return InsertOutcome::kUncacheable;
  lru_.push_front(Entry{key, meta, std::move(result), charge,
                        ExpiryFromNow()});
  map_.emplace(key, lru_.begin());
  charge_ += charge;
  while (charge_ > member_budget_) {
    auto victim = std::prev(lru_.end());
    ++counters_.evictions;
    EraseEntry(victim);
  }
  return InsertOutcome::kInserted;
}

void ResultCache::Clear() {
  lru_.clear();
  map_.clear();
  charge_ = 0;
}

void ResultCache::InvalidateForDelta(const DeltaImpact& impact) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (impact.Evicts(it->meta)) {
      ++counters_.partial_evicted;
      const auto victim = it++;
      EraseEntry(victim);
    } else {
      ++counters_.partial_kept;
      ++it;
    }
  }
}

std::shared_ptr<PendingSolve> ResultCache::FindPending(
    const std::string& key) const {
  const auto it = pending_.find(key);
  return it != pending_.end() ? it->second : nullptr;
}

void ResultCache::AddPending(const std::string& key,
                             std::shared_ptr<PendingSolve> pending) {
  const bool inserted =
      pending_.emplace(key, std::move(pending)).second;
  TICL_CHECK_MSG(inserted, "a solve for this key is already pending");
}

void ResultCache::RemovePending(
    const std::string& key, const std::shared_ptr<PendingSolve>& pending) {
  const auto it = pending_.find(key);
  if (it != pending_.end() && it->second == pending) pending_.erase(it);
}

void ResultCache::ClearPending() { pending_.clear(); }

void ResultCache::EraseEntry(std::list<Entry>::iterator it) {
  charge_ -= it->charge;
  map_.erase(it->key);
  lru_.erase(it);
}

}  // namespace ticl
