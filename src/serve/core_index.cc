#include "serve/core_index.h"

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "util/check.h"

namespace ticl {

namespace {
const VertexList kEmpty;
}  // namespace

CoreIndex::CoreIndex(const Graph& g) : g_(&g) {
  CoreDecompositionResult decomp = CoreDecomposition(g);
  core_ = std::move(decomp.core);
  degeneracy_ = decomp.degeneracy;
  cores_.resize(static_cast<std::size_t>(degeneracy_) + 1);
  // Exact per-level sizes first (suffix sums of the core-number histogram)
  // so each level allocates once.
  std::vector<std::size_t> at_least(static_cast<std::size_t>(degeneracy_) + 2,
                                    0);
  for (const VertexId c : core_) ++at_least[c];
  for (VertexId k = degeneracy_; k >= 1; --k) at_least[k] += at_least[k + 1];
  for (VertexId k = 1; k <= degeneracy_; ++k) cores_[k].reserve(at_least[k]);
  // One ascending sweep fills every level at once: v belongs to the maximal
  // k-core for every k <= core(v), and pushing in vertex order keeps each
  // level sorted without a per-level sort.
  const VertexId n = g.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId k = 1; k <= core_[v]; ++k) cores_[k].push_back(v);
  }
}

std::size_t CoreIndex::CoreSize(VertexId k) const {
  return CoreMembers(k).size();
}

const VertexList& CoreIndex::CoreMembers(VertexId k) const {
  TICL_CHECK_MSG(k >= 1, "CoreIndex answers k >= 1");
  if (k > degeneracy_) return kEmpty;
  return cores_[k];
}

std::vector<VertexList> CoreIndex::CoreComponents(VertexId k) const {
  const VertexList& members = CoreMembers(k);
  if (members.empty()) return {};
  return ComponentsOfSubset(*g_, members);
}

VertexList IndexedMaximalKCore(const CoreIndex* index, const Graph& g,
                               VertexId k) {
  if (index == nullptr) return MaximalKCore(g, k);
  TICL_CHECK_MSG(&index->graph() == &g,
                 "CoreIndex was built for a different graph");
  return index->CoreMembers(k);
}

std::vector<VertexList> IndexedKCoreComponents(const CoreIndex* index,
                                               const Graph& g, VertexId k) {
  if (index == nullptr) return KCoreComponents(g, k);
  TICL_CHECK_MSG(&index->graph() == &g,
                 "CoreIndex was built for a different graph");
  return index->CoreComponents(k);
}

}  // namespace ticl
