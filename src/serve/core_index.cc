#include "serve/core_index.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "util/check.h"

namespace ticl {

namespace {

constexpr std::size_t kSerializedHeaderBytes = 32;

/// Appends `value`'s bytes (little-endian on every supported target).
template <typename T>
void AppendValue(std::vector<unsigned char>* out, T value) {
  const auto* p = reinterpret_cast<const unsigned char*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
T ReadValue(const unsigned char* data, std::size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

}  // namespace

CoreIndex::CoreIndex(const Graph& g) : g_(&g), fingerprint_(g.fingerprint()) {
  CoreDecompositionResult decomp = CoreDecomposition(g);
  owned_core_ = std::move(decomp.core);
  degeneracy_ = decomp.degeneracy;
  BuildLevels();
}

std::unique_ptr<CoreIndex> CoreIndex::FromCoreNumbers(
    const Graph& g, std::vector<VertexId> core) {
  TICL_CHECK_MSG(core.size() == g.num_vertices(),
                 "core numbers do not match the graph");
  std::unique_ptr<CoreIndex> index(new CoreIndex());
  index->g_ = &g;
  index->fingerprint_ = g.fingerprint();
  index->owned_core_ = std::move(core);
  index->degeneracy_ = 0;
  for (const VertexId c : index->owned_core_) {
    index->degeneracy_ = std::max(index->degeneracy_, c);
  }
  index->BuildLevels();
  return index;
}

void CoreIndex::BuildLevels() {
  const std::size_t levels = static_cast<std::size_t>(degeneracy_) + 2;
  // Exact per-level sizes first (suffix sums of the core-number histogram)
  // so the flat member array is filled with one cursor sweep. at_least[k] =
  // |{v : core(v) >= k}| = size of the maximal k-core.
  std::vector<std::size_t> at_least(levels + 1, 0);
  for (const VertexId c : owned_core_) ++at_least[c];
  for (VertexId k = degeneracy_; k >= 1; --k) at_least[k] += at_least[k + 1];

  owned_level_offsets_.assign(levels, 0);
  for (VertexId k = 1; k <= degeneracy_; ++k) {
    owned_level_offsets_[k + 1] = owned_level_offsets_[k] + at_least[k];
  }
  owned_members_.resize(owned_level_offsets_[degeneracy_ + 1]);

  // One ascending sweep fills every level at once: v belongs to the maximal
  // k-core for every k <= core(v), and writing in vertex order keeps each
  // level sorted without a per-level sort.
  std::vector<std::uint64_t> cursor(owned_level_offsets_.begin(),
                                    owned_level_offsets_.end());
  const VertexId n = g_->num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId k = 1; k <= owned_core_[v]; ++k) {
      owned_members_[cursor[k]++] = v;
    }
  }

  core_ = owned_core_;
  level_offsets_ = owned_level_offsets_;
  members_ = owned_members_;
}

std::size_t CoreIndex::CoreSize(VertexId k) const {
  return CoreMembers(k).size();
}

std::span<const VertexId> CoreIndex::CoreMembers(VertexId k) const {
  TICL_CHECK_MSG(k >= 1, "CoreIndex answers k >= 1");
  if (k > degeneracy_) return {};
  return members_.subspan(level_offsets_[k],
                          level_offsets_[k + 1] - level_offsets_[k]);
}

std::vector<VertexList> CoreIndex::CoreComponents(VertexId k) const {
  const std::span<const VertexId> members = CoreMembers(k);
  if (members.empty()) return {};
  return ComponentsOfSubset(*g_, members);
}

std::size_t CoreIndex::SerializedSize() const {
  return kSerializedHeaderBytes +
         level_offsets_.size() * sizeof(std::uint64_t) +
         core_.size() * sizeof(VertexId) + members_.size() * sizeof(VertexId);
}

void CoreIndex::AppendSerialized(std::vector<unsigned char>* out) const {
  out->reserve(out->size() + SerializedSize());
  AppendValue(out, fingerprint_.num_vertices);
  AppendValue(out, fingerprint_.adjacency_len);
  AppendValue(out, fingerprint_.csr_hash);
  AppendValue(out, static_cast<std::uint32_t>(degeneracy_));
  AppendValue(out, std::uint32_t{0});  // reserved
  const auto append_array = [out](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    out->insert(out->end(), p, p + bytes);
  };
  append_array(level_offsets_.data(),
               level_offsets_.size() * sizeof(std::uint64_t));
  append_array(core_.data(), core_.size() * sizeof(VertexId));
  append_array(members_.data(), members_.size() * sizeof(VertexId));
}

std::unique_ptr<CoreIndex> CoreIndex::Deserialize(const Graph& g,
                                                  const unsigned char* data,
                                                  std::size_t size,
                                                  bool copy_data,
                                                  std::string* error) {
  const auto fail = [error](const char* what) -> std::unique_ptr<CoreIndex> {
    *error = std::string("core index: ") + what;
    return nullptr;
  };
  if (size < kSerializedHeaderBytes) return fail("payload too small");

  GraphFingerprint stored;
  stored.num_vertices = ReadValue<std::uint64_t>(data, 0);
  stored.adjacency_len = ReadValue<std::uint64_t>(data, 8);
  stored.csr_hash = ReadValue<std::uint64_t>(data, 16);
  if (!(stored == g.fingerprint())) {
    return fail("fingerprint does not match the graph (stale or foreign "
                "index)");
  }
  const auto degeneracy = ReadValue<std::uint32_t>(data, 24);
  const std::uint64_t n = stored.num_vertices;
  if (n == 0 ? degeneracy != 0 : degeneracy >= n) {
    return fail("degeneracy out of range");
  }

  const std::uint64_t levels = static_cast<std::uint64_t>(degeneracy) + 2;
  std::uint64_t expected = kSerializedHeaderBytes + levels * 8 + n * 4;
  if (size < expected) return fail("payload truncated (level table)");
  // The level table and member/core arrays are read via spans below, so
  // the base must be 8-byte aligned (the snapshot layer aligns sections).
  if (reinterpret_cast<std::uintptr_t>(data) % 8 != 0) {
    return fail("payload not 8-byte aligned");
  }
  const auto* level_offsets = reinterpret_cast<const std::uint64_t*>(
      data + kSerializedHeaderBytes);
  if (level_offsets[0] != 0 || level_offsets[1] != 0) {
    return fail("level table does not start at 0");
  }
  for (std::uint64_t k = 1; k + 1 < levels; ++k) {
    if (level_offsets[k] > level_offsets[k + 1]) {
      return fail("level table not monotone");
    }
  }
  const std::uint64_t total = level_offsets[levels - 1];
  if (total > (size - expected) / 4) {
    return fail("declared member count exceeds payload");
  }
  expected += total * 4;
  if (size != expected) return fail("payload size mismatch");

  const auto* core =
      reinterpret_cast<const VertexId*>(data + kSerializedHeaderBytes +
                                        levels * 8);
  const auto* members = core + n;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (core[v] > degeneracy) return fail("core number exceeds degeneracy");
  }
  // Per level: strictly ascending vertex ids, every member's core number at
  // least k. Together with the exact per-level counts below, this pins the
  // level to exactly {v : core(v) >= k}, so a checksum-passing but
  // inconsistent section cannot smuggle wrong seeds into the solvers.
  std::vector<std::uint64_t> at_least(levels + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) ++at_least[core[v]];
  for (std::uint64_t k = degeneracy; k >= 1; --k) {
    at_least[k] += at_least[k + 1];
  }
  for (std::uint64_t k = 1; k <= degeneracy; ++k) {
    const std::uint64_t begin = level_offsets[k];
    const std::uint64_t end = level_offsets[k + 1];
    if (end - begin != at_least[k]) return fail("level size inconsistent");
    for (std::uint64_t i = begin; i < end; ++i) {
      if (members[i] >= n) return fail("member id out of range");
      if (core[members[i]] < k) return fail("member below level core");
      if (i > begin && members[i - 1] >= members[i]) {
        return fail("level members not strictly ascending");
      }
    }
  }

  std::unique_ptr<CoreIndex> index(new CoreIndex());
  index->g_ = &g;
  index->fingerprint_ = stored;
  index->degeneracy_ = static_cast<VertexId>(degeneracy);
  if (copy_data) {
    index->owned_level_offsets_.assign(level_offsets, level_offsets + levels);
    index->owned_core_.assign(core, core + n);
    index->owned_members_.assign(members, members + total);
    index->level_offsets_ = index->owned_level_offsets_;
    index->core_ = index->owned_core_;
    index->members_ = index->owned_members_;
  } else {
    index->level_offsets_ = {level_offsets, levels};
    index->core_ = {core, n};
    index->members_ = {members, total};
  }
  return index;
}

VertexList IndexedMaximalKCore(const CoreIndex* index, const Graph& g,
                               VertexId k) {
  if (index == nullptr) return MaximalKCore(g, k);
  TICL_CHECK_MSG(index->fingerprint() == g.fingerprint(),
                 "CoreIndex was built for a different graph");
  const std::span<const VertexId> members = index->CoreMembers(k);
  return VertexList(members.begin(), members.end());
}

std::vector<VertexList> IndexedKCoreComponents(const CoreIndex* index,
                                               const Graph& g, VertexId k) {
  if (index == nullptr) return KCoreComponents(g, k);
  TICL_CHECK_MSG(index->fingerprint() == g.fingerprint(),
                 "CoreIndex was built for a different graph");
  return index->CoreComponents(k);
}

}  // namespace ticl
