#include "serve/mapped_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "serve/snapshot_format.h"
#include "util/check.h"

namespace ticl {

namespace fmt = snapshot_internal;

std::unique_ptr<MappedSnapshot> MappedSnapshot::Open(const std::string& path,
                                                     std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = "snapshot: cannot open " + path;
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    *error = "snapshot: cannot stat " + path;
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < fmt::kV2HeaderBytes + fmt::kChecksumBytes) {
    *error = "snapshot: truncated file (no room for header)";
    ::close(fd);
    return nullptr;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    *error = "snapshot: mmap failed for " + path;
    return nullptr;
  }

  std::unique_ptr<MappedSnapshot> snapshot(new MappedSnapshot());
  snapshot->data_ = static_cast<unsigned char*>(map);
  snapshot->size_ = size;

  // Give mmap users the same version diagnostics LoadSnapshot gives, plus
  // a hint that v1 files need a re-save (their weights section is not
  // 8-aligned, so they cannot be pointer-cast safely).
  if (std::memcmp(snapshot->data_, fmt::kMagic, sizeof(fmt::kMagic)) != 0) {
    *error = "snapshot: bad magic (not a TICL snapshot)";
    return nullptr;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, snapshot->data_ + 8, sizeof(version));
  if (version == 1) {
    *error =
        "snapshot: mmap loading requires format v2; re-save this v1 file "
        "with the current writer";
    return nullptr;
  }

  fmt::ParsedSnapshot parsed;
  if (!fmt::ParseV2(snapshot->data_, size, &parsed, error)) return nullptr;
  snapshot->graph_ =
      Graph::FromExternal(parsed.offsets, parsed.adjacency, parsed.weights);
  if (parsed.core_index != nullptr) {
    // A section that fails validation (stale or foreign despite the
    // checksum) degrades to "no index" rather than failing the open —
    // the same recovery the copy-load path applies, so a snapshot never
    // serves in one mode and is rejected in the other. Consumers rebuild
    // the index when has_core_index() is false.
    std::string index_error;
    snapshot->index_ =
        CoreIndex::Deserialize(snapshot->graph_, parsed.core_index,
                               parsed.core_index_size,
                               /*copy_data=*/false, &index_error);
  }
  return snapshot;
}

MappedSnapshot::~MappedSnapshot() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

const CoreIndex& MappedSnapshot::core_index() const {
  TICL_CHECK_MSG(index_ != nullptr, "snapshot has no core_index section");
  return *index_;
}

}  // namespace ticl
