// Streaming network front end: newline-delimited JSON over TCP, driving
// QueryEngine::Submit with real backpressure.
//
// One epoll event loop owns every socket; solver work never runs on it —
// queries go to the engine's pool via the callback Submit and come back
// through a completion queue + eventfd wake-up. Three mechanisms bound
// the damage any client (or all of them together) can do:
//
//   * Admission control — at most `max_in_flight` queries are inside the
//     engine at once, and no single connection may hold more than
//     `max_in_flight_per_conn` of those slots (default: a quarter of the
//     global cap), so one chatty client cannot starve the rest. Excess
//     load is *rejected immediately* with a structured JSON error
//     ("kind": "rejected", counted in ServerStats::server_rejected /
//     server_rejected_per_conn) instead of queueing without bound or
//     stalling the loop.
//   * Write backpressure — a connection whose reply buffer exceeds
//     `max_write_buffer_bytes` stops being read until the peer drains
//     it; a slow reader throttles itself, not the server.
//   * Line cap — at most kMaxRequestLineBytes are buffered while looking
//     for a newline; an oversized line gets an error reply and is
//     discarded up to the next newline, after which the stream resumes.
//
// Graceful drain (RequestDrain — async-signal-safe, wired to SIGTERM by
// tools/ticl_served, also reachable via the "drain" admin command): the
// listener closes so late connections are refused, no further requests
// are read, every in-flight query completes and its reply is flushed,
// then Serve() returns. No accepted query's result is dropped or
// duplicated.
//
// Admin commands (flat JSON lines carrying an "admin" key) let an
// operator steer a running server: "apply_delta" loads a delta snapshot
// from disk, verifies its parent fingerprint and swaps it in live via
// QueryEngine::ApplyDelta — queries keep flowing, no restart; "stats"
// reports engine + server counters; "drain"/"ping" do what they say.
// Delta maintenance runs on the event-loop thread: accepting new work
// pauses for its duration (in-flight solves continue on the pool), which
// is the intended single-writer behavior.

#ifndef TICL_SERVE_SERVER_H_
#define TICL_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/engine.h"
#include "serve/protocol.h"

namespace ticl {

struct ServerOptions {
  /// Address to bind; default loopback-only (serving the open internet
  /// is an explicit operator decision, e.g. --bind 0.0.0.0).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Accepted sockets beyond this are closed immediately.
  std::size_t max_connections = 1024;
  /// Admission control: queries inside the engine at once, across all
  /// connections. Excess queries are rejected with a JSON error.
  std::size_t max_in_flight = 256;
  /// Per-connection fairness cap: queries one connection may have inside
  /// the engine at once. 0 = auto (max_in_flight / 4, floored at 1), so
  /// one chatty client can never claim every global slot and starve the
  /// others. Excess queries from that connection are rejected with the
  /// same "rejected" error kind (a distinct message, counted in
  /// ServerStats::server_rejected_per_conn).
  std::size_t max_in_flight_per_conn = 0;
  /// Per-connection reply-buffer high-water mark; reading from the
  /// connection pauses above it and resumes once fully flushed.
  std::size_t max_write_buffer_bytes = 4u << 20;
  /// Admin commands ("apply_delta", "stats", "drain", "ping"). Disable
  /// when untrusted clients share the port.
  bool enable_admin = true;
  /// Graceful-drain grace period: a connection that still has not read
  /// its replies this many milliseconds after the drain began is
  /// force-closed, so one stalled peer cannot block shutdown forever.
  /// 0 waits indefinitely. In-flight solves are always waited out (they
  /// are compute-bound and finish); only the flush wait is bounded.
  unsigned drain_grace_ms = 10000;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  /// Closed at accept time: connection table full.
  std::uint64_t connections_refused = 0;
  std::uint64_t queries_submitted = 0;
  std::uint64_t responses_sent = 0;
  /// Completions whose connection had already gone away.
  std::uint64_t responses_dropped = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t invalid_queries = 0;
  /// Queries rejected by global admission control (max_in_flight).
  std::uint64_t server_rejected = 0;
  /// Queries rejected by the per-connection fairness cap
  /// (max_in_flight_per_conn) — the offender hit its own ceiling while
  /// global slots may still have been free.
  std::uint64_t server_rejected_per_conn = 0;
  std::uint64_t admin_commands = 0;
  /// Lines discarded for exceeding kMaxRequestLineBytes.
  std::uint64_t oversized_lines = 0;
  /// Connections force-closed at the drain deadline with replies still
  /// unflushed (the peer stopped reading).
  std::uint64_t drain_forced_closes = 0;
};

/// One server per engine. Not copyable. Lifecycle: Start() binds and
/// listens (port() is valid afterwards), Serve() runs the event loop on
/// the calling thread until a drain completes. stats() and
/// RequestDrain() are safe from any thread; RequestDrain is also safe
/// from a signal handler.
class Server {
 public:
  explicit Server(QueryEngine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Returns false with *error on failure (bad
  /// address, port in use, ...). Call once.
  bool Start(std::string* error);

  /// Bound port (after Start); resolves port 0 to the real ephemeral one.
  std::uint16_t port() const { return port_; }

  /// Event loop; blocks until RequestDrain() (or the "drain" admin
  /// command) and the subsequent drain complete.
  void Serve();

  /// Initiates graceful drain. Async-signal-safe: an atomic flag plus an
  /// eventfd write. Idempotent.
  void RequestDrain();

  ServerStats stats() const;

 private:
  struct Connection;

  /// The callback-facing half. Engine callbacks hold a shared_ptr to
  /// this (not to the Server), so a completion racing server teardown
  /// lands in a queue that is still alive and wakes an eventfd that is
  /// still open, and is simply never delivered.
  struct CompletionQueue {
    std::mutex mutex;
    std::deque<std::pair<std::uint64_t, std::string>> items;  // conn id, line
    int wake_fd = -1;
    ~CompletionQueue();
    void Push(std::uint64_t conn_id, std::string line);
    void Wake();
  };

  void AcceptNew();
  void HandleReadable(Connection* conn);
  void ProcessInput(Connection* conn);
  void ReportOversized(Connection* conn);
  void HandleWritable(Connection* conn);
  void HandleLine(Connection* conn, const std::string& line);
  void HandleAdmin(Connection* conn, const ParsedRequest& request);
  void SubmitQuery(Connection* conn, const ParsedRequest& request);
  void Reply(Connection* conn, std::string line);
  void DrainCompletions();
  void BeginDrain();
  void MaybeFinishDrain();
  void ForceCloseStragglers();
  void PauseListener();
  void ResumeListener();
  void CloseConnection(std::uint64_t conn_id);
  void PauseReading(Connection* conn);
  void ResumeReading(Connection* conn);
  void UpdateEpoll(Connection* conn);

  QueryEngine* const engine_;
  const ServerOptions options_;
  /// Resolved max_in_flight_per_conn (0-auto applied).
  const std::size_t per_conn_cap_;
  const std::shared_ptr<CompletionQueue> completions_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;  // event-loop thread only
  bool done_ = false;      // event-loop thread only
  /// Listener temporarily out of epoll because accept4 hit
  /// EMFILE/ENFILE; re-armed when a connection closes. Prevents a
  /// level-triggered busy-spin on a backlog nothing can accept.
  bool listener_paused_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::uint64_t next_conn_id_ = 2;  // 0 = wake fd, 1 = listen fd
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::size_t total_in_flight_ = 0;  // event-loop thread only

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace ticl

#endif  // TICL_SERVE_SERVER_H_
