// QueryEngine: the index-and-serve layer over Solve().
//
// One engine owns one immutable weighted graph plus the precomputed
// CoreIndex for it, an LRU cache of finished results keyed on the
// canonicalized query, and a fixed thread pool. Callers either Run()
// synchronously (the calling thread does the graph work) or Submit() to
// the pool and collect a future. Either way the answer is exactly what a
// direct Solve() on the same graph would return — the index only removes
// the per-query re-peel, it never changes the candidate stream — which
// the serve tests assert result-for-result.
//
// Thread safety: every public method is safe to call concurrently. Results
// are handed out as shared_ptr<const SearchResult>; cached entries are
// shared, never copied per hit.

#ifndef TICL_SERVE_ENGINE_H_
#define TICL_SERVE_ENGINE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/query.h"
#include "core/result.h"
#include "core/search.h"
#include "graph/graph.h"
#include "serve/core_index.h"
#include "serve/thread_pool.h"

namespace ticl {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// LRU result-cache entries; 0 disables caching.
  std::size_t cache_capacity = 1024;
  /// Base solver configuration. The engine installs its own CoreIndex into
  /// this before every dispatch; any caller-supplied core_index is ignored.
  SolveOptions solve;
};

struct EngineStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// One answered query. `result` is shared with the cache — never mutated
/// after construction.
struct EngineResponse {
  std::shared_ptr<const SearchResult> result;
  bool cache_hit = false;
};

/// Canonical cache key: two queries map to the same key iff Solve() treats
/// them identically (inactive aggregation parameters are normalized away,
/// e.g. alpha is only part of the key under sum-surplus). Exposed for the
/// tests and for external sharding layers that need a stable query hash.
std::string CanonicalQueryKey(const Query& query);

class QueryEngine {
 public:
  /// Takes ownership of the (weighted) graph and builds the core index.
  explicit QueryEngine(Graph graph, EngineOptions options = {});

  const Graph& graph() const { return graph_; }
  const CoreIndex& core_index() const { return index_; }
  unsigned num_threads() const { return pool_.num_threads(); }

  /// ValidateQuery against the engine's graph ("" = fine). Callers should
  /// gate on this; Run/Submit TICL_CHECK-abort on invalid queries just
  /// like Solve().
  std::string Validate(const Query& query) const;

  /// Answers on the calling thread (cache -> indexed Solve -> cache fill).
  EngineResponse Run(const Query& query);

  /// Queues the query on the pool.
  std::future<EngineResponse> Submit(const Query& query);

  /// Cumulative counters (cache_hits + cache_misses == queries).
  EngineStats stats() const;

 private:
  std::shared_ptr<const SearchResult> CacheLookup(const std::string& key);
  void CacheInsert(const std::string& key,
                   std::shared_ptr<const SearchResult> result);

  const Graph graph_;
  const CoreIndex index_;
  SolveOptions solve_options_;
  std::size_t cache_capacity_;

  mutable std::mutex mutex_;
  /// MRU-first recency list; the map points into it.
  std::list<std::pair<std::string, std::shared_ptr<const SearchResult>>>
      lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> cache_;
  EngineStats stats_;

  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace ticl

#endif  // TICL_SERVE_ENGINE_H_
