// QueryEngine: the index-and-serve layer over Solve().
//
// One engine serves one weighted graph plus the CoreIndex for it, an LRU
// cache of finished results keyed on the canonicalized query, and a fixed
// thread pool. The graph comes from one of two places:
//
//   QueryEngine(graph, options)       — takes ownership of a built graph
//                                       and runs the decomposition itself.
//   QueryEngine::OpenSnapshot(...)    — serves a snapshot file. In kMmap
//                                       mode the CSR arrays, weights and
//                                       (when persisted) the core index
//                                       are used straight from the
//                                       mapping: start-up performs no
//                                       copy of the graph and, with a
//                                       persisted index, no decomposition.
//
// The served graph is immutable between updates, but the engine itself is
// dynamic: ApplyDelta() takes a GraphDelta (edge inserts/deletes, weight
// updates), rebuilds the CSR backend, maintains the core index with the
// order-based algorithm (O(affected subgraph), not a fresh O(n + m)
// decomposition), invalidates the result cache and atomically swaps the
// serving state. Queries running concurrently finish against the state
// they started with — each query pins a shared snapshot of
// (graph, index, solve options), so a swap never pulls memory out from
// under a solver; the old state is freed when its last query completes.
//
// Callers either Run() synchronously (the calling thread does the graph
// work) or Submit() to the pool and collect a future. Either way the
// answer is exactly what a direct Solve() on the same graph would return —
// the index only removes the per-query re-peel, it never changes the
// candidate stream — which the serve tests assert result-for-result.
// Concurrent misses on the same canonical key are coalesced: the first
// runs Solve, the rest block on its pending future instead of repeating
// seconds of graph work.
//
// Thread safety: every public method is safe to call concurrently.
// Results are handed out as shared_ptr<const SearchResult>; cached
// entries are shared, never copied per hit. References returned by
// graph() / core_index() stay valid until the *next* ApplyDelta, not
// forever — callers that interleave queries with updates should finish
// reading before applying.

#ifndef TICL_SERVE_ENGINE_H_
#define TICL_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/result.h"
#include "core/search.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "serve/core_index.h"
#include "serve/mapped_snapshot.h"
#include "serve/thread_pool.h"

namespace ticl {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// LRU result-cache budget, measured in cached community members: each
  /// entry is charged the total member count of its result (minimum 1, so
  /// empty results still cost something). Size-aware accounting, because
  /// results vary from a handful of ids to graph-sized communities — an
  /// entry-count cap would let a few huge results blow the memory budget.
  /// A single result larger than the whole budget is not cached at all
  /// (counted in EngineStats::cache_uncacheable). 0 disables caching.
  std::size_t cache_member_budget = 1u << 20;
  /// Base solver configuration. The engine installs its own CoreIndex into
  /// this before every dispatch; any caller-supplied core_index is ignored.
  SolveOptions solve;
  /// Test seam: when set, invoked on the solving thread right before a
  /// cache-miss Solve() runs. Lets the dedup tests hold a solve open
  /// deterministically. Never set this in production.
  std::function<void()> solve_started_hook_for_test;
};

struct EngineStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Queries that found a miss for their key already in flight and waited
  /// for its result instead of re-running Solve.
  /// cache_hits + cache_misses + cache_coalesced == queries.
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_evictions = 0;
  /// Results served uncached because their member charge alone exceeded
  /// the whole cache budget (silent before; now observable).
  std::uint64_t cache_uncacheable = 0;
  /// Current total charge (member count) of resident cache entries.
  std::uint64_t cache_charge = 0;
  /// Completed ApplyDelta() calls (each one cleared the cache).
  std::uint64_t deltas_applied = 0;
};

/// One answered query. `result` is shared with the cache — never mutated
/// after construction. `cache_hit` is true when no Solve ran for this
/// call (a resident entry or a coalesced in-flight miss served it).
/// `error` is only ever non-empty on the callback Submit path: it
/// carries the message of an exception Run() threw (result is null
/// then). The future/Run paths propagate exceptions instead.
struct EngineResponse {
  std::shared_ptr<const SearchResult> result;
  bool cache_hit = false;
  std::string error;
};

/// How OpenSnapshot materializes the file.
enum class SnapshotLoadMode {
  /// Copy the sections into owned heap arrays (accepts v1 and v2 files).
  kCopy,
  /// Zero-copy mmap view (requires a v2 file; start-up is O(1) copies).
  kMmap,
};

/// Canonical cache key: two queries map to the same key iff Solve() treats
/// them identically (inactive aggregation parameters are normalized away,
/// e.g. alpha is only part of the key under sum-surplus). Exposed for the
/// tests and for external sharding layers that need a stable query hash.
std::string CanonicalQueryKey(const Query& query);

class QueryEngine {
 public:
  /// Takes ownership of the (weighted) graph and builds the core index.
  explicit QueryEngine(Graph graph, EngineOptions options = {});

  /// Serves a snapshot file. Uses the persisted core index when the
  /// snapshot carries one — both modes skip the decomposition then (kMmap
  /// views it in place, kCopy deserializes a copy); it is rebuilt from
  /// scratch only for index-less files. Returns nullptr and sets *error
  /// when the file is unreadable, invalid, has no weights, or the solve
  /// options are malformed (e.g. epsilon outside [0, 1)).
  static std::unique_ptr<QueryEngine> OpenSnapshot(const std::string& path,
                                                   SnapshotLoadMode mode,
                                                   EngineOptions options,
                                                   std::string* error);

  /// Current serving graph / index. Valid until the next ApplyDelta.
  const Graph& graph() const;
  const CoreIndex& core_index() const;
  unsigned num_threads() const { return pool_.num_threads(); }

  /// True while the serving graph is a zero-copy view over a mapped
  /// snapshot (ApplyDelta rebuilds into heap arrays, clearing this).
  bool snapshot_mapped() const;

  /// True when the serving core index was loaded from the snapshot
  /// instead of being recomputed at start-up (cleared by ApplyDelta).
  bool index_from_snapshot() const;

  /// ValidateQuery against the engine's graph ("" = fine). Callers should
  /// gate on this; Run/Submit TICL_CHECK-abort on invalid queries just
  /// like Solve().
  std::string Validate(const Query& query) const;

  /// Answers on the calling thread (cache -> coalesce -> indexed Solve ->
  /// cache fill).
  EngineResponse Run(const Query& query);

  /// Queues the query on the pool. During teardown, when the pool no
  /// longer accepts work, the query runs inline on the calling thread
  /// instead of crashing; the returned future is valid either way.
  std::future<EngineResponse> Submit(const Query& query);

  /// Callback form for event-driven front ends (futures cannot be polled
  /// by an epoll loop): queues the query and invokes `done(response)` on
  /// the worker thread that answered it — or inline on the calling
  /// thread when the pool is already shutting down. `done` is invoked
  /// exactly once even when the solve throws (the exception is caught
  /// and reported via EngineResponse::error with a null result), so a
  /// caller counting in-flight work never leaks a slot. `done` itself
  /// must not throw and should stay cheap; it runs on a pool worker.
  void Submit(const Query& query, std::function<void(EngineResponse)> done);

  /// Applies a delta to the serving graph: validates it against the
  /// current graph, rebuilds the CSR backend, maintains the CoreIndex
  /// incrementally (order-based, O(affected subgraph)), invalidates the
  /// result cache and in-flight coalescing map, and atomically swaps the
  /// serving state. In-flight queries complete against the pre-delta
  /// state; queries arriving after the swap see the new graph. Returns
  /// false and sets *error when the delta does not apply cleanly (the
  /// serving state is then untouched). Concurrent ApplyDelta calls are
  /// serialized.
  bool ApplyDelta(const GraphDelta& delta, std::string* error);

  /// Loads a delta snapshot file, verifies its recorded parent
  /// fingerprint against the current serving graph (a mis-ordered or
  /// foreign delta fails here, before any mutation), then ApplyDelta()s
  /// it. One shared path for start-up --delta chains and the network
  /// server's live apply_delta admin command. On success *applied (when
  /// non-null) receives the delta for reporting.
  bool ApplyDeltaSnapshotFile(const std::string& path, std::string* error,
                              GraphDelta* applied = nullptr);

  /// Cumulative counters.
  EngineStats stats() const;

 private:
  /// Everything a query needs, pinned for its whole execution. Swapped
  /// wholesale by ApplyDelta; retired states are freed by the last query
  /// still holding them.
  struct ServingState {
    std::unique_ptr<MappedSnapshot> mapped;  // null unless mmap-backed
    Graph owned_graph;                       // empty when mapped
    std::unique_ptr<const CoreIndex> owned_index;  // null when mapped w/ idx
    const Graph* graph = nullptr;
    const CoreIndex* index = nullptr;
    bool index_from_snapshot = false;
    SolveOptions solve;  // base options with `index` installed
  };

  struct CacheEntry {
    std::string key;
    std::shared_ptr<const SearchResult> result;
    std::size_t charge;
  };

  /// A cache miss in flight: later arrivals for the same key wait on the
  /// future instead of re-running Solve.
  struct PendingSolve {
    std::promise<std::shared_ptr<const SearchResult>> promise;
    std::shared_future<std::shared_ptr<const SearchResult>> future =
        promise.get_future().share();
  };

  QueryEngine(std::unique_ptr<MappedSnapshot> mapped, Graph owned_graph,
              const std::vector<unsigned char>& index_payload,
              const EngineOptions& options);

  std::shared_ptr<const ServingState> CurrentState() const;
  /// Inserts under mutex_ (already held). Handles budget, duplicate keys,
  /// oversized results and eviction.
  void CacheInsertLocked(const std::string& key,
                         const std::shared_ptr<const SearchResult>& result);

  SolveOptions base_solve_options_;
  std::size_t cache_member_budget_;
  std::function<void()> solve_started_hook_for_test_;

  mutable std::mutex mutex_;
  std::shared_ptr<const ServingState> state_;  // guarded by mutex_
  /// Bumped by every ApplyDelta; results computed under an older
  /// generation are not inserted into the (already invalidated) cache.
  std::uint64_t generation_ = 0;
  std::unordered_map<std::string, std::shared_ptr<PendingSolve>> pending_;
  /// MRU-first recency list; the map points into it.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
  std::size_t cache_charge_ = 0;
  EngineStats stats_;

  /// Serializes ApplyDelta callers (mutex_ alone can't: the rebuild runs
  /// outside it so queries keep flowing).
  std::mutex apply_mutex_;

  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace ticl

#endif  // TICL_SERVE_ENGINE_H_
