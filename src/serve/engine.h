// QueryEngine: the index-and-serve layer over Solve().
//
// One engine serves one weighted graph plus the CoreIndex for it, an LRU
// cache of finished results keyed on the canonicalized query, and a fixed
// thread pool. The graph comes from one of two places:
//
//   QueryEngine(graph, options)       — takes ownership of a built graph
//                                       and runs the decomposition itself.
//   QueryEngine::OpenSnapshot(...)    — serves a snapshot file. In kMmap
//                                       mode the CSR arrays, weights and
//                                       (when persisted) the core index
//                                       are used straight from the
//                                       mapping: start-up performs no
//                                       copy of the graph and, with a
//                                       persisted index, no decomposition.
//
// The served graph is immutable between updates, but the engine itself is
// dynamic: ApplyDelta() takes a GraphDelta (edge inserts/deletes, weight
// updates), rebuilds the CSR backend, maintains the core index with the
// order-based algorithm (O(affected subgraph), not a fresh O(n + m)
// decomposition), invalidates the result cache *partially* — only entries
// whose k-level the delta could have perturbed are dropped (see
// serve/result_cache.h for the keep rule and its soundness argument) —
// and atomically swaps the serving state. Queries running concurrently
// finish against the state they started with — each query pins a shared
// snapshot of (graph, index, solve options), so a swap never pulls memory
// out from under a solver; the old state is freed when its last query
// completes.
//
// Callers either Run() synchronously (the calling thread does the graph
// work) or Submit() to the pool and collect a future. Either way the
// answer is exactly what a direct Solve() on the same graph would return —
// the index only removes the per-query re-peel, it never changes the
// candidate stream — which the serve tests assert result-for-result.
// Concurrent misses on the same canonical key are coalesced: the first
// runs Solve, the rest block on its pending future instead of repeating
// seconds of graph work.
//
// Thread safety: every public method is safe to call concurrently.
// Results are handed out as shared_ptr<const SearchResult>; cached
// entries are shared, never copied per hit. References returned by
// graph() / core_index() stay valid until the *next* ApplyDelta, not
// forever — callers that interleave queries with updates should finish
// reading before applying.

#ifndef TICL_SERVE_ENGINE_H_
#define TICL_SERVE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/query.h"
#include "core/result.h"
#include "core/search.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "serve/core_index.h"
#include "serve/mapped_snapshot.h"
#include "serve/result_cache.h"
#include "serve/thread_pool.h"

namespace ticl {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// LRU result-cache budget, measured in cached community members: each
  /// entry is charged the total member count of its result (minimum 1, so
  /// empty results still cost something). Size-aware accounting, because
  /// results vary from a handful of ids to graph-sized communities — an
  /// entry-count cap would let a few huge results blow the memory budget.
  /// A single result larger than the whole budget is not cached at all
  /// (counted in EngineStats::cache_uncacheable). 0 disables caching.
  std::size_t cache_member_budget = 1u << 20;
  /// Per-entry TTL in milliseconds (0 = cached answers never expire).
  /// Useful when the serving graph is refreshed out of band and bounded
  /// staleness is acceptable; expiry is lazy, on lookup.
  std::uint64_t cache_ttl_ms = 0;
  /// When true (default), ApplyDelta evicts only the cache entries whose
  /// k-level the delta could have perturbed; false restores the
  /// wholesale clear (operator kill-switch, and the baseline the cache
  /// benchmarks compare against).
  bool cache_partial_invalidation = true;
  /// Base solver configuration. The engine installs its own CoreIndex into
  /// this before every dispatch; any caller-supplied core_index is ignored.
  SolveOptions solve;
  /// Test seam: when set, invoked on the solving thread right before a
  /// cache-miss Solve() runs. Lets the dedup tests hold a solve open
  /// deterministically. Never set this in production.
  std::function<void()> solve_started_hook_for_test;
  /// Test seam: time source for cache TTL, so expiry tests advance a fake
  /// clock instead of sleeping. Never set this in production.
  CacheClock cache_clock_for_test;
};

struct EngineStats {
  /// Every query lands in exactly one of cache_hits, cache_misses,
  /// cache_coalesced or cache_uncacheable:
  ///   hits        served from a resident entry (negative ones included),
  ///   coalesced   waited on another caller's in-flight solve,
  ///   misses      ran Solve and the answer was cacheable (a result
  ///               computed against a just-retired serving state stays a
  ///               miss — it answered, it just may not seed the cache),
  ///   uncacheable ran Solve but the answer could never be cached: the
  ///               cache is disabled, or the result's member charge alone
  ///               exceeds the whole budget.
  /// cache_hits + cache_misses + cache_coalesced + cache_uncacheable
  /// == queries; the engine tests assert this after mixed workloads.
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_coalesced = 0;
  std::uint64_t cache_uncacheable = 0;
  /// Entries pushed out by the LRU budget sweep.
  std::uint64_t cache_evictions = 0;
  /// Hits served from a negative (zero-community) entry — a subset of
  /// cache_hits.
  std::uint64_t cache_negative_hits = 0;
  /// Lookups that found an entry past its TTL (dropped; the query then
  /// counts as a miss).
  std::uint64_t cache_expired = 0;
  /// Partial-invalidation outcomes across all deltas: entries a delta
  /// provably could not have changed (kept, still servable) vs entries
  /// evicted because the keep rule could not prove them safe.
  std::uint64_t cache_partial_kept = 0;
  std::uint64_t cache_partial_evicted = 0;
  /// Current total charge (member count) of resident cache entries.
  std::uint64_t cache_charge = 0;
  /// Completed ApplyDelta() calls.
  std::uint64_t deltas_applied = 0;
};

/// One answered query. `result` is shared with the cache — never mutated
/// after construction. `cache_hit` is true when no Solve ran for this
/// call (a resident entry or a coalesced in-flight miss served it).
/// `error` is only ever non-empty on the callback Submit path: it
/// carries the message of an exception Run() threw (result is null
/// then). The future/Run paths propagate exceptions instead.
struct EngineResponse {
  std::shared_ptr<const SearchResult> result;
  bool cache_hit = false;
  std::string error;
};

/// How OpenSnapshot materializes the file.
enum class SnapshotLoadMode {
  /// Copy the sections into owned heap arrays (accepts v1 and v2 files).
  kCopy,
  /// Zero-copy mmap view (requires a v2 file; start-up is O(1) copies).
  kMmap,
};

/// Canonical cache key: two queries map to the same key iff Solve() treats
/// them identically (inactive aggregation parameters are normalized away,
/// e.g. alpha is only part of the key under sum-surplus). Exposed for the
/// tests and for external sharding layers that need a stable query hash.
std::string CanonicalQueryKey(const Query& query);

class QueryEngine {
 public:
  /// Takes ownership of the (weighted) graph and builds the core index.
  explicit QueryEngine(Graph graph, EngineOptions options = {});

  /// Serves a snapshot file. Uses the persisted core index when the
  /// snapshot carries one — both modes skip the decomposition then (kMmap
  /// views it in place, kCopy deserializes a copy); it is rebuilt from
  /// scratch only for index-less files. Returns nullptr and sets *error
  /// when the file is unreadable, invalid, has no weights, or the solve
  /// options are malformed (e.g. epsilon outside [0, 1)).
  static std::unique_ptr<QueryEngine> OpenSnapshot(const std::string& path,
                                                   SnapshotLoadMode mode,
                                                   EngineOptions options,
                                                   std::string* error);

  /// Current serving graph / index. Valid until the next ApplyDelta.
  const Graph& graph() const;
  const CoreIndex& core_index() const;
  unsigned num_threads() const { return pool_.num_threads(); }

  /// True while the serving graph is a zero-copy view over a mapped
  /// snapshot (ApplyDelta rebuilds into heap arrays, clearing this).
  bool snapshot_mapped() const;

  /// True when the serving core index was loaded from the snapshot
  /// instead of being recomputed at start-up (cleared by ApplyDelta).
  bool index_from_snapshot() const;

  /// ValidateQuery against the engine's graph ("" = fine). Callers should
  /// gate on this; Run/Submit TICL_CHECK-abort on invalid queries just
  /// like Solve().
  std::string Validate(const Query& query) const;

  /// Answers on the calling thread (cache -> coalesce -> indexed Solve ->
  /// cache fill).
  EngineResponse Run(const Query& query);

  /// Queues the query on the pool. During teardown, when the pool no
  /// longer accepts work, the query runs inline on the calling thread
  /// instead of crashing; the returned future is valid either way.
  std::future<EngineResponse> Submit(const Query& query);

  /// Callback form for event-driven front ends (futures cannot be polled
  /// by an epoll loop): queues the query and invokes `done(response)` on
  /// the worker thread that answered it — or inline on the calling
  /// thread when the pool is already shutting down. `done` is invoked
  /// exactly once even when the solve throws (the exception is caught
  /// and reported via EngineResponse::error with a null result), so a
  /// caller counting in-flight work never leaks a slot. `done` itself
  /// must not throw and should stay cheap; it runs on a pool worker.
  void Submit(const Query& query, std::function<void(EngineResponse)> done);

  /// Applies a delta to the serving graph: validates it against the
  /// current graph, rebuilds the CSR backend, maintains the CoreIndex
  /// incrementally (order-based, O(affected subgraph)), detaches the
  /// in-flight coalescing map, evicts exactly the cache entries the
  /// delta could have changed (wholesale when
  /// EngineOptions::cache_partial_invalidation is off), and atomically
  /// swaps the serving state. In-flight queries complete against the
  /// pre-delta state; queries arriving after the swap see the new graph.
  /// Returns false and sets *error when the delta does not apply cleanly
  /// (the serving state is then untouched). Concurrent ApplyDelta calls
  /// are serialized.
  ///
  /// `expected_parent`, when non-null, is re-verified against the serving
  /// graph *inside* the critical section: two callers racing chained
  /// deltas cannot both pass an outside check and have the loser apply
  /// against a base it never saw — the loser fails with a parent
  /// mismatch instead.
  bool ApplyDelta(const GraphDelta& delta, std::string* error);
  bool ApplyDelta(const GraphDelta& delta,
                  const GraphFingerprint* expected_parent,
                  std::string* error);

  /// Loads a delta snapshot file and ApplyDelta()s it with the recorded
  /// parent fingerprint enforced inside the critical section (a
  /// mis-ordered, foreign, or raced delta fails cleanly, before any
  /// mutation). One shared path for start-up --delta chains and the
  /// network server's live apply_delta admin command. On success
  /// *applied (when non-null) receives the delta for reporting.
  bool ApplyDeltaSnapshotFile(const std::string& path, std::string* error,
                              GraphDelta* applied = nullptr);

  /// Cumulative counters.
  EngineStats stats() const;

 private:
  /// Everything a query needs, pinned for its whole execution. Swapped
  /// wholesale by ApplyDelta; retired states are freed by the last query
  /// still holding them.
  struct ServingState {
    std::unique_ptr<MappedSnapshot> mapped;  // null unless mmap-backed
    Graph owned_graph;                       // empty when mapped
    std::unique_ptr<const CoreIndex> owned_index;  // null when mapped w/ idx
    const Graph* graph = nullptr;
    const CoreIndex* index = nullptr;
    bool index_from_snapshot = false;
    SolveOptions solve;  // base options with `index` installed
  };

  QueryEngine(std::unique_ptr<MappedSnapshot> mapped, Graph owned_graph,
              const std::vector<unsigned char>& index_payload,
              const EngineOptions& options);

  std::shared_ptr<const ServingState> CurrentState() const;

  SolveOptions base_solve_options_;
  bool cache_partial_invalidation_;
  std::function<void()> solve_started_hook_for_test_;

  mutable std::mutex mutex_;
  std::shared_ptr<const ServingState> state_;  // guarded by mutex_
  /// Bumped by every ApplyDelta; results computed under an older
  /// generation are not inserted into the cache — the entries that
  /// survived the partial sweep were *proved* unchanged, while a stale
  /// in-flight result carries no such proof.
  std::uint64_t generation_ = 0;
  /// Finished results + in-flight coalescing map; guarded by mutex_ (the
  /// cache itself is deliberately unsynchronized).
  ResultCache cache_;
  EngineStats stats_;

  /// Serializes ApplyDelta callers (mutex_ alone can't: the rebuild runs
  /// outside it so queries keep flowing).
  std::mutex apply_mutex_;

  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace ticl

#endif  // TICL_SERVE_ENGINE_H_
