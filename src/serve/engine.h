// QueryEngine: the index-and-serve layer over Solve().
//
// One engine serves one immutable weighted graph plus the CoreIndex for
// it, an LRU cache of finished results keyed on the canonicalized query,
// and a fixed thread pool. The graph comes from one of two places:
//
//   QueryEngine(graph, options)       — takes ownership of a built graph
//                                       and runs the decomposition itself.
//   QueryEngine::OpenSnapshot(...)    — serves a snapshot file. In kMmap
//                                       mode the CSR arrays, weights and
//                                       (when persisted) the core index
//                                       are used straight from the
//                                       mapping: start-up performs no
//                                       copy of the graph and, with a
//                                       persisted index, no decomposition.
//
// Callers either Run() synchronously (the calling thread does the graph
// work) or Submit() to the pool and collect a future. Either way the
// answer is exactly what a direct Solve() on the same graph would return —
// the index only removes the per-query re-peel, it never changes the
// candidate stream — which the serve tests assert result-for-result.
//
// Thread safety: every public method is safe to call concurrently. Results
// are handed out as shared_ptr<const SearchResult>; cached entries are
// shared, never copied per hit.

#ifndef TICL_SERVE_ENGINE_H_
#define TICL_SERVE_ENGINE_H_

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/result.h"
#include "core/search.h"
#include "graph/graph.h"
#include "serve/core_index.h"
#include "serve/mapped_snapshot.h"
#include "serve/thread_pool.h"

namespace ticl {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// LRU result-cache budget, measured in cached community members: each
  /// entry is charged the total member count of its result (minimum 1, so
  /// empty results still cost something). Size-aware accounting, because
  /// results vary from a handful of ids to graph-sized communities — an
  /// entry-count cap would let a few huge results blow the memory budget.
  /// A single result larger than the whole budget is not cached at all.
  /// 0 disables caching.
  std::size_t cache_member_budget = 1u << 20;
  /// Base solver configuration. The engine installs its own CoreIndex into
  /// this before every dispatch; any caller-supplied core_index is ignored.
  SolveOptions solve;
};

struct EngineStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Current total charge (member count) of resident cache entries.
  std::uint64_t cache_charge = 0;
};

/// One answered query. `result` is shared with the cache — never mutated
/// after construction.
struct EngineResponse {
  std::shared_ptr<const SearchResult> result;
  bool cache_hit = false;
};

/// How OpenSnapshot materializes the file.
enum class SnapshotLoadMode {
  /// Copy the sections into owned heap arrays (accepts v1 and v2 files).
  kCopy,
  /// Zero-copy mmap view (requires a v2 file; start-up is O(1) copies).
  kMmap,
};

/// Canonical cache key: two queries map to the same key iff Solve() treats
/// them identically (inactive aggregation parameters are normalized away,
/// e.g. alpha is only part of the key under sum-surplus). Exposed for the
/// tests and for external sharding layers that need a stable query hash.
std::string CanonicalQueryKey(const Query& query);

class QueryEngine {
 public:
  /// Takes ownership of the (weighted) graph and builds the core index.
  explicit QueryEngine(Graph graph, EngineOptions options = {});

  /// Serves a snapshot file. Uses the persisted core index when the
  /// snapshot carries one — both modes skip the decomposition then (kMmap
  /// views it in place, kCopy deserializes a copy); it is rebuilt from
  /// scratch only for index-less files. Returns nullptr and sets *error
  /// when the file is unreadable, invalid, or has no weights.
  static std::unique_ptr<QueryEngine> OpenSnapshot(const std::string& path,
                                                   SnapshotLoadMode mode,
                                                   EngineOptions options,
                                                   std::string* error);

  const Graph& graph() const { return *graph_; }
  const CoreIndex& core_index() const { return *index_; }
  unsigned num_threads() const { return pool_.num_threads(); }

  /// True when the graph is a zero-copy view over a mapped snapshot.
  bool snapshot_mapped() const { return mapped_ != nullptr; }

  /// True when the core index was loaded from the snapshot instead of
  /// being recomputed at start-up.
  bool index_from_snapshot() const { return index_from_snapshot_; }

  /// ValidateQuery against the engine's graph ("" = fine). Callers should
  /// gate on this; Run/Submit TICL_CHECK-abort on invalid queries just
  /// like Solve().
  std::string Validate(const Query& query) const;

  /// Answers on the calling thread (cache -> indexed Solve -> cache fill).
  EngineResponse Run(const Query& query);

  /// Queues the query on the pool.
  std::future<EngineResponse> Submit(const Query& query);

  /// Cumulative counters (cache_hits + cache_misses == queries).
  EngineStats stats() const;

 private:
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const SearchResult> result;
    std::size_t charge;
  };

  QueryEngine(std::unique_ptr<MappedSnapshot> mapped, Graph owned_graph,
              const std::vector<unsigned char>& index_payload,
              const EngineOptions& options);

  std::shared_ptr<const SearchResult> CacheLookup(const std::string& key);
  void CacheInsert(const std::string& key,
                   std::shared_ptr<const SearchResult> result);

  // Destruction order matters: pool_ (declared last) dies first so no
  // worker touches engine state mid-teardown, and mapped_ (declared
  // first) dies last because graph_/index_ may view its mapping.
  std::unique_ptr<MappedSnapshot> mapped_;
  Graph owned_graph_;
  std::unique_ptr<const CoreIndex> owned_index_;
  const Graph* graph_ = nullptr;
  const CoreIndex* index_ = nullptr;
  bool index_from_snapshot_ = false;
  SolveOptions solve_options_;
  std::size_t cache_member_budget_;

  mutable std::mutex mutex_;
  /// MRU-first recency list; the map points into it.
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
  std::size_t cache_charge_ = 0;
  EngineStats stats_;

  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace ticl

#endif  // TICL_SERVE_ENGINE_H_
