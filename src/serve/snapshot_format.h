// Internal definitions shared by the snapshot writer/loader (snapshot.cc)
// and the zero-copy mmap loader (mapped_snapshot.cc). Not part of the
// public API — include serve/snapshot.h or serve/mapped_snapshot.h
// instead. The byte-level layout is documented in serve/snapshot.h.

#ifndef TICL_SERVE_SNAPSHOT_FORMAT_H_
#define TICL_SERVE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/types.h"

namespace ticl::snapshot_internal {

inline constexpr char kMagic[8] = {'T', 'I', 'C', 'L', 'S', 'N', 'A', 'P'};
/// v1 flags word (v2 expresses optionality via section presence instead).
inline constexpr std::uint32_t kFlagHasWeights = 1u << 0;
inline constexpr std::size_t kV2HeaderBytes = 16;
inline constexpr std::size_t kSectionEntryBytes = 24;
inline constexpr std::size_t kSectionAlignment = 8;
inline constexpr std::size_t kChecksumBytes = 8;

/// Section types of the v2 TLV table. Loaders skip unknown types, so new
/// optional sections (shard maps, ...) can be added without breaking old
/// readers of new files.
///
/// A file carries either the graph sections (1-5: a *full* snapshot) or
/// the delta sections (6-8: a *delta* snapshot — a GraphDelta recorded
/// against a parent graph identified by fingerprint). The two families
/// never mix; each loader rejects the other kind with a pointed message.
enum SectionType : std::uint32_t {
  kSectionGraphMeta = 1,  // {uint64 n, uint64 adjacency_len}, 16 bytes
  kSectionOffsets = 2,    // (n + 1) x uint64
  kSectionAdjacency = 3,  // adjacency_len x uint32
  kSectionWeights = 4,    // n x double (optional)
  kSectionCoreIndex = 5,  // CoreIndex serialization (optional)
  // Delta snapshots (serve/snapshot.h SaveDeltaSnapshot):
  kSectionDeltaMeta = 6,     // {parent fingerprint (3 x uint64),
                             //  uint64 insert_count, uint64 delete_count,
                             //  uint64 weight_update_count} = 48 bytes
  kSectionDeltaEdges = 7,    // (insert_count + delete_count) x
                             // {uint32 u, uint32 v}, inserts first
  kSectionDeltaWeights = 8,  // weight_update_count x
                             // {uint64 vertex, double weight}
};

inline constexpr std::size_t kDeltaMetaBytes = 48;

/// One raw entry of a validated v2 section table.
struct SectionRef {
  std::uint32_t type = 0;
  const unsigned char* data = nullptr;
  std::uint64_t length = 0;
};

/// Validates the v2 container framing — magic, version, section table
/// bounds and 8-byte alignment, trailing checksum — and returns the raw
/// sections. Shared by the full-snapshot and delta-snapshot readers;
/// interpretation of the section payloads is the caller's job. `data`
/// must be 8-byte aligned and outlive the refs.
bool ParseV2Table(const unsigned char* data, std::size_t size,
                  std::vector<SectionRef>* sections, std::string* error);

/// A parsed v2 image. The spans point into the caller's buffer or mapping;
/// nothing is copied.
struct ParsedSnapshot {
  std::span<const EdgeIndex> offsets;
  std::span<const VertexId> adjacency;
  std::span<const Weight> weights;            // empty when absent
  const unsigned char* core_index = nullptr;  // null when absent
  std::size_t core_index_size = 0;
};

/// Validates a complete v2 snapshot image — magic, version, section table
/// (bounds, 8-byte alignment, required sections), the trailing checksum,
/// the CSR invariants and the weight values — and fills *out with spans
/// into `data`. `data` must be 8-byte aligned and outlive the spans.
/// Unknown section types are skipped. Returns false and sets *error on any
/// failure; the error strings are specific enough to distinguish
/// truncation, corruption and version problems.
bool ParseV2(const unsigned char* data, std::size_t size, ParsedSnapshot* out,
             std::string* error);

/// The structural invariants Graph's CSR constructor assumes. Symmetry is
/// not re-verified (O(m log d) — the writer only ever saw symmetric
/// graphs); everything cheap and memory-safety-critical is. Returns "" when
/// fine, else a description.
std::string ValidateCsr(std::span<const EdgeIndex> offsets,
                        std::span<const VertexId> adjacency);

}  // namespace ticl::snapshot_internal

#endif  // TICL_SERVE_SNAPSHOT_FORMAT_H_
