// Delta-aware result cache for the serve layer.
//
// QueryEngine answers each canonicalized (k, r, aggregation) query at most
// once per serving graph; everything after that is a cache question. This
// module owns both halves of that question:
//
//   * the finished-result store — a size-aware LRU (entries charged by
//     total member count, so a few graph-sized answers cannot blow the
//     memory budget) with optional per-entry TTL and explicit
//     negative-result entries (zero-community answers are the cheapest
//     entries there are, and the queries most likely to be repeated
//     verbatim by probing clients);
//   * the in-flight coalescing map — concurrent misses on one key share a
//     single Solve through a PendingSolve future.
//
// The interesting part is invalidation. A GraphDelta does not perturb
// every answer: a query at level k is computed entirely from the induced
// subgraph on the maximal k-core's members plus those members' weights
// (every solver in src/core/ restricts itself to IndexedMaximalKCore with
// deterministic id tie-breaks), so a cached answer provably survives a
// delta when that induced subgraph is bit-identical before and after:
//
//   keep (k, r, agg) iff
//     no vertex crossed the k-threshold        (k-core member set equal),
//     no edited edge has both endpoints at core >= k
//                                              (induced edges equal),
//     no reweighted vertex has core >= k       (member weights equal),
//     and the aggregation does not consult whole-graph state
//                                              (balanced density reads
//                                               w(V); any reweight
//                                               anywhere perturbs it).
//
// DeltaImpact condenses a delta to the four thresholds those tests need
// (built by QueryEngine from CoreMaintainer::Summary() plus the delta's
// edge/weight lists); InvalidateForDelta applies them in one O(entries)
// sweep. Note the rule is deliberately *not* "does the delta intersect
// the cached answer's members": an edit outside every reported community
// can still promote a new community into the top-r, so member
// intersection is unsound — the subgraph-identity rule is the tightest
// sound one expressible per k-level. Anything it cannot prove kept is
// evicted, and both outcomes are counted (partial_kept /
// partial_evicted) so operators can see the rule working.
//
// Thread safety: none. The cache is a data structure, not a service —
// QueryEngine calls every method under its own mutex. The injected clock
// exists so TTL tests advance time instead of sleeping.

#ifndef TICL_SERVE_RESULT_CACHE_H_
#define TICL_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/result.h"
#include "graph/types.h"

namespace ticl {

/// Injectable time source (monotonic). Defaults to steady_clock::now.
using CacheClock = std::function<std::chrono::steady_clock::time_point()>;

struct ResultCacheOptions {
  /// Budget in cached community members (each entry charged its total
  /// member count, floored at 1 so negative entries still cost
  /// something). 0 disables the cache entirely.
  std::size_t member_budget = 1u << 20;
  /// Per-entry time-to-live in milliseconds; 0 = entries never expire.
  /// Expiry is lazy: an expired entry is dropped by the Lookup that
  /// finds it (and counted in counters().expired).
  std::uint64_t ttl_ms = 0;
  /// Test seam: overrides the time source for TTL. Never set in
  /// production.
  CacheClock clock_for_test;
};

/// Counters owned by the cache itself; QueryEngine merges them into
/// EngineStats (which adds the hit/miss/coalesced flow counters the
/// engine tracks, since only it sees the full lookup flow).
struct ResultCacheCounters {
  /// Entries pushed out by the LRU budget sweep.
  std::uint64_t evictions = 0;
  /// Lookups that found an entry past its TTL (dropped, reported a miss).
  std::uint64_t expired = 0;
  /// Hits served from a negative (zero-community) entry.
  std::uint64_t negative_hits = 0;
  /// Partial-invalidation outcomes, cumulative across deltas.
  std::uint64_t partial_kept = 0;
  std::uint64_t partial_evicted = 0;
};

/// What the invalidation rule needs to know about one cached answer.
struct CacheEntryMeta {
  /// The query's k-level.
  VertexId k = 0;
  /// True when the aggregation consults whole-graph state (balanced
  /// density reads w(V \ H) via total_weight()): any reweight anywhere
  /// invalidates such entries regardless of k.
  bool total_weight_sensitive = false;
};

/// A delta condensed to the thresholds the keep rule tests. Built by
/// QueryEngine::ApplyDelta from the maintainer's AffectedSummary plus the
/// delta's own edge/weight lists, evaluated against the *post-delta* core
/// numbers (sound: for any k outside [crossed_min, crossed_max] a
/// vertex's old and new core numbers sit on the same side of k, and
/// levels inside the range are evicted wholesale).
struct DeltaImpact {
  /// Some vertex's net core number changed; levels in
  /// [crossed_min, crossed_max] have a different k-core member set.
  bool any_core_crossed = false;
  VertexId crossed_min = 0;
  VertexId crossed_max = 0;
  /// Highest k whose induced k-core subgraph an edit could have touched:
  /// max over edited edges of min(core(u), core(v)) and over reweighted
  /// vertices of core(v). Entries at k <= this are evicted; 0 (with
  /// queries validated to k >= 1) evicts nothing.
  VertexId evict_k_le = 0;
  /// The delta carries weight updates: total graph weight may have
  /// changed, so total_weight_sensitive entries are evicted at every k.
  bool total_weight_changed = false;

  /// The keep/evict decision for one entry.
  bool Evicts(const CacheEntryMeta& meta) const {
    if (meta.k <= evict_k_le) return true;
    if (any_core_crossed && meta.k >= crossed_min && meta.k <= crossed_max) {
      return true;
    }
    return total_weight_changed && meta.total_weight_sensitive;
  }
};

/// A cache miss in flight: later arrivals for the same key wait on the
/// future instead of re-running Solve.
struct PendingSolve {
  std::promise<std::shared_ptr<const SearchResult>> promise;
  std::shared_future<std::shared_ptr<const SearchResult>> future =
      promise.get_future().share();
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// False when member_budget is 0 — callers should then skip Lookup and
  /// Insert and account the query as uncacheable.
  bool enabled() const { return member_budget_ > 0; }

  /// Resident entry for `key`, bumped to MRU — or nullptr on a miss. An
  /// entry past its TTL is erased, counted in counters().expired, and
  /// reported as a miss.
  std::shared_ptr<const SearchResult> Lookup(const std::string& key);

  enum class InsertOutcome {
    kInserted,
    /// The key is already resident (racing path won); incumbent kept.
    kDuplicate,
    /// The result's charge alone exceeds the whole budget: caching it
    /// would evict everything and still not fit.
    kUncacheable,
  };

  /// Inserts and runs the LRU budget sweep. `result` must not be null
  /// (a negative answer is an empty result, not a null one).
  InsertOutcome Insert(const std::string& key, const CacheEntryMeta& meta,
                       std::shared_ptr<const SearchResult> result);

  /// Wholesale invalidation (the conservative fallback, and the disabled
  /// partial-invalidation path). Not counted as partial_evicted.
  void Clear();

  /// Delta-aware sweep: evicts exactly the entries impact.Evicts() says a
  /// delta could have changed, counts both outcomes.
  void InvalidateForDelta(const DeltaImpact& impact);

  // -- In-flight coalescing map ------------------------------------------
  // (Lives here so the whole per-key lifecycle — pending, resident,
  // invalidated — is one subsystem; the engine still drives the flow.)

  /// The pending solve another caller owns for `key`, or nullptr.
  std::shared_ptr<PendingSolve> FindPending(const std::string& key) const;

  /// Registers `pending` as the in-flight solve for `key` (must be
  /// vacant).
  void AddPending(const std::string& key,
                  std::shared_ptr<PendingSolve> pending);

  /// Retires `key`'s pending entry iff it still is `pending` (a delta may
  /// have detached the map in between).
  void RemovePending(const std::string& key,
                     const std::shared_ptr<PendingSolve>& pending);

  /// Detaches every in-flight entry (owners still fulfil their waiters;
  /// they just no longer represent this cache's keys).
  void ClearPending();

  /// Current total charge (member count) of resident entries.
  std::size_t charge() const { return charge_; }

  /// Resident entry count.
  std::size_t size() const { return map_.size(); }

  const ResultCacheCounters& counters() const { return counters_; }

 private:
  struct Entry {
    std::string key;
    CacheEntryMeta meta;
    std::shared_ptr<const SearchResult> result;
    std::size_t charge = 0;
    /// Entry is invalid at/after this instant (time_point::max() = never).
    std::chrono::steady_clock::time_point expires_at;
  };

  std::chrono::steady_clock::time_point Now() const;
  std::chrono::steady_clock::time_point ExpiryFromNow() const;
  void EraseEntry(std::list<Entry>::iterator it);

  std::size_t member_budget_;
  std::uint64_t ttl_ms_;
  CacheClock clock_;

  /// MRU-first recency list; the map points into it.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::unordered_map<std::string, std::shared_ptr<PendingSolve>> pending_;
  std::size_t charge_ = 0;
  ResultCacheCounters counters_;
};

}  // namespace ticl

#endif  // TICL_SERVE_RESULT_CACHE_H_
