#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "serve/snapshot.h"
#include "util/check.h"

namespace ticl {

namespace {

/// Size-aware cache charge: total member ids held by the result, floored
/// at 1 so empty results still occupy a slot's worth of budget.
std::size_t ResultCharge(const SearchResult& result) {
  std::size_t members = 0;
  for (const Community& c : result.communities) members += c.members.size();
  return std::max<std::size_t>(members, 1);
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  // Inactive parameters must not split the key space: alpha only matters
  // under sum-surplus, beta only under weight density.
  const double alpha = query.aggregation.kind == Aggregation::kSumSurplus
                           ? query.aggregation.alpha
                           : 0.0;
  const double beta = query.aggregation.kind == Aggregation::kWeightDensity
                          ? query.aggregation.beta
                          : 0.0;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "k=%u;r=%u;s=%u;no=%d;f=%d;a=%.17g;b=%.17g", query.k,
                query.r, query.size_limit, query.non_overlapping ? 1 : 0,
                static_cast<int>(query.aggregation.kind), alpha, beta);
  return buffer;
}

QueryEngine::QueryEngine(Graph graph, EngineOptions options)
    : QueryEngine(nullptr, std::move(graph), {}, options) {}

QueryEngine::QueryEngine(std::unique_ptr<MappedSnapshot> mapped,
                         Graph owned_graph,
                         const std::vector<unsigned char>& index_payload,
                         const EngineOptions& options)
    : mapped_(std::move(mapped)),
      owned_graph_(std::move(owned_graph)),
      solve_options_(options.solve),
      cache_member_budget_(options.cache_member_budget),
      pool_(options.num_threads) {
  graph_ = mapped_ != nullptr ? &mapped_->graph() : &owned_graph_;
  TICL_CHECK_MSG(graph_->has_weights(),
                 "QueryEngine needs a weighted graph (SetWeights first)");
  if (mapped_ != nullptr && mapped_->has_core_index()) {
    index_ = &mapped_->core_index();
    index_from_snapshot_ = true;
  } else if (!index_payload.empty()) {
    // Copy-loaded snapshot carrying a persisted index: deserialize it
    // against our own graph copy and skip the decomposition. A section
    // that fails validation (stale or foreign, despite the checksum) is
    // not fatal — fall back to rebuilding from scratch.
    std::string index_error;
    std::unique_ptr<CoreIndex> restored = CoreIndex::Deserialize(
        *graph_, index_payload.data(), index_payload.size(),
        /*copy_data=*/true, &index_error);
    if (restored != nullptr) {
      owned_index_ = std::move(restored);
      index_from_snapshot_ = true;
    } else {
      owned_index_ = std::make_unique<CoreIndex>(*graph_);
    }
    index_ = owned_index_.get();
  } else {
    owned_index_ = std::make_unique<CoreIndex>(*graph_);
    index_ = owned_index_.get();
  }
  solve_options_.core_index = index_;
}

std::unique_ptr<QueryEngine> QueryEngine::OpenSnapshot(
    const std::string& path, SnapshotLoadMode mode, EngineOptions options,
    std::string* error) {
  if (mode == SnapshotLoadMode::kMmap) {
    std::unique_ptr<MappedSnapshot> mapped = MappedSnapshot::Open(path, error);
    if (mapped == nullptr) return nullptr;
    if (!mapped->graph().has_weights()) {
      *error = "snapshot: no vertex weights; re-save it from a weighted "
               "graph";
      return nullptr;
    }
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(mapped), Graph(), {}, options));
  }
  Graph graph;
  std::vector<unsigned char> index_payload;
  if (!LoadSnapshotWithIndex(path, &graph, &index_payload, error)) {
    return nullptr;
  }
  if (!graph.has_weights()) {
    *error = "snapshot: no vertex weights; re-save it from a weighted graph";
    return nullptr;
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(nullptr, std::move(graph), index_payload, options));
}

std::string QueryEngine::Validate(const Query& query) const {
  return ValidateQuery(query, *graph_);
}

EngineResponse QueryEngine::Run(const Query& query) {
  const std::string key = CanonicalQueryKey(query);
  if (auto cached = CacheLookup(key)) return {std::move(cached), true};
  auto result =
      std::make_shared<SearchResult>(Solve(*graph_, query, solve_options_));
  CacheInsert(key, result);
  return {std::move(result), false};
}

std::future<EngineResponse> QueryEngine::Submit(const Query& query) {
  auto task = std::make_shared<std::packaged_task<EngineResponse()>>(
      [this, query] { return Run(query); });
  auto future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats out = stats_;
  out.cache_charge = cache_charge_;
  return out;
}

std::shared_ptr<const SearchResult> QueryEngine::CacheLookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.queries;
  if (cache_member_budget_ == 0) {
    ++stats_.cache_misses;
    return nullptr;
  }
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++stats_.cache_hits;
  return it->second->result;
}

void QueryEngine::CacheInsert(const std::string& key,
                              std::shared_ptr<const SearchResult> result) {
  if (cache_member_budget_ == 0) return;
  const std::size_t charge = ResultCharge(*result);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent miss on the same key beat us here; keep the incumbent
    // (both computed identical results) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  // A result bigger than the whole budget would evict everything and still
  // not fit — serving it uncached is strictly better.
  if (charge > cache_member_budget_) return;
  lru_.push_front(CacheEntry{key, std::move(result), charge});
  cache_.emplace(key, lru_.begin());
  cache_charge_ += charge;
  while (cache_charge_ > cache_member_budget_) {
    const CacheEntry& victim = lru_.back();
    cache_charge_ -= victim.charge;
    cache_.erase(victim.key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

}  // namespace ticl
