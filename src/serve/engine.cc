#include "serve/engine.h"

#include <cstdio>
#include <utility>

#include "util/check.h"

namespace ticl {

std::string CanonicalQueryKey(const Query& query) {
  // Inactive parameters must not split the key space: alpha only matters
  // under sum-surplus, beta only under weight density.
  const double alpha = query.aggregation.kind == Aggregation::kSumSurplus
                           ? query.aggregation.alpha
                           : 0.0;
  const double beta = query.aggregation.kind == Aggregation::kWeightDensity
                          ? query.aggregation.beta
                          : 0.0;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "k=%u;r=%u;s=%u;no=%d;f=%d;a=%.17g;b=%.17g", query.k,
                query.r, query.size_limit, query.non_overlapping ? 1 : 0,
                static_cast<int>(query.aggregation.kind), alpha, beta);
  return buffer;
}

QueryEngine::QueryEngine(Graph graph, EngineOptions options)
    : graph_(std::move(graph)),
      index_(graph_),
      solve_options_(options.solve),
      cache_capacity_(options.cache_capacity),
      pool_(options.num_threads) {
  TICL_CHECK_MSG(graph_.has_weights(),
                 "QueryEngine needs a weighted graph (SetWeights first)");
  solve_options_.core_index = &index_;
}

std::string QueryEngine::Validate(const Query& query) const {
  return ValidateQuery(query, graph_);
}

EngineResponse QueryEngine::Run(const Query& query) {
  const std::string key = CanonicalQueryKey(query);
  if (auto cached = CacheLookup(key)) return {std::move(cached), true};
  auto result =
      std::make_shared<SearchResult>(Solve(graph_, query, solve_options_));
  CacheInsert(key, result);
  return {std::move(result), false};
}

std::future<EngineResponse> QueryEngine::Submit(const Query& query) {
  auto task = std::make_shared<std::packaged_task<EngineResponse()>>(
      [this, query] { return Run(query); });
  auto future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<const SearchResult> QueryEngine::CacheLookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.queries;
  if (cache_capacity_ == 0) {
    ++stats_.cache_misses;
    return nullptr;
  }
  const auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++stats_.cache_hits;
  return it->second->second;
}

void QueryEngine::CacheInsert(const std::string& key,
                              std::shared_ptr<const SearchResult> result) {
  if (cache_capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent miss on the same key beat us here; keep the incumbent
    // (both computed identical results) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  cache_.emplace(key, lru_.begin());
  if (lru_.size() > cache_capacity_) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

}  // namespace ticl
