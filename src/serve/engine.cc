#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "algo/core_maintenance.h"
#include "serve/snapshot.h"
#include "util/check.h"

namespace ticl {

namespace {

/// What the cache's keep rule needs to know about a query's answer.
CacheEntryMeta MetaFor(const Query& query) {
  CacheEntryMeta meta;
  meta.k = query.k;
  // Balanced density is the one aggregation that consults whole-graph
  // state (w(V \ H) via total_weight()); its entries must go whenever any
  // weight moves, at any k.
  meta.total_weight_sensitive =
      query.aggregation.kind == Aggregation::kBalancedDensity;
  return meta;
}

ResultCacheOptions CacheOptionsFor(const EngineOptions& options) {
  ResultCacheOptions cache;
  cache.member_budget = options.cache_member_budget;
  cache.ttl_ms = options.cache_ttl_ms;
  cache.clock_for_test = options.cache_clock_for_test;
  return cache;
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  // Inactive parameters must not split the key space: alpha only matters
  // under sum-surplus, beta only under weight density.
  const double alpha = query.aggregation.kind == Aggregation::kSumSurplus
                           ? query.aggregation.alpha
                           : 0.0;
  const double beta = query.aggregation.kind == Aggregation::kWeightDensity
                          ? query.aggregation.beta
                          : 0.0;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "k=%u;r=%u;s=%u;no=%d;f=%d;a=%.17g;b=%.17g", query.k,
                query.r, query.size_limit, query.non_overlapping ? 1 : 0,
                static_cast<int>(query.aggregation.kind), alpha, beta);
  return buffer;
}

QueryEngine::QueryEngine(Graph graph, EngineOptions options)
    : QueryEngine(nullptr, std::move(graph), {}, options) {}

QueryEngine::QueryEngine(std::unique_ptr<MappedSnapshot> mapped,
                         Graph owned_graph,
                         const std::vector<unsigned char>& index_payload,
                         const EngineOptions& options)
    : base_solve_options_(options.solve),
      cache_partial_invalidation_(options.cache_partial_invalidation),
      solve_started_hook_for_test_(options.solve_started_hook_for_test),
      cache_(CacheOptionsFor(options)),
      pool_(options.num_threads) {
  const std::string options_problem = ValidateSolveOptions(options.solve);
  TICL_CHECK_MSG(options_problem.empty(), options_problem.c_str());

  auto state = std::make_shared<ServingState>();
  state->mapped = std::move(mapped);
  state->owned_graph = std::move(owned_graph);
  state->graph = state->mapped != nullptr ? &state->mapped->graph()
                                          : &state->owned_graph;
  TICL_CHECK_MSG(state->graph->has_weights(),
                 "QueryEngine needs a weighted graph (SetWeights first)");
  if (state->mapped != nullptr && state->mapped->has_core_index()) {
    state->index = &state->mapped->core_index();
    state->index_from_snapshot = true;
  } else if (!index_payload.empty()) {
    // Copy-loaded snapshot carrying a persisted index: deserialize it
    // against our own graph copy and skip the decomposition. A section
    // that fails validation (stale or foreign, despite the checksum) is
    // not fatal — fall back to rebuilding from scratch.
    std::string index_error;
    std::unique_ptr<CoreIndex> restored = CoreIndex::Deserialize(
        *state->graph, index_payload.data(), index_payload.size(),
        /*copy_data=*/true, &index_error);
    if (restored != nullptr) {
      state->owned_index = std::move(restored);
      state->index_from_snapshot = true;
    } else {
      state->owned_index = std::make_unique<CoreIndex>(*state->graph);
    }
    state->index = state->owned_index.get();
  } else {
    state->owned_index = std::make_unique<CoreIndex>(*state->graph);
    state->index = state->owned_index.get();
  }
  state->solve = base_solve_options_;
  state->solve.core_index = state->index;
  state_ = std::move(state);
}

std::unique_ptr<QueryEngine> QueryEngine::OpenSnapshot(
    const std::string& path, SnapshotLoadMode mode, EngineOptions options,
    std::string* error) {
  const std::string options_problem = ValidateSolveOptions(options.solve);
  if (!options_problem.empty()) {
    *error = "engine: " + options_problem;
    return nullptr;
  }
  if (mode == SnapshotLoadMode::kMmap) {
    std::unique_ptr<MappedSnapshot> mapped = MappedSnapshot::Open(path, error);
    if (mapped == nullptr) return nullptr;
    if (!mapped->graph().has_weights()) {
      *error = "snapshot: no vertex weights; re-save it from a weighted "
               "graph";
      return nullptr;
    }
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(mapped), Graph(), {}, options));
  }
  Graph graph;
  std::vector<unsigned char> index_payload;
  if (!LoadSnapshotWithIndex(path, &graph, &index_payload, error)) {
    return nullptr;
  }
  if (!graph.has_weights()) {
    *error = "snapshot: no vertex weights; re-save it from a weighted graph";
    return nullptr;
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(nullptr, std::move(graph), index_payload, options));
}

std::shared_ptr<const QueryEngine::ServingState> QueryEngine::CurrentState()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const Graph& QueryEngine::graph() const { return *CurrentState()->graph; }

const CoreIndex& QueryEngine::core_index() const {
  return *CurrentState()->index;
}

bool QueryEngine::snapshot_mapped() const {
  return CurrentState()->mapped != nullptr;
}

bool QueryEngine::index_from_snapshot() const {
  return CurrentState()->index_from_snapshot;
}

std::string QueryEngine::Validate(const Query& query) const {
  const std::shared_ptr<const ServingState> state = CurrentState();
  return ValidateQuery(query, *state->graph);
}

EngineResponse QueryEngine::Run(const Query& query) {
  const std::string key = CanonicalQueryKey(query);
  std::shared_ptr<const ServingState> state;
  std::shared_ptr<PendingSolve> pending;
  bool owner = false;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries;
    state = state_;
    generation = generation_;
    if (cache_.enabled()) {
      if (std::shared_ptr<const SearchResult> cached = cache_.Lookup(key)) {
        ++stats_.cache_hits;
        return {std::move(cached), true};
      }
    }
    pending = cache_.FindPending(key);
    if (pending != nullptr) {
      ++stats_.cache_coalesced;
    } else {
      pending = std::make_shared<PendingSolve>();
      cache_.AddPending(key, pending);
      owner = true;
      // With the cache disabled no answer can ever be cached; that is an
      // `uncacheable` outcome, not a miss — every query must land in
      // exactly one of the four counters.
      if (cache_.enabled()) {
        ++stats_.cache_misses;
      } else {
        ++stats_.cache_uncacheable;
      }
    }
  }
  if (!owner) {
    // Another thread is already solving this exact query (possibly against
    // an older serving state — it was admitted before any swap, so its
    // answer is as valid as ours would have been at arrival time).
    return {pending->future.get(), true};
  }

  std::shared_ptr<SearchResult> result;
  try {
    // The test hook lives inside the try so a throwing hook exercises
    // the same retirement path a throwing solver would.
    if (solve_started_hook_for_test_) solve_started_hook_for_test_();
    result = std::make_shared<SearchResult>(
        Solve(*state->graph, query, state->solve));
  } catch (...) {
    // Solve normally aborts on contract violations, but allocation (or a
    // future solver) can throw. Retire the pending entry and fail its
    // waiters — leaving it would hang them and poison this key for every
    // later query.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      cache_.RemovePending(key, pending);
    }
    pending->promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.RemovePending(key, pending);
    // A result computed against a retired generation must not seed the
    // cache: the delta may have changed this very answer (it stays a
    // plain miss — it did answer its caller).
    if (cache_.enabled() && generation == generation_) {
      if (cache_.Insert(key, MetaFor(query), result) ==
          ResultCache::InsertOutcome::kUncacheable) {
        // Reclassify: this solve's answer can never be cached (its charge
        // alone exceeds the whole budget), which the miss counter claimed
        // optimistically at lookup time.
        --stats_.cache_misses;
        ++stats_.cache_uncacheable;
      }
    }
  }
  pending->promise.set_value(result);
  return {std::move(result), false};
}

std::future<EngineResponse> QueryEngine::Submit(const Query& query) {
  auto task = std::make_shared<std::packaged_task<EngineResponse()>>(
      [this, query] { return Run(query); });
  auto future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    // Pool already shutting down (engine teardown race): answer inline so
    // the caller's future is still fulfilled instead of aborting.
    (*task)();
  }
  return future;
}

void QueryEngine::Submit(const Query& query,
                         std::function<void(EngineResponse)> done) {
  auto task = [this, query, done = std::move(done)] {
    // An escaped exception would std::terminate the pool worker — and
    // with it the whole serving process — while the caller's in-flight
    // accounting waited forever. Convert to an error response instead;
    // Run() has already retired the pending entry and failed coalesced
    // waiters by the time anything reaches us.
    EngineResponse response;
    try {
      response = Run(query);
    } catch (const std::exception& e) {
      response.error = e.what();
    } catch (...) {
      response.error = "solver failed with a non-standard exception";
    }
    done(std::move(response));
  };
  if (!pool_.Submit(task)) task();
}

bool QueryEngine::ApplyDelta(const GraphDelta& delta, std::string* error) {
  return ApplyDelta(delta, nullptr, error);
}

bool QueryEngine::ApplyDelta(const GraphDelta& delta,
                             const GraphFingerprint* expected_parent,
                             std::string* error) {
  // One delta at a time; queries keep flowing against the current state
  // while the successor is built.
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  const std::shared_ptr<const ServingState> old_state = CurrentState();

  // The parent check must live inside the critical section: a caller that
  // verified the fingerprint before reaching this lock may have lost a
  // race to another delta, and applying against the winner's graph would
  // mutate a base this delta was never recorded for.
  if (expected_parent != nullptr &&
      !(*expected_parent == old_state->graph->fingerprint())) {
    *error =
        "delta was recorded against a different parent graph (wrong base "
        "snapshot, wrong chain order, or a concurrent update won the race)";
    return false;
  }

  const std::string problem = ValidateDelta(*old_state->graph, delta);
  if (!problem.empty()) {
    *error = "delta: " + problem;
    return false;
  }

  // Maintain core numbers edge by edge (deletes first — the delta's
  // documented order), then rebuild the CSR backend once and re-bucket
  // the per-level member lists from the maintained numbers.
  CoreMaintainer maintainer(*old_state->graph,
                            old_state->index->core_numbers());
  for (const Edge& e : delta.delete_edges) maintainer.DeleteEdge(e.u, e.v);
  for (const Edge& e : delta.insert_edges) maintainer.InsertEdge(e.u, e.v);

  // Condense the delta to the thresholds the cache's keep rule tests,
  // against the *post-delta* core numbers (sound — see result_cache.h:
  // any level where old and new membership could disagree lies inside the
  // crossed range and is evicted wholesale).
  DeltaImpact impact;
  const AffectedSummary affected = maintainer.Summary();
  impact.any_core_crossed = affected.any();
  impact.crossed_min = affected.min_crossed;
  impact.crossed_max = affected.max_crossed;
  const std::vector<VertexId>& core = maintainer.core_numbers();
  for (const Edge& e : delta.delete_edges) {
    impact.evict_k_le =
        std::max(impact.evict_k_le, std::min(core[e.u], core[e.v]));
  }
  for (const Edge& e : delta.insert_edges) {
    impact.evict_k_le =
        std::max(impact.evict_k_le, std::min(core[e.u], core[e.v]));
  }
  for (const WeightUpdate& w : delta.weight_updates) {
    impact.evict_k_le = std::max(impact.evict_k_le, core[w.vertex]);
    impact.total_weight_changed = true;
  }

  auto next = std::make_shared<ServingState>();
  next->owned_graph = ApplyValidatedDelta(*old_state->graph, delta);
  next->graph = &next->owned_graph;
  next->owned_index = CoreIndex::FromCoreNumbers(next->owned_graph,
                                                 maintainer.TakeCoreNumbers());
  next->index = next->owned_index.get();
  next->solve = base_solve_options_;
  next->solve.core_index = next->index;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = std::move(next);
    ++generation_;
    // In-flight answers describe the old graph: detach the coalescing map
    // (owners still fulfil their waiters, they just no longer seed the
    // new cache — the generation bump blocks that). Cached entries are
    // swept by the keep rule: an entry survives only when the delta
    // provably left its k-level's induced subgraph untouched.
    cache_.ClearPending();
    if (cache_partial_invalidation_) {
      cache_.InvalidateForDelta(impact);
    } else {
      cache_.Clear();
    }
    ++stats_.deltas_applied;
  }
  return true;
}

bool QueryEngine::ApplyDeltaSnapshotFile(const std::string& path,
                                         std::string* error,
                                         GraphDelta* applied) {
  GraphDelta delta;
  GraphFingerprint parent;
  if (!LoadDeltaSnapshot(path, &delta, &parent, error)) return false;
  // The recorded parent is enforced inside ApplyDelta's critical section,
  // so two callers racing chained deltas cannot both slip past a
  // check-then-apply window.
  if (!ApplyDelta(delta, &parent, error)) {
    *error = path + ": " + *error;
    return false;
  }
  if (applied != nullptr) *applied = std::move(delta);
  return true;
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats out = stats_;
  const ResultCacheCounters& cache = cache_.counters();
  out.cache_evictions = cache.evictions;
  out.cache_negative_hits = cache.negative_hits;
  out.cache_expired = cache.expired;
  out.cache_partial_kept = cache.partial_kept;
  out.cache_partial_evicted = cache.partial_evicted;
  out.cache_charge = cache_.charge();
  return out;
}

}  // namespace ticl
