#include "serve/engine.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <utility>

#include "algo/core_maintenance.h"
#include "serve/snapshot.h"
#include "util/check.h"

namespace ticl {

namespace {

/// Size-aware cache charge: total member ids held by the result, floored
/// at 1 so empty results still occupy a slot's worth of budget.
std::size_t ResultCharge(const SearchResult& result) {
  std::size_t members = 0;
  for (const Community& c : result.communities) members += c.members.size();
  return std::max<std::size_t>(members, 1);
}

}  // namespace

std::string CanonicalQueryKey(const Query& query) {
  // Inactive parameters must not split the key space: alpha only matters
  // under sum-surplus, beta only under weight density.
  const double alpha = query.aggregation.kind == Aggregation::kSumSurplus
                           ? query.aggregation.alpha
                           : 0.0;
  const double beta = query.aggregation.kind == Aggregation::kWeightDensity
                          ? query.aggregation.beta
                          : 0.0;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "k=%u;r=%u;s=%u;no=%d;f=%d;a=%.17g;b=%.17g", query.k,
                query.r, query.size_limit, query.non_overlapping ? 1 : 0,
                static_cast<int>(query.aggregation.kind), alpha, beta);
  return buffer;
}

QueryEngine::QueryEngine(Graph graph, EngineOptions options)
    : QueryEngine(nullptr, std::move(graph), {}, options) {}

QueryEngine::QueryEngine(std::unique_ptr<MappedSnapshot> mapped,
                         Graph owned_graph,
                         const std::vector<unsigned char>& index_payload,
                         const EngineOptions& options)
    : base_solve_options_(options.solve),
      cache_member_budget_(options.cache_member_budget),
      solve_started_hook_for_test_(options.solve_started_hook_for_test),
      pool_(options.num_threads) {
  const std::string options_problem = ValidateSolveOptions(options.solve);
  TICL_CHECK_MSG(options_problem.empty(), options_problem.c_str());

  auto state = std::make_shared<ServingState>();
  state->mapped = std::move(mapped);
  state->owned_graph = std::move(owned_graph);
  state->graph = state->mapped != nullptr ? &state->mapped->graph()
                                          : &state->owned_graph;
  TICL_CHECK_MSG(state->graph->has_weights(),
                 "QueryEngine needs a weighted graph (SetWeights first)");
  if (state->mapped != nullptr && state->mapped->has_core_index()) {
    state->index = &state->mapped->core_index();
    state->index_from_snapshot = true;
  } else if (!index_payload.empty()) {
    // Copy-loaded snapshot carrying a persisted index: deserialize it
    // against our own graph copy and skip the decomposition. A section
    // that fails validation (stale or foreign, despite the checksum) is
    // not fatal — fall back to rebuilding from scratch.
    std::string index_error;
    std::unique_ptr<CoreIndex> restored = CoreIndex::Deserialize(
        *state->graph, index_payload.data(), index_payload.size(),
        /*copy_data=*/true, &index_error);
    if (restored != nullptr) {
      state->owned_index = std::move(restored);
      state->index_from_snapshot = true;
    } else {
      state->owned_index = std::make_unique<CoreIndex>(*state->graph);
    }
    state->index = state->owned_index.get();
  } else {
    state->owned_index = std::make_unique<CoreIndex>(*state->graph);
    state->index = state->owned_index.get();
  }
  state->solve = base_solve_options_;
  state->solve.core_index = state->index;
  state_ = std::move(state);
}

std::unique_ptr<QueryEngine> QueryEngine::OpenSnapshot(
    const std::string& path, SnapshotLoadMode mode, EngineOptions options,
    std::string* error) {
  const std::string options_problem = ValidateSolveOptions(options.solve);
  if (!options_problem.empty()) {
    *error = "engine: " + options_problem;
    return nullptr;
  }
  if (mode == SnapshotLoadMode::kMmap) {
    std::unique_ptr<MappedSnapshot> mapped = MappedSnapshot::Open(path, error);
    if (mapped == nullptr) return nullptr;
    if (!mapped->graph().has_weights()) {
      *error = "snapshot: no vertex weights; re-save it from a weighted "
               "graph";
      return nullptr;
    }
    return std::unique_ptr<QueryEngine>(
        new QueryEngine(std::move(mapped), Graph(), {}, options));
  }
  Graph graph;
  std::vector<unsigned char> index_payload;
  if (!LoadSnapshotWithIndex(path, &graph, &index_payload, error)) {
    return nullptr;
  }
  if (!graph.has_weights()) {
    *error = "snapshot: no vertex weights; re-save it from a weighted graph";
    return nullptr;
  }
  return std::unique_ptr<QueryEngine>(
      new QueryEngine(nullptr, std::move(graph), index_payload, options));
}

std::shared_ptr<const QueryEngine::ServingState> QueryEngine::CurrentState()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const Graph& QueryEngine::graph() const { return *CurrentState()->graph; }

const CoreIndex& QueryEngine::core_index() const {
  return *CurrentState()->index;
}

bool QueryEngine::snapshot_mapped() const {
  return CurrentState()->mapped != nullptr;
}

bool QueryEngine::index_from_snapshot() const {
  return CurrentState()->index_from_snapshot;
}

std::string QueryEngine::Validate(const Query& query) const {
  const std::shared_ptr<const ServingState> state = CurrentState();
  return ValidateQuery(query, *state->graph);
}

EngineResponse QueryEngine::Run(const Query& query) {
  const std::string key = CanonicalQueryKey(query);
  std::shared_ptr<const ServingState> state;
  std::shared_ptr<PendingSolve> pending;
  bool owner = false;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries;
    state = state_;
    generation = generation_;
    if (cache_member_budget_ > 0) {
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
        ++stats_.cache_hits;
        return {it->second->result, true};
      }
    }
    const auto pending_it = pending_.find(key);
    if (pending_it != pending_.end()) {
      pending = pending_it->second;
      ++stats_.cache_coalesced;
    } else {
      pending = std::make_shared<PendingSolve>();
      pending_.emplace(key, pending);
      owner = true;
      ++stats_.cache_misses;
    }
  }
  if (!owner) {
    // Another thread is already solving this exact query (possibly against
    // an older serving state — it was admitted before any swap, so its
    // answer is as valid as ours would have been at arrival time).
    return {pending->future.get(), true};
  }

  std::shared_ptr<SearchResult> result;
  try {
    // The test hook lives inside the try so a throwing hook exercises
    // the same retirement path a throwing solver would.
    if (solve_started_hook_for_test_) solve_started_hook_for_test_();
    result = std::make_shared<SearchResult>(
        Solve(*state->graph, query, state->solve));
  } catch (...) {
    // Solve normally aborts on contract violations, but allocation (or a
    // future solver) can throw. Retire the pending entry and fail its
    // waiters — leaving it would hang them and poison this key for every
    // later query.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = pending_.find(key);
      if (it != pending_.end() && it->second == pending) pending_.erase(it);
    }
    pending->promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = pending_.find(key);
    if (it != pending_.end() && it->second == pending) pending_.erase(it);
    // A result computed against a retired generation must not seed the
    // fresh cache: the delta may have changed this very answer.
    if (generation == generation_) CacheInsertLocked(key, result);
  }
  pending->promise.set_value(result);
  return {std::move(result), false};
}

std::future<EngineResponse> QueryEngine::Submit(const Query& query) {
  auto task = std::make_shared<std::packaged_task<EngineResponse()>>(
      [this, query] { return Run(query); });
  auto future = task->get_future();
  if (!pool_.Submit([task] { (*task)(); })) {
    // Pool already shutting down (engine teardown race): answer inline so
    // the caller's future is still fulfilled instead of aborting.
    (*task)();
  }
  return future;
}

void QueryEngine::Submit(const Query& query,
                         std::function<void(EngineResponse)> done) {
  auto task = [this, query, done = std::move(done)] {
    // An escaped exception would std::terminate the pool worker — and
    // with it the whole serving process — while the caller's in-flight
    // accounting waited forever. Convert to an error response instead;
    // Run() has already retired the pending entry and failed coalesced
    // waiters by the time anything reaches us.
    EngineResponse response;
    try {
      response = Run(query);
    } catch (const std::exception& e) {
      response.error = e.what();
    } catch (...) {
      response.error = "solver failed with a non-standard exception";
    }
    done(std::move(response));
  };
  if (!pool_.Submit(task)) task();
}

bool QueryEngine::ApplyDelta(const GraphDelta& delta, std::string* error) {
  // One delta at a time; queries keep flowing against the current state
  // while the successor is built.
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  const std::shared_ptr<const ServingState> old_state = CurrentState();

  const std::string problem = ValidateDelta(*old_state->graph, delta);
  if (!problem.empty()) {
    *error = "delta: " + problem;
    return false;
  }

  // Maintain core numbers edge by edge (deletes first — the delta's
  // documented order), then rebuild the CSR backend once and re-bucket
  // the per-level member lists from the maintained numbers.
  CoreMaintainer maintainer(*old_state->graph,
                            old_state->index->core_numbers());
  for (const Edge& e : delta.delete_edges) maintainer.DeleteEdge(e.u, e.v);
  for (const Edge& e : delta.insert_edges) maintainer.InsertEdge(e.u, e.v);

  auto next = std::make_shared<ServingState>();
  next->owned_graph = ApplyValidatedDelta(*old_state->graph, delta);
  next->graph = &next->owned_graph;
  next->owned_index = CoreIndex::FromCoreNumbers(next->owned_graph,
                                                 maintainer.TakeCoreNumbers());
  next->index = next->owned_index.get();
  next->solve = base_solve_options_;
  next->solve.core_index = next->index;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = std::move(next);
    ++generation_;
    // Every cached and in-flight answer describes the old graph; drop the
    // cache and detach the coalescing map (in-flight owners still fulfil
    // their waiters, they just no longer seed the new cache).
    pending_.clear();
    lru_.clear();
    cache_.clear();
    cache_charge_ = 0;
    ++stats_.deltas_applied;
  }
  return true;
}

bool QueryEngine::ApplyDeltaSnapshotFile(const std::string& path,
                                         std::string* error,
                                         GraphDelta* applied) {
  GraphDelta delta;
  GraphFingerprint parent;
  if (!LoadDeltaSnapshot(path, &delta, &parent, error)) return false;
  if (!(parent == graph().fingerprint())) {
    *error = "delta " + path +
             " was recorded against a different parent graph (wrong base "
             "snapshot or wrong chain order)";
    return false;
  }
  if (!ApplyDelta(delta, error)) {
    *error = path + ": " + *error;
    return false;
  }
  if (applied != nullptr) *applied = std::move(delta);
  return true;
}

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats out = stats_;
  out.cache_charge = cache_charge_;
  return out;
}

void QueryEngine::CacheInsertLocked(
    const std::string& key,
    const std::shared_ptr<const SearchResult>& result) {
  if (cache_member_budget_ == 0) return;
  if (cache_.find(key) != cache_.end()) {
    // Already resident (e.g. inserted by a racing path); keep the
    // incumbent.
    return;
  }
  // A result bigger than the whole budget would evict everything and still
  // not fit — serving it uncached is strictly better. Count it so the
  // operator can see a budget that is starving large answers.
  const std::size_t charge = ResultCharge(*result);
  if (charge > cache_member_budget_) {
    ++stats_.cache_uncacheable;
    return;
  }
  lru_.push_front(CacheEntry{key, result, charge});
  cache_.emplace(key, lru_.begin());
  cache_charge_ += charge;
  while (cache_charge_ > cache_member_budget_) {
    const CacheEntry& victim = lru_.back();
    cache_charge_ -= victim.charge;
    cache_.erase(victim.key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

}  // namespace ticl
