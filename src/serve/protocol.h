// JSONL wire protocol shared by every serve front end.
//
// One request per line, one reply per line. tools/ticl_serve (batch pipe)
// and tools/ticl_served (TCP) both parse and format through this module —
// the batch and network paths speak byte-identical JSON by construction,
// so they cannot drift.
//
// Request lines are flat JSON objects with scalar values:
//   {"id": "q1", "k": 4, "r": 5, "f": "sum"}
//   {"id": 2, "k": 4, "r": 3, "s": 20, "f": "avg", "non_overlapping": true}
//   {"id": 9, "admin": "apply_delta", "path": "g.d1.snap"}   (network only)
//
// Reply lines:
//   {"id": "q1", "query": "TIC k=4 r=5 f=sum", "cached": false,
//    "elapsed_seconds": 0.0123,
//    "communities": [{"influence": 42.0, "members": [1, 2, 3]}]}
//   {"id": "q1", "error": "...", "kind": "parse"}
//
// Unknown request fields are ignored (forward compatibility); unknown or
// malformed *values* of known fields are hard errors. A network listener
// cannot trust its input the way a batch pipe could, so the parser is a
// real tokenizer, not a substring scan: unterminated strings, duplicate
// keys, non-numeric k/r, fractional counts, trailing garbage and
// oversized lines are all rejected with a structured error reply.

#ifndef TICL_SERVE_PROTOCOL_H_
#define TICL_SERVE_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "core/query.h"
#include "core/result.h"

namespace ticl {

/// Hard cap on one request line (bytes, excluding the newline). The
/// network server must bound how much it buffers while looking for a
/// newline; the batch tool enforces the same cap so the two front ends
/// accept exactly the same language.
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

/// Stable "kind" values carried by error replies so clients can dispatch
/// without string-matching free-text messages.
inline constexpr char kErrorKindParse[] = "parse";        // malformed line
inline constexpr char kErrorKindInvalid[] = "invalid";    // well-formed, bad query
inline constexpr char kErrorKindRejected[] = "rejected";  // admission control
inline constexpr char kErrorKindDraining[] = "draining";  // server shutting down
inline constexpr char kErrorKindAdmin[] = "admin";        // admin command failed
inline constexpr char kErrorKindInternal[] = "internal";

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; everything else passes through).
std::string JsonEscape(std::string_view text);

/// One parsed request line: either a query or an admin command.
struct ParsedRequest {
  enum class Kind { kQuery, kAdmin };
  Kind kind = Kind::kQuery;

  Query query;  // kQuery

  /// kAdmin: "apply_delta" | "stats" | "drain" | "ping".
  std::string admin_verb;
  /// apply_delta only: path of the delta snapshot to load and apply.
  std::string admin_path;

  /// The raw "id" token exactly as it appeared (a scalar is echoed back
  /// verbatim, so string ids keep their quotes and stay valid JSON), or
  /// the line number when the id is missing or composite. Always set on
  /// return from ParseRequestLine — error replies need it too.
  std::string id_json;
};

/// Parses one request line (query or admin). Returns false with a
/// diagnostic in *error when the line is malformed; request->id_json is
/// set either way so the caller can address its error reply.
bool ParseRequestLine(const std::string& line, std::size_t line_number,
                      ParsedRequest* request, std::string* error);

/// Query-only convenience used by callers that do not speak admin
/// commands. Identical strictness to ParseRequestLine; a line carrying an
/// "admin" key is rejected. *id_json is always set on return.
bool ParseQueryLine(const std::string& line, std::size_t line_number,
                    Query* query, std::string* id_json, std::string* error);

/// The "communities" array payload of a result line:
/// [{"influence": 42.0, "members": [1, 2, 3]}, ...]. Exposed separately
/// so tests can compare the answer portion of a wire response
/// byte-for-byte against an inline Solve() while ignoring the
/// per-execution fields (cached, elapsed_seconds).
std::string FormatCommunitiesJson(const SearchResult& result);

/// One result reply, newline-terminated.
std::string FormatResultLine(const std::string& id_json, const Query& query,
                             const SearchResult& result, bool cached);

/// One structured error reply, newline-terminated:
/// {"id": <id_json>, "error": "<message>", "kind": "<kind>"}
std::string FormatErrorLine(const std::string& id_json,
                            const std::string& message,
                            const std::string& kind);

}  // namespace ticl

#endif  // TICL_SERVE_PROTOCOL_H_
