#include "serve/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace ticl {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::Submit(std::function<void()> job) {
  TICL_CHECK(job != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace ticl
