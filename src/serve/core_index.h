// Precomputed core-decomposition index.
//
// Every solver in src/core/ begins by materializing the maximal k-core (or
// its connected components) of the query's k — and the library primitives
// MaximalKCore / KCoreComponents re-run the full O(n + m) bucket peel each
// call. That is the right trade for one-shot use; under the serve workload
// (thousands of queries with varying k over one immutable graph) it is
// pure repeated work. CoreIndex runs the decomposition once and stores,
// for each k in [1, degeneracy], the sorted member list of the maximal
// k-core (total memory: sum_v core(v) ids, i.e. at most n * degeneracy and
// in practice far less), so per-query seeding drops from a graph-sized
// peel to a copy proportional to the answer.
//
// The index is immutable after construction and safe to share across
// threads. It is only meaningful for the exact Graph it was built from;
// the helpers below TICL_CHECK that identity.

#ifndef TICL_SERVE_CORE_INDEX_H_
#define TICL_SERVE_CORE_INDEX_H_

#include <vector>

#include "graph/graph.h"

namespace ticl {

class CoreIndex {
 public:
  /// Runs the O(n + m) decomposition and bucket-builds the per-k member
  /// lists. The graph must outlive the index.
  explicit CoreIndex(const Graph& g);

  /// The graph this index describes.
  const Graph& graph() const { return *g_; }

  /// Largest k with a non-empty k-core (0 for edgeless graphs).
  VertexId degeneracy() const { return degeneracy_; }

  /// core_numbers()[v] = largest k such that v belongs to a k-core.
  const std::vector<VertexId>& core_numbers() const { return core_; }

  /// Member count of the maximal k-core (0 above the degeneracy).
  std::size_t CoreSize(VertexId k) const;

  /// Members of the maximal k-core, sorted ascending. Identical to
  /// MaximalKCore(graph(), k) but O(|answer|) instead of O(n + m).
  const VertexList& CoreMembers(VertexId k) const;

  /// Connected components of the maximal k-core, each sorted ascending.
  /// Identical to KCoreComponents(graph(), k); the BFS split runs on the
  /// stored member list, so cost is proportional to the k-core, not the
  /// graph.
  std::vector<VertexList> CoreComponents(VertexId k) const;

 private:
  const Graph* g_;
  std::vector<VertexId> core_;
  VertexId degeneracy_ = 0;
  /// cores_[k] = sorted members of the maximal k-core, k in [1, degeneracy].
  /// cores_[0] is unused (k = 0 is the whole vertex set; queries need
  /// k >= 1) and kEmpty is returned beyond the degeneracy.
  std::vector<VertexList> cores_;
};

/// Seeding helpers used by the solvers: consult the index when one is
/// supplied (checking it was built for `g`), else fall back to the
/// from-scratch peel.
VertexList IndexedMaximalKCore(const CoreIndex* index, const Graph& g,
                               VertexId k);
std::vector<VertexList> IndexedKCoreComponents(const CoreIndex* index,
                                               const Graph& g, VertexId k);

}  // namespace ticl

#endif  // TICL_SERVE_CORE_INDEX_H_
