// Precomputed core-decomposition index.
//
// Every solver in src/core/ begins by materializing the maximal k-core (or
// its connected components) of the query's k — and the library primitives
// MaximalKCore / KCoreComponents re-run the full O(n + m) bucket peel each
// call. That is the right trade for one-shot use; under the serve workload
// (thousands of queries with varying k over one immutable graph) it is
// pure repeated work. CoreIndex runs the decomposition once and stores,
// for each k in [1, degeneracy], the sorted member list of the maximal
// k-core (total memory: sum_v core(v) ids, i.e. at most n * degeneracy and
// in practice far less), so per-query seeding drops from a graph-sized
// peel to a copy proportional to the answer.
//
// Storage is flat and span-backed: one core-number array, one concatenated
// member array, one per-level offset table. A decomposition-built index
// owns the arrays; a Deserialize()d one can either copy them or view them
// in place (zero-copy over a MappedSnapshot's core-index section). The
// flat layout doubles as the snapshot v2 serialization format — see
// AppendSerialized() for the byte layout.
//
// The index is immutable after construction and safe to share across
// threads. It is only meaningful for a Graph with the exact fingerprint it
// was built from; the Indexed* helpers and Solve() TICL_CHECK that.

#ifndef TICL_SERVE_CORE_INDEX_H_
#define TICL_SERVE_CORE_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ticl {

class CoreIndex {
 public:
  /// Runs the O(n + m) decomposition and bucket-builds the per-k member
  /// lists. The graph must outlive the index.
  explicit CoreIndex(const Graph& g);

  CoreIndex(const CoreIndex&) = delete;
  CoreIndex& operator=(const CoreIndex&) = delete;

  /// Builds the index from already-known core numbers — the incremental
  /// maintenance path (algo/core_maintenance.h): after a delta is applied,
  /// the maintained core numbers describe the new graph and only the flat
  /// per-level member lists need re-bucketing, skipping the O(n + m)
  /// decomposition. `core` must equal CoreDecomposition(g).core exactly;
  /// this is trusted here (cheap shape checks only) and asserted
  /// bit-for-bit by the randomized maintenance tests.
  static std::unique_ptr<CoreIndex> FromCoreNumbers(const Graph& g,
                                                    std::vector<VertexId> core);

  /// The graph this index describes.
  const Graph& graph() const { return *g_; }

  /// Fingerprint of the graph the index was built from (persisted across
  /// serialization; what Solve() checks before trusting the index).
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// Largest k with a non-empty k-core (0 for edgeless graphs).
  VertexId degeneracy() const { return degeneracy_; }

  /// core_numbers()[v] = largest k such that v belongs to a k-core.
  std::span<const VertexId> core_numbers() const { return core_; }

  /// Member count of the maximal k-core (0 above the degeneracy).
  std::size_t CoreSize(VertexId k) const;

  /// Members of the maximal k-core, sorted ascending. Identical to
  /// MaximalKCore(graph(), k) but O(1) (a subspan of the flat member
  /// array) instead of O(n + m).
  std::span<const VertexId> CoreMembers(VertexId k) const;

  /// Connected components of the maximal k-core, each sorted ascending.
  /// Identical to KCoreComponents(graph(), k); the BFS split runs on the
  /// stored member list, so cost is proportional to the k-core, not the
  /// graph.
  std::vector<VertexList> CoreComponents(VertexId k) const;

  // -- Serialization (snapshot v2 `core_index` section payload) ------------
  //
  // Little-endian, 8-byte-aligned base required:
  //
  //   offset          size        field
  //   0               8           fingerprint.num_vertices (n)
  //   8               8           fingerprint.adjacency_len (2m)
  //   16              8           fingerprint.csr_hash
  //   24              4           degeneracy d (uint32)
  //   28              4           reserved (0)
  //   32              (d+2)*8     level_offsets (uint64): level k in [1, d]
  //                               occupies members[level_offsets[k],
  //                               level_offsets[k+1]); entries 0 and 1 are 0
  //   32+(d+2)*8      n*4         core_numbers (uint32)
  //   ...             total*4     members (uint32), total = level_offsets[d+1]

  /// Appends the serialized payload (SerializedSize() bytes) to *out.
  void AppendSerialized(std::vector<unsigned char>* out) const;

  std::size_t SerializedSize() const;

  /// Reconstructs an index from a serialized payload, validating the
  /// payload exhaustively (sizes, level table, member ranges and order,
  /// consistency with the core numbers) and checking the stored
  /// fingerprint against `g`. `data` must be 8-byte aligned (the snapshot
  /// layer aligns sections). With copy_data = false the index views `data`
  /// in place — it must then outlive the index (the MappedSnapshot
  /// zero-copy path); with copy_data = true the arrays are copied and
  /// `data` may be discarded. Returns nullptr and sets *error on any
  /// validation failure.
  static std::unique_ptr<CoreIndex> Deserialize(const Graph& g,
                                                const unsigned char* data,
                                                std::size_t size,
                                                bool copy_data,
                                                std::string* error);

 private:
  CoreIndex() = default;

  /// Bucket-builds level_offsets_/members_ from owned_core_ (which must be
  /// set, along with g_/fingerprint_) and installs the span views. Shared
  /// by the decomposition constructor and FromCoreNumbers.
  void BuildLevels();

  const Graph* g_ = nullptr;
  GraphFingerprint fingerprint_;
  VertexId degeneracy_ = 0;
  // Owning backend; empty when the spans view external (mapped) memory.
  std::vector<VertexId> owned_core_;
  std::vector<std::uint64_t> owned_level_offsets_;
  std::vector<VertexId> owned_members_;
  // Views — the single source of truth for readers.
  std::span<const VertexId> core_;
  std::span<const std::uint64_t> level_offsets_;  // degeneracy_ + 2 entries
  std::span<const VertexId> members_;
};

/// Seeding helpers used by the solvers: consult the index when one is
/// supplied (checking its fingerprint matches `g`), else fall back to the
/// from-scratch peel.
VertexList IndexedMaximalKCore(const CoreIndex* index, const Graph& g,
                               VertexId k);
std::vector<VertexList> IndexedKCoreComponents(const CoreIndex* index,
                                               const Graph& g, VertexId k);

}  // namespace ticl

#endif  // TICL_SERVE_CORE_INDEX_H_
