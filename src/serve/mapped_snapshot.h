// Zero-copy snapshot access: mmap the file once, verify the checksum once,
// and serve the CSR arrays, weights and persisted CoreIndex straight from
// the mapping — no allocation proportional to the graph, no copy, no
// re-decomposition. This is what makes engine start-up on a big snapshot
// effectively instant: the only O(n + m) work is the single linear
// validation pass, and the page cache shares the bytes between every
// process serving the same snapshot.
//
// Requires snapshot format v2 (its 8-byte-aligned section table is what
// makes the direct pointer casts well-defined); v1 files are rejected with
// a message pointing at re-saving.
//
// Lifetime: graph() and core_index() view the mapping, so they are valid
// exactly as long as the MappedSnapshot. The object is handed out by
// unique_ptr and is neither copyable nor movable, so those views can never
// be silently detached from the mapping they read.

#ifndef TICL_SERVE_MAPPED_SNAPSHOT_H_
#define TICL_SERVE_MAPPED_SNAPSHOT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "serve/core_index.h"

namespace ticl {

class MappedSnapshot {
 public:
  /// Maps `path` read-only and validates it (magic, version 2, section
  /// table, checksum, CSR invariants). A core_index section that fails
  /// its own validation is dropped (has_core_index() == false) rather
  /// than failing the open, matching the copy-load recovery. Returns
  /// nullptr and sets *error on any other failure.
  static std::unique_ptr<MappedSnapshot> Open(const std::string& path,
                                              std::string* error);

  ~MappedSnapshot();
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  MappedSnapshot(MappedSnapshot&&) = delete;
  MappedSnapshot& operator=(MappedSnapshot&&) = delete;

  /// Span-backed view over the mapped CSR arrays (and weights when the
  /// snapshot has them). Reading it faults pages in on demand.
  const Graph& graph() const { return graph_; }

  /// True when the snapshot carries a persisted core index.
  bool has_core_index() const { return index_ != nullptr; }

  /// The persisted index, viewing the mapping. Requires has_core_index().
  const CoreIndex& core_index() const;

  /// The raw mapping — exposed so tests can assert the zero-copy property
  /// (the Graph's spans point into [data(), data() + size())).
  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MappedSnapshot() = default;

  unsigned char* data_ = nullptr;  // mmap base (page aligned)
  std::size_t size_ = 0;
  Graph graph_;
  std::unique_ptr<CoreIndex> index_;
};

}  // namespace ticl

#endif  // TICL_SERVE_MAPPED_SNAPSHOT_H_
