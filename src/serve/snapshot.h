// Versioned binary snapshot of a weighted graph (+ optional CoreIndex).
//
// The serve workload (many queries over one fixed graph) wants datasets
// generated, cleaned and weighted exactly once and then memory-mapped-fast
// to reload — re-parsing a text edge list and re-running PageRank per
// process is the single biggest cold-start cost, with the O(n + m) core
// decomposition right behind it. A snapshot captures the CSR arrays, the
// vertex weights and (optionally) the serialized CoreIndex verbatim, so a
// copy-load is a few bulk reads and a checksum pass — and an mmap load
// (serve/mapped_snapshot.h) is O(1) copies: the arrays are used in place.
//
// -- Format v2 (current writer) --------------------------------------------
//
// Little-endian, fixed-width, TLV section table:
//
//   offset  size   field
//   0       8      magic "TICLSNAP"
//   8       4      format version (uint32, 2)
//   12      4      section count C (uint32)
//   16      24*C   section table: C entries of
//                    {uint32 type, uint32 reserved(0),
//                     uint64 offset, uint64 length}
//   ...            section payloads
//   end-8   8      FNV-1a 64 checksum of every preceding byte
//
// Alignment rules: every section offset is a multiple of 8 (the writer
// inserts zero padding between sections; `length` is the unpadded payload
// size). Together with the page-aligned mmap base this lets a loader cast
// section payloads directly to uint64/double arrays with no misaligned
// access — the prerequisite for the zero-copy path being UBSan-clean.
//
// Section types (serve/snapshot_format.h):
//   1 graph_meta  {uint64 n, uint64 adjacency_len}          required
//   2 offsets     (n + 1) x uint64                          required
//   3 adjacency   adjacency_len x uint32                    required
//   4 weights     n x double                                optional
//   5 core_index  CoreIndex serialization (core_index.h)    optional
//   6 delta_meta  parent fingerprint + edit counts          delta files
//   7 delta_edges edge insert/delete pairs                  delta files
//   8 delta_weights vertex reweights                        delta files
//
// Sections 1-5 make a *full* snapshot, sections 6-8 a *delta* snapshot
// (see SaveDeltaSnapshot below); a file is one or the other. Unknown
// section types are skipped on load, so future optional sections (shard
// maps, ...) stay backward compatible. Loads validate
// magic, version, table bounds and alignment, the checksum, the CSR
// invariants (monotone offsets, in-range sorted neighbour lists; symmetry
// is trusted to the producer) and weight values. Every failure is reported
// through *error with a specific message; a snapshot never half-loads.
//
// -- Format v1 (legacy, read-only) -----------------------------------------
//
//   offset  size  field
//   0       8     magic "TICLSNAP"
//   8       4     format version (uint32, 1)
//   12      4     flags (uint32; bit 0 = weights present)
//   16      8     vertex count n (uint64)
//   24      8     adjacency length 2m (uint64)
//   32      ...   offsets   ((n + 1) x uint64)
//   ...     ...   adjacency (2m x uint32)
//   ...     ...   weights   (n x double, only when bit 0 of flags is set)
//   end-8   8     FNV-1a 64 checksum of every preceding byte
//
// v1 files keep loading forever (LoadSnapshot); they cannot carry a
// CoreIndex and — because the weights section is only 8-aligned when m is
// even — are not eligible for mmap. SaveSnapshotOptions::version = 1
// keeps a writer around for compatibility tests and benchmarks.
//
// -- Mmap quickstart -------------------------------------------------------
//
//   ticl_query --generate standin:dblp --save-snapshot dblp.snap \
//       --snapshot-index                    # v2 + embedded CoreIndex
//   ticl_serve --snapshot dblp.snap --mmap  # start-up with zero copies
//
// or in code: MappedSnapshot::Open(path, &error) hands out a span-backed
// Graph (and CoreIndex) reading straight from the mapping.

#ifndef TICL_SERVE_SNAPSHOT_H_
#define TICL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_delta.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

/// Current writer version. Loaders accept this and every earlier version.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

struct SaveSnapshotOptions {
  /// Optional CoreIndex to embed so loaders skip the decomposition too.
  /// Must have been built for the graph being saved (fingerprint is
  /// checked). Requires version 2.
  const CoreIndex* core_index = nullptr;
  /// Format version to write: 2 (default) or 1 (legacy, for compatibility
  /// tooling; cannot embed a core index and cannot be mmap-loaded).
  std::uint32_t version = kSnapshotFormatVersion;
};

/// Writes `g` (topology + weights when assigned) to `path`, atomically:
/// the bytes go to a sibling temp file first, which is renamed over `path`
/// on success. Returns false and sets *error on IO failure or invalid
/// options.
bool SaveSnapshot(const std::string& path, const Graph& g,
                  std::string* error);
bool SaveSnapshot(const std::string& path, const Graph& g,
                  const SaveSnapshotOptions& options, std::string* error);

/// Reads a snapshot (v1 or v2) back into an owning Graph. On success *out
/// holds the graph (weights restored when the snapshot has them). A
/// persisted core-index section is skipped here — use
/// LoadSnapshotWithIndex, MappedSnapshot or QueryEngine::OpenSnapshot to
/// exploit it. On failure returns false, sets *error, and leaves *out
/// untouched.
bool LoadSnapshot(const std::string& path, Graph* out, std::string* error);

/// As LoadSnapshot, and additionally hands back the raw core_index
/// section payload (cleared when the snapshot has none / is v1) so the
/// caller can CoreIndex::Deserialize it against the loaded graph without
/// re-reading the file. The payload buffer satisfies the 8-byte alignment
/// Deserialize requires.
bool LoadSnapshotWithIndex(const std::string& path, Graph* out,
                           std::vector<unsigned char>* core_index_payload,
                           std::string* error);

// -- Delta snapshots --------------------------------------------------------
//
// A delta snapshot is a v2 container holding a GraphDelta and the
// fingerprint of the *parent* graph it applies to, instead of the graph
// sections — a child release is then a few kilobytes of edits rather than
// a full CSR rewrite. Children chain: base.snap <- d1.snap <- d2.snap,
// each delta's parent fingerprint matching the graph produced by
// everything before it, so a mis-ordered or foreign delta is rejected
// before any mutation happens. Full-snapshot loaders reject delta files
// (and vice versa) with a message naming the other loader.

/// Writes `delta` against a parent identified by `parent` (atomically,
/// like SaveSnapshot). The delta is stored verbatim; it is validated
/// against the actual parent graph at load/apply time.
bool SaveDeltaSnapshot(const std::string& path, const GraphDelta& delta,
                       const GraphFingerprint& parent, std::string* error);

/// Reads a delta snapshot back. On success *delta and *parent are filled.
/// Fails (with a pointed message) on full snapshots, corruption, or
/// malformed delta sections.
bool LoadDeltaSnapshot(const std::string& path, GraphDelta* delta,
                       GraphFingerprint* parent, std::string* error);

/// Loads `base_path` (a full snapshot) and replays `delta_paths` in
/// order, verifying each delta's parent fingerprint against the graph it
/// is applied to and validating the delta itself. On success *out is the
/// final graph (always heap-owned).
bool LoadSnapshotChain(const std::string& base_path,
                       const std::vector<std::string>& delta_paths,
                       Graph* out, std::string* error);

}  // namespace ticl

#endif  // TICL_SERVE_SNAPSHOT_H_
