// Versioned binary snapshot of a weighted graph.
//
// The serve workload (many queries over one fixed graph) wants datasets
// generated, cleaned and weighted exactly once and then memory-mapped-fast
// to reload — re-parsing a text edge list and re-running PageRank per
// process is the single biggest cold-start cost. A snapshot captures the
// CSR arrays and the vertex weights verbatim, so a load is three bulk
// reads and a checksum pass, and the loaded graph is bit-identical to the
// saved one.
//
// Layout (little-endian, fixed-width):
//
//   offset  size  field
//   0       8     magic "TICLSNAP"
//   8       4     format version (uint32, currently 1)
//   12      4     flags (uint32; bit 0 = weights present)
//   16      8     vertex count n (uint64)
//   24      8     adjacency length 2m (uint64)
//   32      ...   offsets   ((n + 1) x uint64)
//   ...     ...   adjacency (2m x uint32)
//   ...     ...   weights   (n x double, only when bit 0 of flags is set)
//   end-8   8     FNV-1a 64 checksum of every preceding byte
//
// Loads validate magic, version, flags, section sizes against the file
// size, the checksum, and finally the CSR invariants (monotone offsets,
// in-range sorted neighbour lists, symmetry is trusted to the producer).
// Every failure is reported through *error with a specific message; a
// snapshot never half-loads.

#ifndef TICL_SERVE_SNAPSHOT_H_
#define TICL_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace ticl {

/// Current writer version. Loaders accept exactly this version.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Writes `g` (topology + weights when assigned) to `path`, atomically:
/// the bytes go to a sibling temp file first, which is renamed over `path`
/// on success. Returns false and sets *error on IO failure.
bool SaveSnapshot(const std::string& path, const Graph& g,
                  std::string* error);

/// Reads a snapshot back. On success *out holds the graph (weights
/// restored when the snapshot has them). On failure returns false, sets
/// *error, and leaves *out untouched.
bool LoadSnapshot(const std::string& path, Graph* out, std::string* error);

}  // namespace ticl

#endif  // TICL_SERVE_SNAPSHOT_H_
