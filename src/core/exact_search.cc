#include "core/exact_search.h"

#include <algorithm>
#include <unordered_set>

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "algo/kcore_peeler.h"
#include "core/verification.h"
#include "serve/core_index.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// Saturating count of sum_{i=1..max_size} C(n, i), clamped at `cap`.
std::uint64_t CountSubsetsClamped(std::uint64_t n, std::uint64_t max_size,
                                  std::uint64_t cap) {
  std::uint64_t total = 0;
  std::uint64_t binom = 1;  // C(n, 0)
  for (std::uint64_t i = 1; i <= max_size && i <= n; ++i) {
    // binom = C(n, i) with overflow clamping.
    if (binom > cap) return cap + 1;
    binom = binom * (n - i + 1) / i;
    if (binom > cap || cap - total < binom) return cap + 1;
    total += binom;
    if (total > cap) return cap + 1;
  }
  return total;
}

/// True if `members` (sorted) induces a min-degree >= k connected subgraph.
bool IsConnectedKCore(const Graph& g, const VertexList& members, VertexId k) {
  for (const VertexId v : members) {
    VertexId deg = 0;
    for (const VertexId nbr : g.neighbors(v)) {
      if (std::binary_search(members.begin(), members.end(), nbr)) ++deg;
    }
    if (deg < k) return false;
  }
  return IsSubsetConnected(g, members);
}

struct EnumerationOutput {
  TopRList<Community> top;
  std::vector<Community> all;  // only filled when enforce_maximality
  std::uint64_t subsets_examined = 0;
  std::uint64_t candidates = 0;
};

void EnumerateRecursive(const Graph& g, const Query& query,
                        const ExactOptions& options,
                        const VertexList& universe, std::size_t start,
                        VertexList* current, EnumerationOutput* out) {
  if (current->size() >= static_cast<std::size_t>(query.k) + 1) {
    ++out->subsets_examined;
    if (IsConnectedKCore(g, *current, query.k)) {
      Community c = MakeCommunity(g, *current, query.aggregation);
      // Undefined values (balanced density with a non-positive denominator
      // evaluates to -inf) are not communities; skip the candidate but keep
      // enumerating its supersets, which may be finite.
      if (c.influence != -std::numeric_limits<double>::infinity()) {
        ++out->candidates;
        if (options.enforce_maximality) {
          out->all.push_back(c);
          TICL_CHECK_MSG(out->all.size() <= 200000,
                         "maximality filtering supports tiny instances only");
        }
        const double influence = c.influence;
        const std::uint64_t hash = c.hash;
        out->top.Insert(influence, hash, std::move(c));
      }
    }
  } else {
    ++out->subsets_examined;
  }
  const std::size_t limit = query.EffectiveSizeLimit(g);
  if (current->size() >= limit) return;
  for (std::size_t i = start; i < universe.size(); ++i) {
    current->push_back(universe[i]);
    EnumerateRecursive(g, query, options, universe, i + 1, current, out);
    current->pop_back();
  }
}

/// Enumerates candidates among `universe` and returns the top-r, applying
/// the optional maximality filter.
std::vector<Community> EnumerateTopR(const Graph& g, const Query& query,
                                     const ExactOptions& options,
                                     const VertexList& universe,
                                     SearchStats* stats) {
  const std::uint64_t predicted = CountSubsetsClamped(
      universe.size(),
      std::min<std::uint64_t>(query.EffectiveSizeLimit(g), universe.size()),
      options.max_subsets);
  TICL_CHECK_MSG(predicted <= options.max_subsets,
                 "instance too large for exact enumeration; raise "
                 "ExactOptions::max_subsets only if you mean it");

  EnumerationOutput out{TopRList<Community>(query.r), {}, 0, 0};
  VertexList current;
  EnumerateRecursive(g, query, options, universe, 0, &current, &out);
  stats->candidates_generated += out.candidates;

  if (!options.enforce_maximality) {
    std::vector<Community> result;
    for (auto& entry : out.top.TakeSortedDescending()) {
      result.push_back(std::move(entry.value));
    }
    return result;
  }

  // Definition 3(3): drop candidates with an equal-influence strict
  // superset. Sort by (influence desc, size desc); only candidates of equal
  // influence and larger size can invalidate.
  std::vector<Community>& all = out.all;
  std::sort(all.begin(), all.end(), [](const Community& a, const Community& b) {
    if (a.influence != b.influence) return a.influence > b.influence;
    if (a.members.size() != b.members.size()) {
      return a.members.size() > b.members.size();
    }
    return a.hash < b.hash;
  });
  // Two passes: decide maximality first (the checks read earlier
  // candidates, so nothing may be moved out of `all` yet), then collect.
  std::vector<bool> maximal(all.size(), true);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (all[j].influence != all[i].influence) continue;
      if (all[j].members.size() <= all[i].members.size()) continue;
      if (std::includes(all[j].members.begin(), all[j].members.end(),
                        all[i].members.begin(), all[i].members.end())) {
        maximal[i] = false;
        break;
      }
    }
  }
  TopRList<Community> survivors(query.r);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (maximal[i]) {
      const double influence = all[i].influence;
      const std::uint64_t hash = all[i].hash;
      survivors.Insert(influence, hash, std::move(all[i]));
    } else {
      ++stats->candidates_pruned;
    }
  }
  std::vector<Community> result;
  for (auto& entry : survivors.TakeSortedDescending()) {
    result.push_back(std::move(entry.value));
  }
  return result;
}

}  // namespace

SearchResult ExactSearch(const Graph& g, const Query& query,
                         const ExactOptions& options) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  WallTimer timer;
  SearchResult result;
  SubsetPeeler peeler(g);

  VertexList universe = IndexedMaximalKCore(options.core_index, g, query.k);

  if (!query.non_overlapping) {
    result.communities =
        EnumerateTopR(g, query, options, universe, &result.stats);
  } else {
    // Greedy TONIC: take the best community, exclude its vertices, re-peel
    // the remaining universe, repeat. Optimal per pick.
    Query single = query;
    single.r = 1;
    single.non_overlapping = false;
    for (std::uint32_t round = 0; round < query.r; ++round) {
      if (universe.empty()) break;
      std::vector<Community> best =
          EnumerateTopR(g, single, options, universe, &result.stats);
      if (best.empty()) break;
      Community chosen = std::move(best.front());
      VertexList remaining;
      std::set_difference(universe.begin(), universe.end(),
                          chosen.members.begin(), chosen.members.end(),
                          std::back_inserter(remaining));
      ++result.stats.peel_operations;
      universe = peeler.Peel(remaining, query.k);
      result.communities.push_back(std::move(chosen));
    }
    // Greedy picks are value-sorted by construction except for exotic
    // aggregations (balanced density); normalize ordering.
    std::sort(result.communities.begin(), result.communities.end(),
              [](const Community& a, const Community& b) {
                return TopRList<int>::Better(a.influence, a.hash, b.influence,
                                             b.hash);
              });
  }

  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
