#include "core/local_search.h"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_set>

#include "algo/connectivity.h"
#include "algo/core_decomposition.h"
#include "serve/core_index.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// Candidate prefix evaluator: keeps the running summary of the current
/// candidate C (a prefix of the neighbourhood order) so f(C) is O(1) to
/// query as vertices are appended or popped from the back.
class PrefixEvaluator {
 public:
  PrefixEvaluator(const Graph& g, const AggregationSpec& spec)
      : g_(&g), spec_(spec) {}

  void Clear() { stack_.clear(); }

  void Push(VertexId v) {
    Frame frame;
    frame.vertex = v;
    const Weight w = g_->weight(v);
    if (stack_.empty()) {
      frame.summary = CommunitySummary{w, 1, w, w};
    } else {
      frame.summary = stack_.back().summary;
      frame.summary.weight_sum += w;
      frame.summary.size += 1;
      frame.summary.min_weight = std::min(frame.summary.min_weight, w);
      frame.summary.max_weight = std::max(frame.summary.max_weight, w);
    }
    stack_.push_back(frame);
  }

  void Pop() { stack_.pop_back(); }

  std::size_t size() const { return stack_.size(); }

  double Value() const {
    if (stack_.empty()) return -std::numeric_limits<double>::infinity();
    return EvaluateAggregation(spec_, stack_.back().summary,
                               g_->total_weight());
  }

  /// Current candidate members in push order.
  VertexList Members() const {
    VertexList out;
    out.reserve(stack_.size());
    for (const Frame& f : stack_) out.push_back(f.vertex);
    return out;
  }

 private:
  struct Frame {
    VertexId vertex;
    CommunitySummary summary;
  };
  const Graph* g_;
  AggregationSpec spec_;
  std::vector<Frame> stack_;
};

/// "C is a k-core" test from the strategy procedures, completed with the
/// connectivity requirement of Definition 3.
bool IsConnectedKCore(const Graph& g, VertexList members, VertexId k) {
  std::sort(members.begin(), members.end());
  for (const VertexId v : members) {
    VertexId deg = 0;
    for (const VertexId nbr : g.neighbors(v)) {
      if (std::binary_search(members.begin(), members.end(), nbr)) ++deg;
    }
    if (deg < k) return false;
  }
  return IsSubsetConnected(g, members);
}

/// Shared accept-side state for both strategies.
struct Acceptor {
  const Graph* g;
  const Query* query;
  std::vector<Community> accepted;        // TONIC mode
  TopRList<Community> top;                // TIC (overlap) mode
  TopRList<std::uint64_t> tonic_values;   // TONIC threshold tracking
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint8_t>* removed;     // TONIC vertex lock-out
  SearchStats* stats;

  Acceptor(const Graph& graph, const Query& q,
           std::vector<std::uint8_t>* removed_flags, SearchStats* s)
      : g(&graph),
        query(&q),
        top(q.r),
        tonic_values(q.r),
        removed(removed_flags),
        stats(s) {}

  /// f(L_r): current acceptance threshold.
  double Threshold() const {
    return query->non_overlapping ? tonic_values.Threshold()
                                  : top.Threshold();
  }

  /// Installs a validated candidate.
  void Accept(VertexList members_in_order) {
    Community c = MakeCommunity(*g, std::move(members_in_order),
                                query->aggregation);
    if (!seen.insert(c.hash).second) {
      ++stats->duplicates_skipped;
      return;
    }
    ++stats->candidates_generated;
    if (query->non_overlapping) {
      for (const VertexId v : c.members) (*removed)[v] = 1;
      tonic_values.Insert(c.influence, c.hash, c.hash);
      accepted.push_back(std::move(c));
    } else {
      const double influence = c.influence;
      const std::uint64_t hash = c.hash;
      top.Insert(influence, hash, std::move(c));
    }
  }

  std::vector<Community> TakeTopR() {
    std::vector<Community> out;
    if (query->non_overlapping) {
      std::sort(accepted.begin(), accepted.end(),
                [](const Community& a, const Community& b) {
                  return TopRList<int>::Better(a.influence, a.hash,
                                               b.influence, b.hash);
                });
      if (accepted.size() > query->r) accepted.resize(query->r);
      out = std::move(accepted);
    } else {
      for (auto& entry : top.TakeSortedDescending()) {
        out.push_back(std::move(entry.value));
      }
    }
    return out;
  }
};

/// Procedure SumStrategy: pop the tail while the candidate can still beat
/// the threshold; accept the first connected k-core.
void RunSumStrategy(const Graph& g, const Query& query,
                    const VertexList& neighbourhood, PrefixEvaluator* eval,
                    Acceptor* acceptor) {
  eval->Clear();
  for (const VertexId v : neighbourhood) eval->Push(v);
  while (eval->size() > query.k && eval->Value() > acceptor->Threshold()) {
    ++acceptor->stats->peel_operations;
    if (IsConnectedKCore(g, eval->Members(), query.k)) {
      acceptor->Accept(eval->Members());
      return;
    }
    eval->Pop();
  }
  ++acceptor->stats->candidates_pruned;
}

/// Procedure AvgStrategy: test every prefix; greedy accepts the first
/// qualifying one, random keeps the best.
void RunAvgStrategy(const Graph& g, const Query& query, bool greedy,
                    const VertexList& neighbourhood, PrefixEvaluator* eval,
                    Acceptor* acceptor) {
  eval->Clear();
  VertexList best;
  double best_value = -std::numeric_limits<double>::infinity();
  for (const VertexId v : neighbourhood) {
    eval->Push(v);
    if (eval->size() <= query.k) continue;
    const double value = eval->Value();
    if (value <= acceptor->Threshold()) continue;
    if (!greedy && value <= best_value) continue;
    ++acceptor->stats->peel_operations;
    if (!IsConnectedKCore(g, eval->Members(), query.k)) continue;
    if (greedy) {
      acceptor->Accept(eval->Members());
      return;
    }
    best = eval->Members();
    best_value = value;
  }
  if (!best.empty()) {
    acceptor->Accept(std::move(best));
  } else {
    ++acceptor->stats->candidates_pruned;
  }
}

}  // namespace

SearchResult LocalSearch(const Graph& g, const Query& query,
                         const LocalSearchOptions& options) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  WallTimer timer;
  SearchResult result;

  const VertexId s_eff =
      query.size_constrained()
          ? query.size_limit
          : (options.neighborhood_cap != 0
                 ? options.neighborhood_cap
                 : std::max<VertexId>(2 * (query.k + 1), 32));
  TICL_CHECK_MSG(s_eff >= query.k + 1,
                 "neighbourhood cap below the smallest possible k-core");

  // Line 1: restrict to the maximal k-core.
  const VertexList core =
      IndexedMaximalKCore(options.core_index, g, query.k);
  std::vector<std::uint8_t> in_core(g.num_vertices(), 0);
  for (const VertexId v : core) in_core[v] = 1;
  std::vector<std::uint8_t> removed(g.num_vertices(), 0);

  VertexList seeds = core;
  if (options.seed_order == SeedOrder::kDescendingWeight) {
    std::sort(seeds.begin(), seeds.end(), [&g](VertexId a, VertexId b) {
      if (g.weight(a) != g.weight(b)) return g.weight(a) > g.weight(b);
      return a < b;
    });
  }

  const bool monotone = IsMonotoneUnderRemoval(query.aggregation);
  // TONIC's vertex removals couple the seeds; it always runs serially.
  const unsigned num_threads =
      (query.non_overlapping || options.num_threads <= 1)
          ? 1U
          : options.num_threads;

  // Processes seeds[first], seeds[first + stride], ... into `acceptor`.
  const auto run_seed_range = [&](std::size_t first, std::size_t stride,
                                  Acceptor* acceptor, SearchStats* stats) {
    PrefixEvaluator eval(g, query.aggregation);
    const auto allowed = [&](VertexId v) {
      return in_core[v] != 0 && removed[v] == 0;
    };
    for (std::size_t i = first; i < seeds.size(); i += stride) {
      const VertexId seed = seeds[i];
      if (removed[seed] != 0) continue;  // consumed by a TONIC acceptance
      ++stats->seeds_processed;
      // Line 4: the s-nearest neighbourhood of the seed.
      VertexList neighbourhood =
          CollectNearestNeighbors(g, seed, s_eff, allowed);
      if (neighbourhood.size() < static_cast<std::size_t>(query.k) + 1) {
        continue;
      }
      // Lines 5-6: greedy sorts by descending influence (ties by id so
      // runs are reproducible).
      if (options.greedy) {
        std::sort(neighbourhood.begin(), neighbourhood.end(),
                  [&g](VertexId a, VertexId b) {
                    if (g.weight(a) != g.weight(b)) {
                      return g.weight(a) > g.weight(b);
                    }
                    return a < b;
                  });
      }
      // Line 7: per-aggregation strategy.
      if (monotone) {
        RunSumStrategy(g, query, neighbourhood, &eval, acceptor);
      } else {
        RunAvgStrategy(g, query, options.greedy, neighbourhood, &eval,
                       acceptor);
      }
    }
  };

  if (num_threads == 1) {
    Acceptor acceptor(g, query, &removed, &result.stats);
    run_seed_range(0, 1, &acceptor, &result.stats);
    result.communities = acceptor.TakeTopR();
  } else {
    // Parallel seed expansion (paper §VIII): workers own disjoint strided
    // seed ranges, private result lists and dedup sets; nothing shared is
    // written (`removed` stays all-zero in overlap mode). Merging the
    // per-worker top-r lists with global dedup is deterministic for a
    // fixed thread count.
    std::vector<SearchStats> worker_stats(num_threads);
    std::vector<std::unique_ptr<Acceptor>> acceptors;
    acceptors.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      acceptors.push_back(
          std::make_unique<Acceptor>(g, query, &removed, &worker_stats[t]));
    }
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      workers.emplace_back(run_seed_range, t, num_threads,
                           acceptors[t].get(), &worker_stats[t]);
    }
    for (std::thread& worker : workers) worker.join();

    TopRList<Community> merged(query.r);
    std::unordered_set<std::uint64_t> merged_seen;
    for (unsigned t = 0; t < num_threads; ++t) {
      for (Community& c : acceptors[t]->TakeTopR()) {
        if (!merged_seen.insert(c.hash).second) continue;
        const double influence = c.influence;
        const std::uint64_t hash = c.hash;
        merged.Insert(influence, hash, std::move(c));
      }
      result.stats.seeds_processed += worker_stats[t].seeds_processed;
      result.stats.candidates_generated +=
          worker_stats[t].candidates_generated;
      result.stats.candidates_pruned += worker_stats[t].candidates_pruned;
      result.stats.duplicates_skipped += worker_stats[t].duplicates_skipped;
      result.stats.peel_operations += worker_stats[t].peel_operations;
    }
    for (auto& entry : merged.TakeSortedDescending()) {
      result.communities.push_back(std::move(entry.value));
    }
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
