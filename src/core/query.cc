#include "core/query.h"

#include <cstdio>

namespace ticl {

std::string ValidateQuery(const Query& query, const Graph& g) {
  if (query.k < 1) return "degree constraint k must be >= 1";
  if (query.r < 1) return "output size r must be >= 1";
  if (query.size_constrained() && query.size_limit < query.k + 1) {
    return "size limit s must be >= k + 1 (a k-core needs k + 1 vertices)";
  }
  if (!g.has_weights()) return "graph has no vertex weights assigned";
  if (query.aggregation.kind == Aggregation::kSumSurplus &&
      query.aggregation.alpha < 0.0) {
    return "sum-surplus alpha must be >= 0 (monotonicity; use "
           "weight-density for negative per-vertex surplus)";
  }
  return "";
}

std::string QueryToString(const Query& query) {
  char buf[160];
  if (query.size_constrained()) {
    std::snprintf(buf, sizeof(buf), "%s k=%u r=%u s=%u f=%s",
                  query.non_overlapping ? "TONIC" : "TIC", query.k, query.r,
                  query.size_limit,
                  AggregationName(query.aggregation.kind).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "%s k=%u r=%u s=unbounded f=%s",
                  query.non_overlapping ? "TONIC" : "TIC", query.k, query.r,
                  AggregationName(query.aggregation.kind).c_str());
  }
  return buf;
}

}  // namespace ticl
