#include "core/aggregation.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace ticl {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

CommunitySummary SummarizeSubset(const Graph& g, const VertexList& members) {
  TICL_CHECK_MSG(g.has_weights(), "graph weights not assigned");
  CommunitySummary s;
  s.size = members.size();
  if (members.empty()) return s;
  s.min_weight = std::numeric_limits<double>::infinity();
  s.max_weight = kNegInf;
  for (const VertexId v : members) {
    const Weight w = g.weight(v);
    s.weight_sum += w;
    s.min_weight = std::min(s.min_weight, w);
    s.max_weight = std::max(s.max_weight, w);
  }
  return s;
}

double EvaluateAggregation(const AggregationSpec& spec,
                           const CommunitySummary& summary,
                           double total_graph_weight) {
  if (summary.size == 0) return kNegInf;
  const auto size = static_cast<double>(summary.size);
  switch (spec.kind) {
    case Aggregation::kMin:
      return summary.min_weight;
    case Aggregation::kMax:
      return summary.max_weight;
    case Aggregation::kSum:
      return summary.weight_sum;
    case Aggregation::kSumSurplus:
      return summary.weight_sum + spec.alpha * size;
    case Aggregation::kAvg:
      return summary.weight_sum / size;
    case Aggregation::kWeightDensity:
      return summary.weight_sum - spec.beta * size;
    case Aggregation::kBalancedDensity: {
      // w(H) / (w(H) - w(V \ H)) with w(V \ H) = W_total - w(H).
      const double denominator =
          2.0 * summary.weight_sum - total_graph_weight;
      if (denominator <= 0.0) return kNegInf;
      return summary.weight_sum / denominator;
    }
  }
  TICL_CHECK_MSG(false, "unknown aggregation kind");
  return kNegInf;
}

double EvaluateOnSubset(const AggregationSpec& spec, const Graph& g,
                        const VertexList& members) {
  return EvaluateAggregation(spec, SummarizeSubset(g, members),
                             g.total_weight());
}

bool IsNodeDominated(Aggregation kind) {
  return kind == Aggregation::kMin || kind == Aggregation::kMax;
}

bool IsMonotoneUnderRemoval(const AggregationSpec& spec) {
  switch (spec.kind) {
    case Aggregation::kSum:
      return true;  // weights are non-negative by Graph invariant
    case Aggregation::kSumSurplus:
      return spec.alpha >= 0.0;
    default:
      return false;
  }
}

bool IsPolynomialUnconstrained(const AggregationSpec& spec) {
  return IsNodeDominated(spec.kind) || IsMonotoneUnderRemoval(spec);
}

std::string HardnessClass(const AggregationSpec& spec) {
  return IsPolynomialUnconstrained(spec) ? "P" : "NP-hard";
}

std::string AggregationName(Aggregation kind) {
  switch (kind) {
    case Aggregation::kMin:
      return "min";
    case Aggregation::kMax:
      return "max";
    case Aggregation::kSum:
      return "sum";
    case Aggregation::kSumSurplus:
      return "sum-surplus";
    case Aggregation::kAvg:
      return "avg";
    case Aggregation::kWeightDensity:
      return "weight-density";
    case Aggregation::kBalancedDensity:
      return "balanced-density";
  }
  TICL_CHECK_MSG(false, "unknown aggregation kind");
  return "";
}

std::string AggregationFormula(const AggregationSpec& spec) {
  char buf[96];
  switch (spec.kind) {
    case Aggregation::kMin:
      return "min_{v in H} w(v)";
    case Aggregation::kMax:
      return "max_{v in H} w(v)";
    case Aggregation::kSum:
      return "w(H)";
    case Aggregation::kSumSurplus:
      std::snprintf(buf, sizeof(buf), "w(H) + %g|H|", spec.alpha);
      return buf;
    case Aggregation::kAvg:
      return "w(H) / |H|";
    case Aggregation::kWeightDensity:
      std::snprintf(buf, sizeof(buf), "w(H) - %g|H|", spec.beta);
      return buf;
    case Aggregation::kBalancedDensity:
      return "w(H) / (w(H) - w(V\\H))";
  }
  TICL_CHECK_MSG(false, "unknown aggregation kind");
  return "";
}

}  // namespace ticl
