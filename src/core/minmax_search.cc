#include "core/minmax_search.h"

#include <algorithm>
#include <functional>

#include "algo/core_decomposition.h"
#include "algo/kcore_peeler.h"
#include "serve/core_index.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// Replays the min-weight peel over `members` (must induce a k-core, i.e.
/// already peeled). Invokes `snapshot(step, u)` before deleting each
/// minimum vertex u; the callback may inspect `alive` to materialize u's
/// component. Returns the number of snapshot steps.
class MinPeelDriver {
 public:
  MinPeelDriver(const Graph& g, const VertexList& members, VertexId k)
      : g_(&g), members_(members), k_(k) {}

  using SnapshotFn =
      std::function<void(std::size_t step, VertexId u,
                         const std::vector<std::uint8_t>& alive)>;

  std::size_t Run(const SnapshotFn& snapshot) {
    const VertexId n = g_->num_vertices();
    std::vector<std::uint8_t> alive(n, 0);
    std::vector<VertexId> deg(n, 0);
    for (const VertexId v : members_) alive[v] = 1;
    for (const VertexId v : members_) {
      VertexId d = 0;
      for (const VertexId nbr : g_->neighbors(v)) {
        if (alive[nbr]) ++d;
      }
      deg[v] = d;
      TICL_CHECK_MSG(d >= k_, "MinPeelDriver requires a peeled member set");
    }

    // Deletion candidates in (weight, id) order; dead entries skipped.
    VertexList order = members_;
    std::sort(order.begin(), order.end(), [this](VertexId a, VertexId b) {
      if (g_->weight(a) != g_->weight(b)) {
        return g_->weight(a) < g_->weight(b);
      }
      return a < b;
    });

    std::vector<VertexId> cascade;
    std::size_t step = 0;
    std::size_t cursor = 0;
    for (;;) {
      while (cursor < order.size() && !alive[order[cursor]]) ++cursor;
      if (cursor == order.size()) break;
      const VertexId u = order[cursor];
      if (snapshot) snapshot(step, u, alive);
      ++step;
      // Delete u, then cascade-peel vertices that drop below degree k.
      cascade.clear();
      cascade.push_back(u);
      while (!cascade.empty()) {
        const VertexId v = cascade.back();
        cascade.pop_back();
        if (!alive[v]) continue;
        alive[v] = 0;
        for (const VertexId nbr : g_->neighbors(v)) {
          if (!alive[nbr]) continue;
          --deg[nbr];
          if (deg[nbr] < k_) cascade.push_back(nbr);
        }
      }
    }
    return step;
  }

 private:
  const Graph* g_;
  const VertexList& members_;
  VertexId k_;
};

/// Component of `u` among alive vertices, sorted.
VertexList AliveComponent(const Graph& g, VertexId u,
                          const std::vector<std::uint8_t>& alive) {
  VertexList component;
  std::vector<VertexId> stack{u};
  std::vector<std::uint8_t> visited(g.num_vertices(), 0);
  visited[u] = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    component.push_back(v);
    for (const VertexId nbr : g.neighbors(v)) {
      if (alive[nbr] && !visited[nbr]) {
        visited[nbr] = 1;
        stack.push_back(nbr);
      }
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

/// Top-r (possibly nested) min communities within one already-peeled member
/// set, appended to `out` via two peel passes.
void MinTopRWithin(const Graph& g, const VertexList& members,
                   const Query& query, std::uint32_t want,
                   std::vector<Community>* out, SearchStats* stats) {
  if (members.empty()) return;
  MinPeelDriver counter(g, members, query.k);
  const std::size_t total_steps = counter.Run(nullptr);
  ++stats->peel_operations;
  if (total_steps == 0) return;

  const std::size_t first_wanted =
      total_steps > want ? total_steps - want : 0;
  MinPeelDriver replayer(g, members, query.k);
  replayer.Run([&](std::size_t step, VertexId u,
                   const std::vector<std::uint8_t>& alive) {
    if (step < first_wanted) return;
    Community c = MakeCommunity(g, AliveComponent(g, u, alive),
                                query.aggregation);
    ++stats->candidates_generated;
    out->push_back(std::move(c));
  });
  ++stats->peel_operations;
}

}  // namespace

SearchResult MinPeelSearch(const Graph& g, const Query& query,
                           const CoreIndex* core_index) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  TICL_CHECK_MSG(query.aggregation.kind == Aggregation::kMin,
                 "MinPeelSearch is the f = min solver");
  TICL_CHECK_MSG(!query.size_constrained(),
                 "size-constrained min is NP-hard; use LocalSearch");
  WallTimer timer;
  SearchResult result;

  VertexList core = IndexedMaximalKCore(core_index, g, query.k);
  if (!query.non_overlapping) {
    std::vector<Community> found;
    MinTopRWithin(g, core, query, query.r, &found, &result.stats);
    std::sort(found.begin(), found.end(),
              [](const Community& a, const Community& b) {
                return TopRList<int>::Better(a.influence, a.hash, b.influence,
                                             b.hash);
              });
    if (found.size() > query.r) found.resize(query.r);
    result.communities = std::move(found);
  } else {
    // Greedy TONIC: top-1, remove its vertices, re-peel, repeat.
    SubsetPeeler peeler(g);
    for (std::uint32_t round = 0; round < query.r && !core.empty();
         ++round) {
      std::vector<Community> best;
      MinTopRWithin(g, core, query, 1, &best, &result.stats);
      if (best.empty()) break;
      Community chosen = std::move(best.front());
      VertexList remaining;
      std::set_difference(core.begin(), core.end(), chosen.members.begin(),
                          chosen.members.end(),
                          std::back_inserter(remaining));
      core = peeler.Peel(remaining, query.k);
      ++result.stats.peel_operations;
      result.communities.push_back(std::move(chosen));
    }
    std::sort(result.communities.begin(), result.communities.end(),
              [](const Community& a, const Community& b) {
                return TopRList<int>::Better(a.influence, a.hash, b.influence,
                                             b.hash);
              });
  }

  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

SearchResult MaxComponentsSearch(const Graph& g, const Query& query,
                                 const CoreIndex* core_index) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  TICL_CHECK_MSG(query.aggregation.kind == Aggregation::kMax,
                 "MaxComponentsSearch is the f = max solver");
  TICL_CHECK_MSG(!query.size_constrained(),
                 "size-constrained max is NP-hard; use LocalSearch");
  WallTimer timer;
  SearchResult result;
  TopRList<Community> top(query.r);
  for (VertexList& component :
       IndexedKCoreComponents(core_index, g, query.k)) {
    Community c = MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    const double influence = c.influence;
    const std::uint64_t hash = c.hash;
    top.Insert(influence, hash, std::move(c));
  }
  for (auto& entry : top.TakeSortedDescending()) {
    result.communities.push_back(std::move(entry.value));
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
