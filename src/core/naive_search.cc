#include "core/naive_search.h"

#include <algorithm>
#include <unordered_set>

#include "algo/core_decomposition.h"
#include "algo/kcore_peeler.h"
#include "core/verification.h"
#include "serve/core_index.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// Shared by naive and improved search: the disjoint connected components of
/// the maximal k-core are themselves maximal communities and dominate all of
/// their subgraphs under monotone f, so for TONIC they are the answer.
SearchResult TopRComponents(const Graph& g, const Query& query,
                            const CoreIndex* core_index) {
  WallTimer timer;
  SearchResult result;
  TopRList<Community> top(query.r);
  for (VertexList& component :
       IndexedKCoreComponents(core_index, g, query.k)) {
    Community c =
        MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    const double influence = c.influence;
    const std::uint64_t hash = c.hash;
    top.Insert(influence, hash, std::move(c));
  }
  for (auto& entry : top.TakeSortedDescending()) {
    result.communities.push_back(std::move(entry.value));
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

SearchResult NaiveSearch(const Graph& g, const Query& query,
                         const CoreIndex* core_index) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  TICL_CHECK_MSG(!query.size_constrained(),
                 "NaiveSearch solves the size-unconstrained problem only");
  TICL_CHECK_MSG(IsMonotoneUnderRemoval(query.aggregation),
                 "NaiveSearch requires a monotone aggregation (sum family)");
  if (query.non_overlapping) return TopRComponents(g, query, core_index);

  WallTimer timer;
  SearchResult result;
  SubsetPeeler peeler(g);
  std::unordered_set<std::uint64_t> seen;

  // Lines 1-2: L <- top-r components of the maximal k-core.
  TopRList<Community> top(query.r);
  for (VertexList& component :
       IndexedKCoreComponents(core_index, g, query.k)) {
    Community c =
        MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    seen.insert(c.hash);
    const double influence = c.influence;
    const std::uint64_t hash = c.hash;
    top.Insert(influence, hash, std::move(c));
  }

  // Lines 3-10: scan every vertex, deleting it from each retained community
  // that contains it.
  const VertexId n = g.num_vertices();
  std::vector<Community> batch;
  for (VertexId vi = 0; vi < n; ++vi) {
    batch.clear();
    for (const auto& entry : top.entries()) {
      const VertexList& members = entry.value.members;
      if (!std::binary_search(members.begin(), members.end(), vi)) continue;
      ++result.stats.peel_operations;
      for (VertexList& child :
           peeler.RemoveAndSplit(members, vi, query.k)) {
        Community c =
            MakeCommunity(g, std::move(child), query.aggregation);
        if (!seen.insert(c.hash).second) {
          ++result.stats.duplicates_skipped;
          continue;
        }
        ++result.stats.candidates_generated;
        batch.push_back(std::move(c));
      }
    }
    for (Community& c : batch) {
      const double influence = c.influence;
      const std::uint64_t hash = c.hash;
      if (!top.Insert(influence, hash, std::move(c))) {
        ++result.stats.candidates_pruned;
      }
    }
  }

  for (auto& entry : top.TakeSortedDescending()) {
    result.communities.push_back(std::move(entry.value));
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
