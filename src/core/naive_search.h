// Algorithm 1 (paper §IV.A): the SUM-NA\"IVE top-r search for
// size-unconstrained queries under monotone aggregation functions
// (sum, sum-surplus).
//
// Literal implementation: seed the top-r list with the connected components
// of the maximal k-core, then scan vertices v_1..v_n; deleting v_i from
// every retained community containing it, cascade-peeling the remainder
// back to a k-core, and folding the resulting components back into the
// top-r list. Complexity O(n * r * (n + m)).

#ifndef TICL_CORE_NAIVE_SEARCH_H_
#define TICL_CORE_NAIVE_SEARCH_H_

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

/// Preconditions (checked): valid query, size-unconstrained, monotone
/// aggregation (IsMonotoneUnderRemoval). TONIC queries short-circuit to the
/// top-r k-core components (paper §IV, "Non-overlapping").
SearchResult NaiveSearch(const Graph& g, const Query& query);

}  // namespace ticl

#endif  // TICL_CORE_NAIVE_SEARCH_H_
