// Algorithm 1 (paper §IV.A): the SUM-NA\"IVE top-r search for
// size-unconstrained queries under monotone aggregation functions
// (sum, sum-surplus).
//
// Literal implementation: seed the top-r list with the connected components
// of the maximal k-core, then scan vertices v_1..v_n; deleting v_i from
// every retained community containing it, cascade-peeling the remainder
// back to a k-core, and folding the resulting components back into the
// top-r list. Complexity O(n * r * (n + m)).

#ifndef TICL_CORE_NAIVE_SEARCH_H_
#define TICL_CORE_NAIVE_SEARCH_H_

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

/// Preconditions (checked): valid query, size-unconstrained, monotone
/// aggregation (IsMonotoneUnderRemoval). TONIC queries short-circuit to the
/// top-r k-core components (paper §IV, "Non-overlapping"). `core_index`,
/// when given, must be built from `g`; it replaces the initial
/// decomposition without changing the result.
SearchResult NaiveSearch(const Graph& g, const Query& query,
                         const CoreIndex* core_index = nullptr);

}  // namespace ticl

#endif  // TICL_CORE_NAIVE_SEARCH_H_
