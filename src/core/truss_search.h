// Top-r influential community search under the k-truss cohesiveness model
// — the extension the paper points at in §I/§VII (the influential
// community model "is extended to include additional cohesiveness
// metrics, e.g., k-truss").
//
// A k-truss community is a vertex set H such that the edges of G[H] with
// induced truss number >= k span H and connect it. The solver mirrors
// Algorithm 2's best-first deletion search: seed with the connected
// components of the maximal k-truss, expand the best candidate by deleting
// one vertex and truss-peeling the remainder. For monotone aggregations
// (sum, sum-surplus) this is exact by the same argument as the k-core case
// (DESIGN.md §3.2); the O(1) child-value bound pruning carries over.

#ifndef TICL_CORE_TRUSS_SEARCH_H_
#define TICL_CORE_TRUSS_SEARCH_H_

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

/// Preconditions (checked): valid query, size-unconstrained, monotone
/// aggregation, k >= 2 (query.k is the *truss* parameter here). TONIC
/// queries return the top-r k-truss components (disjoint and dominant
/// under monotone f).
SearchResult TrussImprovedSearch(const Graph& g, const Query& query);

}  // namespace ticl

#endif  // TICL_CORE_TRUSS_SEARCH_H_
