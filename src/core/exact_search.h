// Algorithm 3 (paper §V.A): TIC-EXACT — brute-force enumeration of every
// vertex subset of size k+1 .. s, keeping those that induce a connected
// k-core and ranking them by influence.
//
// Exponential (sum over i of C(n, i) subsets); the paper presents it as the
// unusable-but-correct reference, and that is exactly its role here: ground
// truth for the property tests and the only exact solver for the NP-hard
// size-constrained problems on tiny inputs. A guard refuses inputs whose
// enumeration count exceeds ExactOptions::max_subsets.
//
// The enumeration is restricted to the vertices of the maximal k-core
// (everything else provably belongs to no k-core subgraph), which loses no
// candidates and makes small-graph enumeration far cheaper.

#ifndef TICL_CORE_EXACT_SEARCH_H_
#define TICL_CORE_EXACT_SEARCH_H_

#include <cstdint>

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

struct ExactOptions {
  /// Hard ceiling on subsets examined; the solver aborts (TICL_CHECK) when
  /// the instance would exceed it rather than silently running for hours.
  std::uint64_t max_subsets = 100'000'000;

  /// Definition 3(3) filter: drop candidates that have an enumerated strict
  /// superset with the same influence value. Matters for plateau
  /// aggregations (min / max), where e.g. every connected k-core around the
  /// minimum vertex shares its value and only the maximal one is a
  /// community. O(candidates^2) subset checks — tiny inputs only.
  bool enforce_maximality = false;

  /// Optional precomputed index for the queried graph; replaces the
  /// initial universe computation without changing the result.
  const CoreIndex* core_index = nullptr;
};

/// Preconditions (checked): valid query. Works for any aggregation, with or
/// without size constraint (unconstrained enumerates up to the k-core
/// size). TONIC queries greedily re-enumerate after excluding the vertices
/// of each accepted community (optimal per pick, not globally).
SearchResult ExactSearch(const Graph& g, const Query& query,
                         const ExactOptions& options = {});

}  // namespace ticl

#endif  // TICL_CORE_EXACT_SEARCH_H_
