// The community value type returned by every solver.

#ifndef TICL_CORE_COMMUNITY_H_
#define TICL_CORE_COMMUNITY_H_

#include <cstdint>
#include <string>

#include "core/aggregation.h"
#include "graph/graph.h"

namespace ticl {

/// A candidate or result community: its members (sorted ascending), its
/// influence value under the query's aggregation function, and an
/// order-independent hash of the member set used for deduplication and
/// deterministic tie-breaking.
struct Community {
  VertexList members;
  double influence = 0.0;
  std::uint64_t hash = 0;

  std::size_t size() const { return members.size(); }
};

/// Builds a Community from a member list (sorted in place if needed),
/// evaluating `spec` on `g`'s weights.
Community MakeCommunity(const Graph& g, VertexList members,
                        const AggregationSpec& spec);

/// True if the two communities share at least one vertex (members sorted).
bool CommunitiesOverlap(const Community& a, const Community& b);

/// Debug string: "{v0, v1, ...} f=<influence>". Caps listed members at
/// `max_members` (0 = all).
std::string CommunityToString(const Community& c, std::size_t max_members = 0);

}  // namespace ticl

#endif  // TICL_CORE_COMMUNITY_H_
