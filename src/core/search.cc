#include "core/search.h"

#include "serve/core_index.h"
#include "util/check.h"

namespace ticl {

std::string SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kAuto:
      return "auto";
    case SolverKind::kNaive:
      return "naive";
    case SolverKind::kImproved:
      return "improved";
    case SolverKind::kApprox:
      return "approx";
    case SolverKind::kExact:
      return "exact";
    case SolverKind::kLocalGreedy:
      return "local-greedy";
    case SolverKind::kLocalRandom:
      return "local-random";
    case SolverKind::kMinPeel:
      return "min-peel";
    case SolverKind::kMaxComponents:
      return "max-components";
  }
  TICL_CHECK_MSG(false, "unknown solver kind");
  return "";
}

bool ParseSolverKind(const std::string& name, SolverKind* kind) {
  // Driven by SolverKindName so a new SolverKind only needs the switch
  // above updated.
  static constexpr SolverKind kAll[] = {
      SolverKind::kAuto,       SolverKind::kNaive,
      SolverKind::kImproved,   SolverKind::kApprox,
      SolverKind::kExact,      SolverKind::kLocalGreedy,
      SolverKind::kLocalRandom, SolverKind::kMinPeel,
      SolverKind::kMaxComponents};
  for (const SolverKind candidate : kAll) {
    if (name == SolverKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::string ValidateSolveOptions(const SolveOptions& options) {
  // `!(in range)` instead of `out of range` so NaN fails too.
  if (!(options.epsilon >= 0.0 && options.epsilon < 1.0)) {
    return "epsilon must be in [0, 1) (got " +
           std::to_string(options.epsilon) + ")";
  }
  return "";
}

SolverKind AutoSolverFor(const Query& query) {
  if (!query.size_constrained()) {
    if (query.aggregation.kind == Aggregation::kMin) {
      return SolverKind::kMinPeel;
    }
    if (query.aggregation.kind == Aggregation::kMax) {
      return SolverKind::kMaxComponents;
    }
    if (IsMonotoneUnderRemoval(query.aggregation)) {
      return SolverKind::kImproved;
    }
  }
  return SolverKind::kLocalGreedy;
}

SearchResult Solve(const Graph& g, const Query& query,
                   const SolveOptions& options) {
  // A CoreIndex seeds the solvers with precomputed k-cores; one built for a
  // different graph would silently return wrong communities. The
  // fingerprint (n, 2m, CSR hash) makes the mismatch loud, and unlike
  // pointer identity it accepts an index deserialized from a snapshot or
  // built from an identical copy of the graph.
  if (options.core_index != nullptr) {
    TICL_CHECK_MSG(
        options.core_index->fingerprint() == g.fingerprint(),
        "SolveOptions::core_index was built for a different graph");
  }
  SolverKind solver = options.solver;
  if (solver == SolverKind::kAuto) solver = AutoSolverFor(query);
  switch (solver) {
    case SolverKind::kAuto:
      break;  // unreachable
    case SolverKind::kNaive:
      return NaiveSearch(g, query, options.core_index);
    case SolverKind::kImproved: {
      ImprovedOptions improved;
      improved.epsilon = 0.0;
      improved.core_index = options.core_index;
      return ImprovedSearch(g, query, improved);
    }
    case SolverKind::kApprox: {
      ImprovedOptions improved;
      improved.epsilon = options.epsilon;
      improved.core_index = options.core_index;
      return ImprovedSearch(g, query, improved);
    }
    case SolverKind::kExact: {
      ExactOptions exact = options.exact;
      exact.core_index = options.core_index;
      return ExactSearch(g, query, exact);
    }
    case SolverKind::kLocalGreedy: {
      LocalSearchOptions local = options.local;
      local.greedy = true;
      local.core_index = options.core_index;
      return LocalSearch(g, query, local);
    }
    case SolverKind::kLocalRandom: {
      LocalSearchOptions local = options.local;
      local.greedy = false;
      local.core_index = options.core_index;
      return LocalSearch(g, query, local);
    }
    case SolverKind::kMinPeel:
      return MinPeelSearch(g, query, options.core_index);
    case SolverKind::kMaxComponents:
      return MaxComponentsSearch(g, query, options.core_index);
  }
  TICL_CHECK_MSG(false, "unknown solver kind");
  return {};
}

}  // namespace ticl
