// Aggregation functions over community vertex weights (paper Table I).
//
// The paper generalizes influential community search from `min` to a family
// of aggregation functions whose algebraic properties decide both the
// hardness of the search problem and which algorithm applies:
//
//   function          formula              hardness (unconstrained top-r)
//   min               min_{v in H} w(v)    P (node-dominated)
//   max               max_{v in H} w(v)    P (node-dominated)
//   sum               w(H)                 P (monotone under removal)
//   sum-surplus       w(H) + alpha |H|     P (monotone for alpha >= 0)
//   avg               w(H) / |H|           NP-hard
//   weight density    w(H) - beta |H|      NP-hard
//   balanced density  w(H)/(w(H)-w(V\H))   NP-hard
//
// Every size-constrained variant under sum or avg is NP-hard (paper §III).

#ifndef TICL_CORE_AGGREGATION_H_
#define TICL_CORE_AGGREGATION_H_

#include <cstddef>
#include <string>

#include "graph/graph.h"

namespace ticl {

enum class Aggregation {
  kMin,
  kMax,
  kSum,
  kSumSurplus,
  kAvg,
  kWeightDensity,
  kBalancedDensity,
};

/// An aggregation function plus its parameters.
struct AggregationSpec {
  Aggregation kind = Aggregation::kSum;
  /// sum-surplus: f(H) = w(H) + alpha * |H|. Must be >= 0 for the
  /// polynomial-time solvers (monotonicity).
  double alpha = 1.0;
  /// weight density: f(H) = w(H) - beta * |H|.
  double beta = 1.0;

  static AggregationSpec Min() { return {Aggregation::kMin, 0, 0}; }
  static AggregationSpec Max() { return {Aggregation::kMax, 0, 0}; }
  static AggregationSpec Sum() { return {Aggregation::kSum, 0, 0}; }
  static AggregationSpec SumSurplus(double alpha) {
    return {Aggregation::kSumSurplus, alpha, 0};
  }
  static AggregationSpec Avg() { return {Aggregation::kAvg, 0, 0}; }
  static AggregationSpec WeightDensity(double beta) {
    return {Aggregation::kWeightDensity, 0, beta};
  }
  static AggregationSpec BalancedDensity() {
    return {Aggregation::kBalancedDensity, 0, 0};
  }
};

/// O(1) summary from which every Table I function can be evaluated.
struct CommunitySummary {
  double weight_sum = 0.0;
  std::size_t size = 0;
  double min_weight = 0.0;
  double max_weight = 0.0;
};

/// Accumulates `members` of `g` into a summary. O(|members|).
CommunitySummary SummarizeSubset(const Graph& g, const VertexList& members);

/// Evaluates the aggregation on a summary. `total_graph_weight` is only
/// consulted by balanced density (it needs w(V \ H)); pass
/// g.total_weight(). Empty communities evaluate to -infinity.
/// Balanced density with non-positive denominator evaluates to -infinity
/// (documented convention; the paper leaves this case unspecified).
double EvaluateAggregation(const AggregationSpec& spec,
                           const CommunitySummary& summary,
                           double total_graph_weight);

/// Convenience: summarize + evaluate.
double EvaluateOnSubset(const AggregationSpec& spec, const Graph& g,
                        const VertexList& members);

/// "Node domination" (paper Def. 6): the community value equals some single
/// member's value. Holds for min and max; these admit the prior-work
/// peel-style algorithms.
bool IsNodeDominated(Aggregation kind);

/// Monotone non-increasing under vertex removal (paper Corollary 2 — the
/// property Algorithm 2's pruning requires). True for sum over non-negative
/// weights and for sum-surplus with alpha >= 0.
bool IsMonotoneUnderRemoval(const AggregationSpec& spec);

/// True when the unconstrained top-r problem is polynomial-time solvable
/// (min, max, sum, sum-surplus with alpha >= 0); NP-hard otherwise.
bool IsPolynomialUnconstrained(const AggregationSpec& spec);

/// Hardness label for Table I ("P" or "NP-hard").
std::string HardnessClass(const AggregationSpec& spec);

/// "min", "max", "sum", "sum-surplus", "avg", "weight-density",
/// "balanced-density".
std::string AggregationName(Aggregation kind);

/// Human-readable formula, e.g. "w(H) + 1.5|H|".
std::string AggregationFormula(const AggregationSpec& spec);

}  // namespace ticl

#endif  // TICL_CORE_AGGREGATION_H_
