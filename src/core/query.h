// Query model: the (k, r, s, f) tuple of paper Problems 1 (TIC) and 2
// (TONIC).

#ifndef TICL_CORE_QUERY_H_
#define TICL_CORE_QUERY_H_

#include <cstdint>
#include <string>

#include "core/aggregation.h"
#include "graph/graph.h"

namespace ticl {

struct Query {
  /// Degree constraint k (every member needs >= k neighbours inside).
  VertexId k = 1;
  /// Output size: the top-r communities.
  std::uint32_t r = 1;
  /// Size constraint s; 0 means unconstrained (the paper's s = |V|).
  VertexId size_limit = 0;
  /// The aggregation function f.
  AggregationSpec aggregation = AggregationSpec::Sum();
  /// Problem 2 (TONIC): results must be pairwise disjoint.
  bool non_overlapping = false;

  bool size_constrained() const { return size_limit != 0; }

  /// Effective size bound: size_limit, or n when unconstrained.
  VertexId EffectiveSizeLimit(const Graph& g) const {
    return size_constrained() ? size_limit : g.num_vertices();
  }
};

/// Returns "" if the query is well-formed for `g`, else a diagnostic:
/// k >= 1, r >= 1, a size limit (when given) of at least k + 1 (smaller
/// k-cores cannot exist), and assigned weights.
std::string ValidateQuery(const Query& query, const Graph& g);

/// One-line description, e.g. "TIC k=4 r=5 s=20 f=avg".
std::string QueryToString(const Query& query);

}  // namespace ticl

#endif  // TICL_CORE_QUERY_H_
