// Prior-work baselines for the node-dominated aggregations (paper §III:
// f = min was solved by Li et al. VLDB'15 / Bi et al. VLDB'18; max is the
// straightforward extension). These power the case study's `min` column and
// give the library full Table I coverage.
//
// min: repeatedly delete the globally minimum-weight vertex of the
// surviving k-core, cascade-peeling after each deletion. The connected
// component containing the vertex, snapshotted just before its deletion, is
// a maximal k-influential community whose influence is that vertex's
// weight. Deletion values are non-decreasing, so the top-r communities are
// the last r snapshots; a two-pass replay materializes only those,
// keeping memory at O(r * |community|). Total time O(n log n + r(n + m)).
//
// max: a community's value is its maximum member weight, so every maximal
// community is a whole k-core component; rank components by their maximum.

#ifndef TICL_CORE_MINMAX_SEARCH_H_
#define TICL_CORE_MINMAX_SEARCH_H_

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

/// Preconditions (checked): valid query, aggregation kind kMin,
/// size-unconstrained (the size-constrained variant is NP-hard; use
/// LocalSearch). TONIC mode extracts the top-1 community, removes it, and
/// repeats — results are disjoint and non-increasing in value.
/// `core_index`, when given, must be built from `g`; it replaces the
/// initial decomposition without changing the result.
SearchResult MinPeelSearch(const Graph& g, const Query& query,
                           const CoreIndex* core_index = nullptr);

/// Preconditions (checked): valid query, aggregation kind kMax,
/// size-unconstrained. Results are the k-core components ranked by their
/// maximum member weight (already disjoint, so TIC and TONIC coincide).
SearchResult MaxComponentsSearch(const Graph& g, const Query& query,
                                 const CoreIndex* core_index = nullptr);

}  // namespace ticl

#endif  // TICL_CORE_MINMAX_SEARCH_H_
