// Algorithm 4 (paper §V.B): LOCAL SEARCH — the heuristic solver for the
// NP-hard size-constrained problems (and, via a neighbourhood cap, for the
// NP-hard unconstrained ones such as avg).
//
// For every seed vertex surviving in the maximal k-core, a BFS collects the
// s-nearest neighbourhood (expanding to 2+ hops when 1 hop is too small).
// The "Greedy" configuration sorts that neighbourhood by descending weight;
// "Random" keeps plain BFS order. A per-aggregation strategy then carves a
// candidate out of the neighbourhood:
//
//   * SumStrategy (monotone f): start from the whole neighbourhood and pop
//     the tail while the candidate still beats the current r-th result,
//     accepting the first connected k-core found.
//   * AvgStrategy (non-monotone f: avg, min, max, densities): grow the
//     candidate vertex by vertex and test every prefix of size > k; greedy
//     accepts the first qualifying prefix, random keeps the best one.
//
// Documented deviations from the paper's listing (DESIGN.md §3.4): the
// result list starts empty rather than holding the oversized k-core
// components, candidates must be connected (Definition 3 requires it), and
// duplicates are filtered.

#ifndef TICL_CORE_LOCAL_SEARCH_H_
#define TICL_CORE_LOCAL_SEARCH_H_

#include <cstdint>

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

/// Seed iteration order. The paper scans vertices in index order; visiting
/// high-weight seeds first is an ablation knob (bench_ablation_seed_order).
enum class SeedOrder {
  kVertexId,
  kDescendingWeight,
};

struct LocalSearchOptions {
  /// True = "Greedy" (sort neighbourhood by descending weight),
  /// false = "Random" (plain BFS order). Paper Figs. 6-13 compare the two.
  bool greedy = true;
  SeedOrder seed_order = SeedOrder::kVertexId;
  /// Neighbourhood size for size-unconstrained queries (where the paper's
  /// s is unbounded); 0 picks max(2 * (k + 1), 32). Ignored when the query
  /// carries a size limit.
  VertexId neighborhood_cap = 0;
  /// Parallel seed expansion — the paper's §VIII future-work direction.
  /// Seeds are strided across workers, each with a private result list and
  /// dedup set; the lists are merged afterwards. Deterministic for a fixed
  /// thread count. Only overlapping (TIC) queries parallelize — TONIC's
  /// vertex removals are inherently sequential, so it runs serially
  /// regardless of this setting.
  unsigned num_threads = 1;
  /// Optional precomputed index for the queried graph; replaces the Line 1
  /// maximal-k-core computation without changing the result.
  const CoreIndex* core_index = nullptr;
};

/// Works for every aggregation, with or without size constraint, TIC or
/// TONIC (accepted TONIC communities are removed from the working graph so
/// later seeds cannot reuse their vertices). Heuristic: results are valid
/// communities but not guaranteed optimal.
SearchResult LocalSearch(const Graph& g, const Query& query,
                         const LocalSearchOptions& options = {});

}  // namespace ticl

#endif  // TICL_CORE_LOCAL_SEARCH_H_
