#include "core/result.h"

#include <limits>

namespace ticl {

double SearchResult::InfluenceAt(std::size_t i) const {
  if (i >= communities.size()) {
    return -std::numeric_limits<double>::infinity();
  }
  return communities[i].influence;
}

}  // namespace ticl
