// Algorithm 2 (paper §IV.A): TIC-IMPROVED, the lower-bound-pruned top-r
// search for size-unconstrained queries under monotone aggregation
// functions. epsilon = 0 is the paper's "Improve" configuration (exact);
// epsilon > 0 is "Approx" with the Theorem 6 guarantee
// ra / re >= 1 - epsilon on the r-th influence value.
//
// Structure: the top-r list L holds the best r candidates seen; each round
// expands the best not-yet-expanded candidate L_max by deleting each of its
// vertices, cascade-peeling and re-inserting the resulting components.
// Monotonicity (Corollary 2) gives two prunings:
//   * a child whose O(1) value upper bound f(L_max) - contribution(v)
//     cannot beat the current r-th value f(L_r) is skipped without peeling
//     (the paper's Line 13 test);
//   * candidates evicted from L can never re-enter the top-r, so L *is*
//     the complete frontier — memory stays at O(r) communities.
// With epsilon > 0 the loop stops as soon as L already holds r candidates
// with value >= (1 - epsilon) * f(L_max): the exact r-th value re is at
// most f(L_max), so every returned value meets the bound.

#ifndef TICL_CORE_IMPROVED_SEARCH_H_
#define TICL_CORE_IMPROVED_SEARCH_H_

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

struct ImprovedOptions {
  /// Approximation ratio; 0 = exact ("Improve"), paper default 0.1 for
  /// "Approx".
  double epsilon = 0.0;
  /// Ablation: disable the O(1) child-value bound pruning (always peel).
  bool enable_bound_pruning = true;
  /// Ablation: expand candidates in FIFO order instead of best-first.
  /// Exactness is unaffected (the top-r fixpoint is order-independent);
  /// the number of expansions is not.
  bool best_first = true;
  /// Optional precomputed index for the queried graph; replaces the
  /// seeding decomposition (Lines 1-2) without changing the result.
  const CoreIndex* core_index = nullptr;
};

/// Preconditions (checked): valid query, size-unconstrained, monotone
/// aggregation. TONIC queries short-circuit to the top-r k-core components
/// (paper §IV, "Non-overlapping": Lines 1-3 of Algorithm 2 suffice).
SearchResult ImprovedSearch(const Graph& g, const Query& query,
                            const ImprovedOptions& options = {});

}  // namespace ticl

#endif  // TICL_CORE_IMPROVED_SEARCH_H_
