// Result validation: checks that solver outputs actually satisfy the
// community model. Used heavily by the test suite and exposed publicly so
// downstream users can assert on results too.

#ifndef TICL_CORE_VERIFICATION_H_
#define TICL_CORE_VERIFICATION_H_

#include <string>

#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

/// Checks one community against Definition 3/4: members sorted and unique,
/// in range, non-empty, induced minimum degree >= k, connected, and within
/// the size limit (0 = unbounded). Returns "" when valid, else a diagnostic.
std::string ValidateCommunity(const Graph& g, const VertexList& members,
                              VertexId k, VertexId size_limit = 0);

/// Checks a whole result set against a query: every community valid, the
/// stored influence matching a recomputation, non-increasing influence
/// order, no duplicate communities, pairwise disjoint when the query is
/// TONIC, and at most r entries. Returns "" when valid.
std::string ValidateResult(const Graph& g, const Query& query,
                           const SearchResult& result);

}  // namespace ticl

#endif  // TICL_CORE_VERIFICATION_H_
