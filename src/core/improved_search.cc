#include "core/improved_search.h"

#include <algorithm>
#include <unordered_set>

#include "algo/core_decomposition.h"
#include "algo/kcore_peeler.h"
#include "serve/core_index.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// One retained candidate. `expanded` marks that its single-vertex
/// deletions have been generated; `sequence` provides FIFO order for the
/// ablation mode.
struct PoolEntry {
  Community community;
  bool expanded = false;
  std::uint64_t sequence = 0;
};

/// The bounded candidate pool: at most r entries, worst evicted first.
/// Linear scans are fine — r is small (the paper never exceeds 20).
class CandidatePool {
 public:
  explicit CandidatePool(std::uint32_t r) : capacity_(r) {}

  /// Inserts, possibly evicting the worst entry. Returns false if the
  /// candidate was worse than everything retained (and the pool is full).
  bool Insert(Community c, std::uint64_t sequence) {
    if (entries_.size() < capacity_) {
      entries_.push_back(PoolEntry{std::move(c), false, sequence});
      return true;
    }
    std::size_t worst = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (!Better(entries_[i], entries_[worst])) worst = i;
    }
    const PoolEntry& w = entries_[worst];
    if (!TopRList<int>::Better(c.influence, c.hash, w.community.influence,
                               w.community.hash)) {
      return false;
    }
    entries_[worst] = PoolEntry{std::move(c), false, sequence};
    return true;
  }

  /// f(L_r): the value of the r-th retained candidate, -inf while not full.
  double Threshold() const {
    if (entries_.size() < capacity_) {
      return -std::numeric_limits<double>::infinity();
    }
    double worst = std::numeric_limits<double>::infinity();
    for (const PoolEntry& e : entries_) {
      worst = std::min(worst, e.community.influence);
    }
    return worst;
  }

  /// Index of the next entry to expand (best-first or FIFO), or npos.
  std::size_t NextUnexpanded(bool best_first) const {
    std::size_t pick = kNone;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].expanded) continue;
      if (pick == kNone) {
        pick = i;
        continue;
      }
      if (best_first ? Better(entries_[i], entries_[pick])
                     : entries_[i].sequence < entries_[pick].sequence) {
        pick = i;
      }
    }
    return pick;
  }

  /// Number of retained candidates with value >= bound.
  std::size_t CountAtLeast(double bound) const {
    std::size_t count = 0;
    for (const PoolEntry& e : entries_) {
      if (e.community.influence >= bound) ++count;
    }
    return count;
  }

  PoolEntry& at(std::size_t i) { return entries_[i]; }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::vector<Community> TakeSortedDescending() {
    std::sort(entries_.begin(), entries_.end(),
              [](const PoolEntry& a, const PoolEntry& b) {
                return Better(a, b);
              });
    std::vector<Community> out;
    out.reserve(entries_.size());
    for (PoolEntry& e : entries_) out.push_back(std::move(e.community));
    entries_.clear();
    return out;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  static bool Better(const PoolEntry& a, const PoolEntry& b) {
    return TopRList<int>::Better(a.community.influence, a.community.hash,
                                 b.community.influence, b.community.hash);
  }

  std::size_t capacity_;
  std::vector<PoolEntry> entries_;
};

/// O(1) upper bound on f(H \ {v}) for monotone aggregations: the cascade
/// can only shrink the community further, which never raises the value.
double ChildValueBound(const AggregationSpec& spec, double parent_value,
                       Weight removed_weight) {
  switch (spec.kind) {
    case Aggregation::kSum:
      return parent_value - removed_weight;
    case Aggregation::kSumSurplus:
      return parent_value - removed_weight - spec.alpha;
    default:
      TICL_CHECK_MSG(false, "ChildValueBound requires a monotone spec");
      return 0.0;
  }
}

SearchResult TopRComponents(const Graph& g, const Query& query,
                            const CoreIndex* core_index) {
  WallTimer timer;
  SearchResult result;
  TopRList<Community> top(query.r);
  for (VertexList& component :
       IndexedKCoreComponents(core_index, g, query.k)) {
    Community c = MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    const double influence = c.influence;
    const std::uint64_t hash = c.hash;
    top.Insert(influence, hash, std::move(c));
  }
  for (auto& entry : top.TakeSortedDescending()) {
    result.communities.push_back(std::move(entry.value));
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

SearchResult ImprovedSearch(const Graph& g, const Query& query,
                            const ImprovedOptions& options) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  TICL_CHECK_MSG(!query.size_constrained(),
                 "ImprovedSearch solves the size-unconstrained problem only");
  TICL_CHECK_MSG(
      IsMonotoneUnderRemoval(query.aggregation),
      "ImprovedSearch requires a monotone aggregation (sum family)");
  TICL_CHECK(options.epsilon >= 0.0 && options.epsilon < 1.0);
  if (query.non_overlapping) {
    return TopRComponents(g, query, options.core_index);
  }

  WallTimer timer;
  SearchResult result;
  SubsetPeeler peeler(g);
  std::unordered_set<std::uint64_t> seen;
  CandidatePool pool(query.r);
  std::uint64_t sequence = 0;

  // Lines 1-2: seed with the k-core components.
  for (VertexList& component :
       IndexedKCoreComponents(options.core_index, g, query.k)) {
    Community c = MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    seen.insert(c.hash);
    pool.Insert(std::move(c), sequence++);
  }

  // Expansion loop (Lines 7-19).
  VertexList parent_members;
  for (;;) {
    const std::size_t pick = pool.NextUnexpanded(options.best_first);
    if (pick == CandidatePool::kNone) break;  // exact fixpoint reached

    // Early stop for epsilon > 0: the exact r-th value cannot exceed the
    // best unexpanded candidate's value, so once r retained candidates
    // clear (1 - eps) * f(L_max) the guarantee holds.
    if (options.epsilon > 0.0) {
      double best_unexpanded = pool.at(pick).community.influence;
      if (options.best_first == false) {
        // FIFO picks are not value-ordered; find the true max.
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (!pool.at(i).expanded) {
            best_unexpanded =
                std::max(best_unexpanded, pool.at(i).community.influence);
          }
        }
      }
      const double lb = (1.0 - options.epsilon) * best_unexpanded;
      if (pool.CountAtLeast(lb) >= pool.capacity()) break;
    }

    PoolEntry& entry = pool.at(pick);
    entry.expanded = true;
    const double parent_value = entry.community.influence;
    // Copy: inserting children may evict this very entry from the pool.
    parent_members = entry.community.members;

    std::size_t unexpanded = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!pool.at(i).expanded) ++unexpanded;
    }
    result.stats.peak_frontier =
        std::max<std::uint64_t>(result.stats.peak_frontier, unexpanded + 1);

    for (const VertexId v : parent_members) {
      // Line 13 pruning: O(1) bound before the O(n + m) peel.
      const double bound =
          ChildValueBound(query.aggregation, parent_value, g.weight(v));
      if (options.enable_bound_pruning && bound < pool.Threshold()) {
        ++result.stats.candidates_pruned;
        continue;
      }
      ++result.stats.peel_operations;
      for (VertexList& child :
           peeler.RemoveAndSplit(parent_members, v, query.k)) {
        Community c = MakeCommunity(g, std::move(child), query.aggregation);
        if (!seen.insert(c.hash).second) {
          ++result.stats.duplicates_skipped;
          continue;
        }
        ++result.stats.candidates_generated;
        if (!pool.Insert(std::move(c), sequence++)) {
          ++result.stats.candidates_pruned;
        }
      }
    }
  }

  result.communities = pool.TakeSortedDescending();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
