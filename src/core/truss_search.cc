#include "core/truss_search.h"

#include <algorithm>
#include <unordered_set>

#include "algo/truss_decomposition.h"
#include "algo/union_find.h"
#include "util/check.h"
#include "util/timing.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

/// Truss-peels the subgraph induced by `members` minus `removed` and
/// splits the survivors into components connected via truss->= k edges.
/// Each component is sorted and expressed in original vertex ids.
std::vector<VertexList> TrussRemoveAndSplit(const Graph& g,
                                            const VertexList& members,
                                            VertexId removed, VertexId k) {
  VertexList reduced;
  reduced.reserve(members.size());
  for (const VertexId v : members) {
    if (v != removed) reduced.push_back(v);
  }
  const InducedSubgraph sub = ExtractInducedSubgraph(g, reduced);
  const TrussDecompositionResult decomp = TrussDecomposition(sub.graph);
  UnionFind uf(sub.graph.num_vertices());
  std::vector<std::uint8_t> covered(sub.graph.num_vertices(), 0);
  for (std::size_t e = 0; e < decomp.edges.size(); ++e) {
    if (decomp.truss[e] >= k) {
      uf.Union(decomp.edges[e].u, decomp.edges[e].v);
      covered[decomp.edges[e].u] = 1;
      covered[decomp.edges[e].v] = 1;
    }
  }
  std::vector<std::pair<VertexId, VertexId>> rep_vertex;
  for (VertexId lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    if (covered[lv]) rep_vertex.emplace_back(uf.Find(lv), lv);
  }
  std::sort(rep_vertex.begin(), rep_vertex.end());
  std::vector<VertexList> components;
  for (std::size_t i = 0; i < rep_vertex.size();) {
    VertexList component;
    const VertexId rep = rep_vertex[i].first;
    while (i < rep_vertex.size() && rep_vertex[i].first == rep) {
      component.push_back(sub.to_original[rep_vertex[i].second]);
      ++i;
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

double ChildValueBound(const AggregationSpec& spec, double parent_value,
                       Weight removed_weight) {
  switch (spec.kind) {
    case Aggregation::kSum:
      return parent_value - removed_weight;
    case Aggregation::kSumSurplus:
      return parent_value - removed_weight - spec.alpha;
    default:
      TICL_CHECK_MSG(false, "ChildValueBound requires a monotone spec");
      return 0.0;
  }
}

struct PoolEntry {
  Community community;
  bool expanded = false;
};

}  // namespace

SearchResult TrussImprovedSearch(const Graph& g, const Query& query) {
  TICL_CHECK_MSG(ValidateQuery(query, g).empty(), "invalid query");
  TICL_CHECK_MSG(query.k >= 2, "a k-truss needs k >= 2");
  TICL_CHECK_MSG(!query.size_constrained(),
                 "TrussImprovedSearch solves the unconstrained problem");
  TICL_CHECK_MSG(IsMonotoneUnderRemoval(query.aggregation),
                 "TrussImprovedSearch requires a monotone aggregation");
  WallTimer timer;
  SearchResult result;

  std::unordered_set<std::uint64_t> seen;
  std::vector<PoolEntry> pool;
  const auto better = [](const Community& a, const Community& b) {
    return TopRList<int>::Better(a.influence, a.hash, b.influence, b.hash);
  };
  const auto threshold = [&]() -> double {
    if (pool.size() < query.r) {
      return -std::numeric_limits<double>::infinity();
    }
    double worst = std::numeric_limits<double>::infinity();
    for (const PoolEntry& entry : pool) {
      worst = std::min(worst, entry.community.influence);
    }
    return worst;
  };
  const auto insert = [&](Community c) {
    if (pool.size() < query.r) {
      pool.push_back(PoolEntry{std::move(c), false});
      return;
    }
    std::size_t worst = 0;
    for (std::size_t i = 1; i < pool.size(); ++i) {
      if (!better(pool[i].community, pool[worst].community)) worst = i;
    }
    if (better(c, pool[worst].community)) {
      pool[worst] = PoolEntry{std::move(c), false};
    } else {
      ++result.stats.candidates_pruned;
    }
  };

  for (VertexList& component : KTrussComponents(g, query.k)) {
    Community c = MakeCommunity(g, std::move(component), query.aggregation);
    ++result.stats.candidates_generated;
    seen.insert(c.hash);
    insert(std::move(c));
  }

  if (!query.non_overlapping) {
    for (;;) {
      // Best unexpanded candidate.
      std::size_t pick = pool.size();
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].expanded) continue;
        if (pick == pool.size() ||
            better(pool[i].community, pool[pick].community)) {
          pick = i;
        }
      }
      if (pick == pool.size()) break;
      pool[pick].expanded = true;
      const double parent_value = pool[pick].community.influence;
      const VertexList parent_members = pool[pick].community.members;

      for (const VertexId v : parent_members) {
        const double bound =
            ChildValueBound(query.aggregation, parent_value, g.weight(v));
        if (bound < threshold()) {
          ++result.stats.candidates_pruned;
          continue;
        }
        ++result.stats.peel_operations;
        for (VertexList& child :
             TrussRemoveAndSplit(g, parent_members, v, query.k)) {
          Community c =
              MakeCommunity(g, std::move(child), query.aggregation);
          if (!seen.insert(c.hash).second) {
            ++result.stats.duplicates_skipped;
            continue;
          }
          ++result.stats.candidates_generated;
          insert(std::move(c));
        }
      }
    }
  }

  std::sort(pool.begin(), pool.end(),
            [&better](const PoolEntry& a, const PoolEntry& b) {
              return better(a.community, b.community);
            });
  for (PoolEntry& entry : pool) {
    result.communities.push_back(std::move(entry.community));
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ticl
