// Solver output: ranked communities plus execution statistics.

#ifndef TICL_CORE_RESULT_H_
#define TICL_CORE_RESULT_H_

#include <cstdint>
#include <vector>

#include "core/community.h"

namespace ticl {

/// Counters filled in by the solvers; benches surface these alongside the
/// wall-clock numbers.
struct SearchStats {
  double elapsed_seconds = 0.0;
  /// Candidate communities materialized (after dedup).
  std::uint64_t candidates_generated = 0;
  /// Candidates rejected by the f(L_r) / lower-bound pruning rules.
  std::uint64_t candidates_pruned = 0;
  /// Cascade peel invocations (the RemoveAndSplit inner step).
  std::uint64_t peel_operations = 0;
  /// Duplicate candidates skipped by vertex-set-hash dedup.
  std::uint64_t duplicates_skipped = 0;
  /// Local search only: seeds expanded.
  std::uint64_t seeds_processed = 0;
  /// Improved search only: max heap size observed.
  std::uint64_t peak_frontier = 0;
};

struct SearchResult {
  /// Best-first: communities[0] is the top-1. At most r entries; fewer when
  /// the graph does not contain r qualifying communities.
  std::vector<Community> communities;
  SearchStats stats;

  /// Influence of the i-th (0-based) community, or -inf past the end —
  /// convenient for "r-th influence value" effectiveness plots.
  double InfluenceAt(std::size_t i) const;
};

}  // namespace ticl

#endif  // TICL_CORE_RESULT_H_
