// The library's front door: one Solve() call that dispatches a (graph,
// query) pair to the right algorithm, either automatically — following the
// paper's hardness map — or by explicit choice.

#ifndef TICL_CORE_SEARCH_H_
#define TICL_CORE_SEARCH_H_

#include <string>

#include "core/exact_search.h"
#include "core/improved_search.h"
#include "core/local_search.h"
#include "core/minmax_search.h"
#include "core/naive_search.h"
#include "core/query.h"
#include "core/result.h"
#include "graph/graph.h"

namespace ticl {

class CoreIndex;  // serve/core_index.h

enum class SolverKind {
  /// Pick automatically from the aggregation's traits and the constraints:
  ///   node-dominated + unconstrained  -> min-peel / max-components
  ///   monotone + unconstrained        -> Improved (exact, eps = 0)
  ///   everything else (NP-hard)       -> LocalSearch greedy
  kAuto,
  kNaive,           // Algorithm 1
  kImproved,        // Algorithm 2, eps = 0
  kApprox,          // Algorithm 2, eps = options.epsilon
  kExact,           // Algorithm 3 (tiny instances)
  kLocalGreedy,     // Algorithm 4, greedy strategy
  kLocalRandom,     // Algorithm 4, random (BFS-order) strategy
  kMinPeel,         // prior-work min baseline
  kMaxComponents,   // prior-work max baseline
};

std::string SolverKindName(SolverKind kind);

/// Inverse of SolverKindName: resolves a CLI-style solver name
/// ("auto", "local-greedy", ...). Returns false for unknown names. One
/// shared table so the three tools cannot drift.
bool ParseSolverKind(const std::string& name, SolverKind* kind);

struct SolveOptions {
  SolverKind solver = SolverKind::kAuto;
  /// Approximation ratio for kApprox (paper default 0.1).
  double epsilon = 0.1;
  LocalSearchOptions local;
  ExactOptions exact;
  /// Optional precomputed core index for the queried graph
  /// (serve/core_index.h). When set, solvers seed from it instead of
  /// re-running the O(n + m) core decomposition; results are identical.
  /// Must have been built from a graph with the same fingerprint as the
  /// one passed to Solve() — Solve TICL_CHECKs this, so an index for a
  /// different graph aborts instead of silently returning wrong
  /// communities.
  const CoreIndex* core_index = nullptr;
};

/// Returns "" when `options` is well-formed, else a diagnostic — notably
/// an epsilon outside [0, 1) (the Theorem 6 guarantee needs 1 - epsilon
/// > 0; NaN is rejected too). Tools and the serve layer gate on this to
/// fail cleanly; Solve() itself TICL_CHECK-aborts on violations, which is
/// the wrong failure mode for user-supplied flags.
std::string ValidateSolveOptions(const SolveOptions& options);

/// Runs the query. Preconditions of the selected solver are enforced with
/// TICL_CHECK (e.g. kNaive requires a monotone aggregation and no size
/// constraint); kAuto always selects a compatible solver.
SearchResult Solve(const Graph& g, const Query& query,
                   const SolveOptions& options = {});

/// The solver kAuto would select for this query.
SolverKind AutoSolverFor(const Query& query);

}  // namespace ticl

#endif  // TICL_CORE_SEARCH_H_
