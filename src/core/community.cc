#include "core/community.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace ticl {

Community MakeCommunity(const Graph& g, VertexList members,
                        const AggregationSpec& spec) {
  if (!std::is_sorted(members.begin(), members.end())) {
    std::sort(members.begin(), members.end());
  }
  Community c;
  c.influence = EvaluateOnSubset(spec, g, members);
  c.hash = HashVertexSet(members.data(), members.size());
  c.members = std::move(members);
  return c;
}

bool CommunitiesOverlap(const Community& a, const Community& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.members.size() && j < b.members.size()) {
    if (a.members[i] == b.members[j]) return true;
    if (a.members[i] < b.members[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::string CommunityToString(const Community& c, std::size_t max_members) {
  std::string out = "{";
  const std::size_t limit =
      max_members == 0 ? c.members.size()
                       : std::min(max_members, c.members.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(c.members[i]);
  }
  if (limit < c.members.size()) out += ", ...";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "} |H|=%zu f=%.6g", c.members.size(),
                c.influence);
  out += buf;
  return out;
}

}  // namespace ticl
