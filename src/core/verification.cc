#include "core/verification.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "algo/connectivity.h"
#include "util/top_r_list.h"

namespace ticl {

namespace {

std::string Describe(const char* what, std::size_t index) {
  return std::string(what) + " (community #" + std::to_string(index) + ")";
}

}  // namespace

std::string ValidateCommunity(const Graph& g, const VertexList& members,
                              VertexId k, VertexId size_limit) {
  if (members.empty()) return "community is empty";
  if (!std::is_sorted(members.begin(), members.end())) {
    return "members not sorted";
  }
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    return "duplicate members";
  }
  if (members.back() >= g.num_vertices()) return "member out of range";
  if (size_limit != 0 && members.size() > size_limit) {
    return "size limit exceeded";
  }

  // Induced minimum degree >= k.
  std::unordered_set<VertexId> in_set(members.begin(), members.end());
  for (const VertexId v : members) {
    VertexId deg = 0;
    for (const VertexId nbr : g.neighbors(v)) {
      if (in_set.contains(nbr)) ++deg;
    }
    if (deg < k) {
      return "vertex " + std::to_string(v) + " has induced degree " +
             std::to_string(deg) + " < k=" + std::to_string(k);
    }
  }

  if (!IsSubsetConnected(g, members)) return "community not connected";
  return "";
}

std::string ValidateResult(const Graph& g, const Query& query,
                           const SearchResult& result) {
  const std::string query_problem = ValidateQuery(query, g);
  if (!query_problem.empty()) return "invalid query: " + query_problem;
  if (result.communities.size() > query.r) {
    return "more than r communities returned";
  }

  std::unordered_set<std::uint64_t> hashes;
  for (std::size_t i = 0; i < result.communities.size(); ++i) {
    const Community& c = result.communities[i];
    const std::string problem =
        ValidateCommunity(g, c.members, query.k, query.size_limit);
    if (!problem.empty()) return Describe(problem.c_str(), i);

    const double recomputed =
        EvaluateOnSubset(query.aggregation, g, c.members);
    if (std::isinf(recomputed) || std::isinf(c.influence)) {
      if (recomputed != c.influence) {
        return Describe("stored influence mismatches recomputation", i);
      }
    } else {
      // Solvers may compute influence incrementally; allow a relative
      // epsilon.
      const double tolerance =
          1e-9 *
          std::max({1.0, std::fabs(recomputed), std::fabs(c.influence)});
      if (std::fabs(recomputed - c.influence) > tolerance) {
        return Describe("stored influence mismatches recomputation", i);
      }
    }

    if (!hashes.insert(c.hash).second) {
      return Describe("duplicate community in result", i);
    }
    if (i > 0) {
      const Community& prev = result.communities[i - 1];
      if (!TopRList<int>::Better(prev.influence, prev.hash, c.influence,
                                 c.hash)) {
        return Describe("result not sorted by decreasing influence", i);
      }
    }
  }

  if (query.non_overlapping) {
    for (std::size_t i = 0; i < result.communities.size(); ++i) {
      for (std::size_t j = i + 1; j < result.communities.size(); ++j) {
        if (CommunitiesOverlap(result.communities[i],
                               result.communities[j])) {
          return "TONIC result communities " + std::to_string(i) + " and " +
                 std::to_string(j) + " overlap";
        }
      }
    }
  }
  return "";
}

}  // namespace ticl
