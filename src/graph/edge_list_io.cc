#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/graph_builder.h"

namespace ticl {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool IsBlankOrComment(const std::string& line) {
  for (const char c : line) {
    if (c == '#' || c == '%') return true;  // comment
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;  // blank
}

}  // namespace

bool LoadEdgeList(const std::string& path, Graph* out, std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open edge list: " + path);

  GraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsBlankOrComment(line)) continue;
    std::istringstream fields(line);
    long long u = -1;
    long long v = -1;
    if (!(fields >> u >> v) || u < 0 || v < 0) {
      return Fail(error, "malformed edge at " + path + ":" +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  if (in.bad()) return Fail(error, "read error on " + path);
  *out = builder.Build();
  return true;
}

bool SaveEdgeList(const std::string& path, const Graph& g,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open for writing: " + path);
  out << "# ticl edge list\n";
  out << "# nodes: " << g.num_vertices() << " edges: " << g.num_edges()
      << "\n";
  const VertexId n = g.num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
  out.flush();
  if (!out) return Fail(error, "write error on " + path);
  return true;
}

bool LoadWeights(const std::string& path, Graph* g, std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open weight file: " + path);

  std::vector<Weight> weights(g->num_vertices(), 0.0);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsBlankOrComment(line)) continue;
    std::istringstream fields(line);
    long long v = -1;
    double w = 0.0;
    if (!(fields >> v >> w)) {
      return Fail(error, "malformed weight at " + path + ":" +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    if (v < 0 || static_cast<std::uint64_t>(v) >= g->num_vertices()) {
      return Fail(error, "weight for out-of-range vertex at " + path + ":" +
                             std::to_string(line_no));
    }
    if (w < 0.0) {
      return Fail(error, "negative weight at " + path + ":" +
                             std::to_string(line_no));
    }
    weights[static_cast<std::size_t>(v)] = w;
  }
  if (in.bad()) return Fail(error, "read error on " + path);
  g->SetWeights(std::move(weights));
  return true;
}

bool SaveWeights(const std::string& path, const Graph& g,
                 std::string* error) {
  if (!g.has_weights()) return Fail(error, "graph has no weights to save");
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open for writing: " + path);
  out << "# ticl vertex weights\n";
  const VertexId n = g.num_vertices();
  char buf[64];
  for (VertexId v = 0; v < n; ++v) {
    std::snprintf(buf, sizeof(buf), "%u %.17g\n", v, g.weight(v));
    out << buf;
  }
  out.flush();
  if (!out) return Fail(error, "write error on " + path);
  return true;
}

}  // namespace ticl
