// Incremental construction of Graph objects from raw edges.

#ifndef TICL_GRAPH_GRAPH_BUILDER_H_
#define TICL_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace ticl {

/// Collects edges (any order, duplicates and self-loops tolerated) and
/// normalizes them into a CSR Graph. Vertex count is max-id + 1 unless fixed
/// with SetNumVertices.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares the vertex count (ids >= n are rejected by Build).
  /// Isolated vertices up to n-1 are preserved.
  void SetNumVertices(VertexId n);

  /// Adds an undirected edge. Self-loops are dropped silently (the k-core
  /// model is simple-graph based); duplicates are merged at Build time.
  void AddEdge(VertexId u, VertexId v);

  /// Number of edge insertions so far (before dedup).
  std::size_t num_added_edges() const { return edges_.size(); }

  /// Normalizes and produces the graph. The builder is left empty.
  Graph Build();

 private:
  std::vector<Edge> edges_;
  VertexId fixed_n_ = 0;
  bool has_fixed_n_ = false;
  VertexId max_seen_id_ = 0;
  bool saw_vertex_ = false;
};

}  // namespace ticl

#endif  // TICL_GRAPH_GRAPH_BUILDER_H_
