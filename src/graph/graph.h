// Immutable vertex-weighted undirected graph in CSR (compressed sparse row)
// form. This is the substrate every algorithm in the library operates on.

#ifndef TICL_GRAPH_GRAPH_H_
#define TICL_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ticl {

/// Cheap structural identity of a graph: vertex count, adjacency length
/// (2m) and a word-wise FNV-1a hash over both CSR arrays (offsets then
/// adjacency —
/// hashing only the degree sequence would collide on degree-preserving
/// edge rewires, exactly the mutation incremental snapshots introduce).
/// Used to guard precomputed structures (CoreIndex, snapshot sections)
/// against being applied to a different graph — unlike pointer identity
/// it survives serialization and graph copies. Vertex weights are
/// deliberately excluded: the guarded structures are purely topological.
struct GraphFingerprint {
  std::uint64_t num_vertices = 0;
  std::uint64_t adjacency_len = 0;
  std::uint64_t csr_hash = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

/// Undirected, vertex-weighted graph.
///
/// The adjacency structure is immutable after construction (solvers never
/// mutate the graph; deletions are simulated with membership masks).
/// Vertex weights are assigned after construction — weighting schemes such
/// as PageRank need the finished topology first — via SetWeights().
///
/// Storage is split into an owning backend and span views: a Graph built
/// from vectors (GraphBuilder, generators, snapshot copy-loads) owns its
/// CSR arrays, while Graph::FromExternal wraps caller-owned memory — e.g.
/// a MappedSnapshot's mmap region — without copying a byte. All read
/// access goes through the same span accessors either way, so solvers are
/// oblivious to the backing. Copies are always deep (a copy is
/// self-contained even when the source was a view); moves transfer the
/// backing and leave the source empty.
class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays. offsets has n+1 entries; adjacency holds the
  /// neighbour lists back to back, each sorted ascending, no self-loops, no
  /// duplicates, and (u,v) present iff (v,u) is. Use GraphBuilder instead of
  /// calling this directly.
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adjacency);

  /// Wraps externally owned CSR storage (and optionally weights) without
  /// copying. The caller keeps the memory alive and immutable for the
  /// lifetime of the returned Graph and every Graph moved from it. The
  /// spans must satisfy the same invariants as the owning constructor;
  /// cheap ones are TICL_CHECKed here, per-edge ones (sortedness, ranges)
  /// are the caller's contract — snapshot loading validates them before
  /// calling this.
  static Graph FromExternal(std::span<const EdgeIndex> offsets,
                            std::span<const VertexId> adjacency,
                            std::span<const Weight> weights = {});

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Number of vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  /// Degree of v.
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbours of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    return adjacency_.subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  /// True if edge {u, v} exists (binary search over the shorter list).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  VertexId max_degree() const { return max_degree_; }

  /// Average degree 2m/n (0 for the empty graph).
  double average_degree() const;

  /// Structural identity (computed once at construction).
  const GraphFingerprint& fingerprint() const { return fingerprint_; }

  /// True when the CSR arrays are views over external memory (mmap) rather
  /// than heap vectors owned by this object.
  bool is_view() const {
    return !offsets_.empty() && offsets_.data() != owned_offsets_.data();
  }

  // -- Vertex weights ------------------------------------------------------

  /// Assigns one non-negative weight per vertex. Must match num_vertices().
  /// Allowed on view-backed graphs too (the weights are then the only owned
  /// array).
  void SetWeights(std::vector<Weight> weights);

  /// True once weights are present (SetWeights or external).
  bool has_weights() const { return !weights_.empty(); }

  Weight weight(VertexId v) const { return weights_[v]; }

  std::span<const Weight> weights() const { return weights_; }

  /// Sum of all vertex weights (cached when weights are installed).
  Weight total_weight() const { return total_weight_; }

  // -- Raw CSR access (read-only, for tight loops) --------------------------

  std::span<const EdgeIndex> offsets() const { return offsets_; }
  std::span<const VertexId> adjacency() const { return adjacency_; }

 private:
  /// Validates offsets invariants, computes max_degree_ and fingerprint_.
  void InitTopology();
  /// Validates non-negativity, computes total_weight_.
  void InitWeights();
  void Clear();

  // Owning backend; empty for the arrays that view external memory.
  std::vector<EdgeIndex> owned_offsets_;
  std::vector<VertexId> owned_adjacency_;
  std::vector<Weight> owned_weights_;
  // Views — the single source of truth for readers. Each points either into
  // the owned vector above or into caller-owned memory (FromExternal).
  std::span<const EdgeIndex> offsets_;
  std::span<const VertexId> adjacency_;
  std::span<const Weight> weights_;
  Weight total_weight_ = 0.0;
  VertexId max_degree_ = 0;
  GraphFingerprint fingerprint_;
};

/// Result of ExtractInducedSubgraph: the subgraph plus the id mappings.
struct InducedSubgraph {
  Graph graph;
  /// local id -> original id (size = members.size()).
  VertexList to_original;
};

/// Builds the subgraph induced by `members` (original ids, any order,
/// duplicates rejected). Weights are carried over when present. Local ids
/// follow the sorted order of `members`.
InducedSubgraph ExtractInducedSubgraph(const Graph& g,
                                       const VertexList& members);

}  // namespace ticl

#endif  // TICL_GRAPH_GRAPH_H_
