// Immutable vertex-weighted undirected graph in CSR (compressed sparse row)
// form. This is the substrate every algorithm in the library operates on.

#ifndef TICL_GRAPH_GRAPH_H_
#define TICL_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace ticl {

/// Undirected, vertex-weighted graph.
///
/// The adjacency structure is immutable after construction (solvers never
/// mutate the graph; deletions are simulated with membership masks).
/// Vertex weights are assigned after construction — weighting schemes such
/// as PageRank need the finished topology first — via SetWeights().
class Graph {
 public:
  Graph() = default;

  /// Builds from CSR arrays. offsets has n+1 entries; adjacency holds the
  /// neighbour lists back to back, each sorted ascending, no self-loops, no
  /// duplicates, and (u,v) present iff (v,u) is. Use GraphBuilder instead of
  /// calling this directly.
  Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adjacency);

  /// Number of vertices.
  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  std::uint64_t num_edges() const { return adjacency_.size() / 2; }

  /// Degree of v.
  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbours of v, sorted ascending.
  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(adjacency_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  /// True if edge {u, v} exists (binary search over the shorter list).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Maximum degree over all vertices (0 for the empty graph).
  VertexId max_degree() const { return max_degree_; }

  /// Average degree 2m/n (0 for the empty graph).
  double average_degree() const;

  // -- Vertex weights ------------------------------------------------------

  /// Assigns one non-negative weight per vertex. Must match num_vertices().
  void SetWeights(std::vector<Weight> weights);

  /// True once SetWeights has been called.
  bool has_weights() const { return !weights_.empty(); }

  Weight weight(VertexId v) const { return weights_[v]; }

  const std::vector<Weight>& weights() const { return weights_; }

  /// Sum of all vertex weights (cached by SetWeights).
  Weight total_weight() const { return total_weight_; }

  // -- Raw CSR access (read-only, for tight loops) --------------------------

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adjacency_; }

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<VertexId> adjacency_;
  std::vector<Weight> weights_;
  Weight total_weight_ = 0.0;
  VertexId max_degree_ = 0;
};

/// Result of ExtractInducedSubgraph: the subgraph plus the id mappings.
struct InducedSubgraph {
  Graph graph;
  /// local id -> original id (size = members.size()).
  VertexList to_original;
};

/// Builds the subgraph induced by `members` (original ids, any order,
/// duplicates rejected). Weights are carried over when present. Local ids
/// follow the sorted order of `members`.
InducedSubgraph ExtractInducedSubgraph(const Graph& g,
                                       const VertexList& members);

}  // namespace ticl

#endif  // TICL_GRAPH_GRAPH_H_
