#include "graph/graph_delta.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace ticl {

namespace {

/// Orientation-independent edge key (min id in the high word).
std::uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

std::string ValidateDelta(const Graph& g, const GraphDelta& delta) {
  const VertexId n = g.num_vertices();
  std::unordered_set<std::uint64_t> inserts;
  inserts.reserve(delta.insert_edges.size() * 2);
  for (const Edge& e : delta.insert_edges) {
    if (e.u >= n || e.v >= n) return "insert edge endpoint out of range";
    if (e.u == e.v) return "insert edge is a self-loop";
    if (g.HasEdge(e.u, e.v)) return "inserted edge already present";
    if (!inserts.insert(EdgeKey(e.u, e.v)).second) {
      return "duplicate edge in insert list";
    }
  }
  std::unordered_set<std::uint64_t> deletes;
  deletes.reserve(delta.delete_edges.size() * 2);
  for (const Edge& e : delta.delete_edges) {
    if (e.u >= n || e.v >= n) return "delete edge endpoint out of range";
    if (e.u == e.v) return "delete edge is a self-loop";
    if (!g.HasEdge(e.u, e.v)) return "deleted edge not present";
    const std::uint64_t key = EdgeKey(e.u, e.v);
    if (inserts.count(key) != 0) return "edge both inserted and deleted";
    if (!deletes.insert(key).second) return "duplicate edge in delete list";
  }
  if (!delta.weight_updates.empty() && !g.has_weights()) {
    return "weight update on a graph without weights";
  }
  std::unordered_set<VertexId> reweighted;
  reweighted.reserve(delta.weight_updates.size() * 2);
  for (const WeightUpdate& wu : delta.weight_updates) {
    if (wu.vertex >= n) return "weight update vertex out of range";
    if (!(wu.weight >= 0.0) || std::isinf(wu.weight)) {
      return "weight update value must be finite and non-negative";
    }
    if (!reweighted.insert(wu.vertex).second) {
      return "duplicate vertex in weight updates";
    }
  }
  return "";
}

Graph ApplyDeltaToGraph(const Graph& g, const GraphDelta& delta) {
  const std::string problem = ValidateDelta(g, delta);
  TICL_CHECK_MSG(problem.empty(), problem.c_str());
  return ApplyValidatedDelta(g, delta);
}

Graph ApplyValidatedDelta(const Graph& g, const GraphDelta& delta) {
  // Directed half-edges sorted by (source, target) let one cursor sweep
  // splice each vertex's row without per-vertex lookups.
  std::vector<std::pair<VertexId, VertexId>> ins;
  ins.reserve(delta.insert_edges.size() * 2);
  for (const Edge& e : delta.insert_edges) {
    ins.emplace_back(e.u, e.v);
    ins.emplace_back(e.v, e.u);
  }
  std::sort(ins.begin(), ins.end());
  std::vector<std::pair<VertexId, VertexId>> del;
  del.reserve(delta.delete_edges.size() * 2);
  for (const Edge& e : delta.delete_edges) {
    del.emplace_back(e.u, e.v);
    del.emplace_back(e.v, e.u);
  }
  std::sort(del.begin(), del.end());

  const VertexId n = g.num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<VertexId> adjacency;
  adjacency.reserve(g.adjacency().size() + ins.size() - del.size());
  std::size_t ip = 0;
  std::size_t dp = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::span<const VertexId> row = g.neighbors(v);
    std::size_t r = 0;
    for (;;) {
      const bool have_ins = ip < ins.size() && ins[ip].first == v;
      if (r >= row.size() && !have_ins) break;
      if (have_ins && (r >= row.size() || ins[ip].second < row[r])) {
        adjacency.push_back(ins[ip].second);
        ++ip;
        continue;
      }
      if (dp < del.size() && del[dp].first == v && del[dp].second == row[r]) {
        ++dp;  // edge removed: skip it
      } else {
        adjacency.push_back(row[r]);
      }
      ++r;
    }
    offsets[v + 1] = adjacency.size();
  }
  TICL_CHECK(ip == ins.size());
  TICL_CHECK(dp == del.size());

  Graph out(std::move(offsets), std::move(adjacency));
  if (g.has_weights()) {
    std::vector<Weight> weights(g.weights().begin(), g.weights().end());
    for (const WeightUpdate& wu : delta.weight_updates) {
      weights[wu.vertex] = wu.weight;
    }
    out.SetWeights(std::move(weights));
  }
  return out;
}

bool LoadDeltaText(const std::string& path, GraphDelta* delta,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    *error = "delta: cannot open " + path;
    return false;
  }
  GraphDelta parsed;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const char* what) {
    *error = "delta: " + path + ":" + std::to_string(line_number) + ": " +
             what;
    std::fclose(f);
    return false;
  };
  // Unbounded line reader: a fixed fgets buffer would split long lines
  // (e.g. a lengthy provenance comment) and parse the tail as a bogus
  // directive.
  const auto read_line = [&]() {
    line.clear();
    int ch;
    while ((ch = std::fgetc(f)) != EOF && ch != '\n') {
      line.push_back(static_cast<char>(ch));
    }
    return ch != EOF || !line.empty();
  };
  while (read_line()) {
    ++line_number;
    const char* p = line.c_str();
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') continue;
    unsigned long u = 0;
    unsigned long v = 0;
    double w = 0.0;
    if (*p == '+' || *p == '-') {
      if (std::sscanf(p + 1, "%lu %lu", &u, &v) != 2) {
        return fail("expected '<+|-> u v'");
      }
      if (u > kInvalidVertex || v > kInvalidVertex) {
        return fail("vertex id exceeds 32 bits");
      }
      Edge e{static_cast<VertexId>(u), static_cast<VertexId>(v)};
      if (e.u > e.v) std::swap(e.u, e.v);
      if (*p == '+') {
        parsed.insert_edges.push_back(e);
      } else {
        parsed.delete_edges.push_back(e);
      }
    } else if (*p == 'w') {
      if (std::sscanf(p + 1, "%lu %lf", &u, &w) != 2) {
        return fail("expected 'w v weight'");
      }
      if (u > kInvalidVertex) return fail("vertex id exceeds 32 bits");
      parsed.weight_updates.push_back(
          WeightUpdate{static_cast<VertexId>(u), w});
    } else {
      return fail("unknown directive (want '+', '-' or 'w')");
    }
  }
  // fgetc returns EOF for end-of-file and read errors alike; only the
  // former may produce a (complete) delta — a truncated read must not be
  // silently applied or persisted.
  if (std::ferror(f) != 0) return fail("read error");
  std::fclose(f);
  *delta = std::move(parsed);
  return true;
}

GraphDelta RandomDelta(const Graph& g, std::uint64_t seed,
                       std::size_t inserts, std::size_t deletes,
                       std::size_t weight_updates) {
  const VertexId n = g.num_vertices();
  GraphDelta delta;
  Rng rng(seed);

  if (deletes > 0) {
    std::vector<Edge> edges;
    edges.reserve(g.num_edges());
    for (VertexId v = 0; v < n; ++v) {
      for (const VertexId nbr : g.neighbors(v)) {
        if (nbr > v) edges.push_back(Edge{v, nbr});
      }
    }
    TICL_CHECK_MSG(deletes <= edges.size(),
                   "RandomDelta: more deletes than edges");
    rng.Shuffle(edges.data(), edges.size());
    delta.delete_edges.assign(edges.begin(),
                              edges.begin() + static_cast<long>(deletes));
  }

  if (inserts > 0) {
    TICL_CHECK_MSG(n >= 2, "RandomDelta: inserts need at least 2 vertices");
    const std::uint64_t capacity =
        static_cast<std::uint64_t>(n) * (n - 1) / 2 - g.num_edges();
    TICL_CHECK_MSG(inserts <= capacity,
                   "RandomDelta: more inserts than absent edges");
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(inserts * 2);
    while (delta.insert_edges.size() < inserts) {
      const auto u = static_cast<VertexId>(rng.NextBounded(n));
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v || g.HasEdge(u, v)) continue;
      if (!chosen.insert(EdgeKey(u, v)).second) continue;
      delta.insert_edges.push_back(Edge{std::min(u, v), std::max(u, v)});
    }
  }

  if (weight_updates > 0) {
    TICL_CHECK_MSG(g.has_weights(),
                   "RandomDelta: weight updates need a weighted graph");
    TICL_CHECK_MSG(weight_updates <= n,
                   "RandomDelta: more weight updates than vertices");
    Weight max_weight = 0.0;
    for (const Weight w : g.weights()) max_weight = std::max(max_weight, w);
    if (max_weight <= 0.0) max_weight = 1.0;
    std::unordered_set<VertexId> chosen;
    chosen.reserve(weight_updates * 2);
    while (delta.weight_updates.size() < weight_updates) {
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (!chosen.insert(v).second) continue;
      delta.weight_updates.push_back(
          WeightUpdate{v, rng.NextDouble() * 2.0 * max_weight});
    }
  }
  return delta;
}

}  // namespace ticl
