// Mutations over the immutable Graph: the dynamic-graph entry point.
//
// A Graph is frozen CSR — the right substrate for solvers, the wrong one
// for a deployment whose underlying network keeps evolving. GraphDelta is
// the bridge: a batch of edge insertions, edge deletions and vertex-weight
// updates expressed against a specific parent graph. Applying a delta
// produces a *new* owning Graph (the parent is untouched, so in-flight
// readers keep a consistent view), and the serve layer pairs application
// with order-based core maintenance (algo/core_maintenance.h) so the
// CoreIndex follows along without re-running the full decomposition.
//
// Deltas keep the vertex set fixed: n never changes, only edges and
// weights. Semantics are "deletes first, then inserts, then weight
// updates" — a delta may not delete and insert the same edge, so the
// order only matters conceptually.

#ifndef TICL_GRAPH_GRAPH_DELTA_H_
#define TICL_GRAPH_GRAPH_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace ticl {

/// Reassigns one vertex's influence weight.
struct WeightUpdate {
  VertexId vertex = 0;
  Weight weight = 0.0;

  friend bool operator==(const WeightUpdate&, const WeightUpdate&) = default;
};

/// A batch of mutations against one parent graph. Edges may be listed in
/// either endpoint order; (u, v) and (v, u) denote the same edge.
struct GraphDelta {
  std::vector<Edge> insert_edges;
  std::vector<Edge> delete_edges;
  std::vector<WeightUpdate> weight_updates;

  bool empty() const {
    return insert_edges.empty() && delete_edges.empty() &&
           weight_updates.empty();
  }

  /// Total mutation count (what "delta size" means in benchmarks).
  std::size_t size() const {
    return insert_edges.size() + delete_edges.size() + weight_updates.size();
  }
};

/// Returns "" when `delta` is applicable to `g`, else a diagnostic:
/// every id in range, no self-loops, inserted edges absent from `g`,
/// deleted edges present in `g`, no duplicate edge within the delta and no
/// edge both inserted and deleted, weight updates only on weighted graphs
/// with non-negative finite values and distinct vertices.
std::string ValidateDelta(const Graph& g, const GraphDelta& delta);

/// Applies a valid delta (TICL_CHECKs ValidateDelta) and returns the
/// resulting owning graph: one merge pass over the CSR arrays, weights
/// carried over with the updates applied. O(n + m + |delta| log |delta|).
Graph ApplyDeltaToGraph(const Graph& g, const GraphDelta& delta);

/// As ApplyDeltaToGraph, but trusts the caller to have already run
/// ValidateDelta against this exact graph — validation builds hash sets
/// and binary-searches every edge, which update paths that validate for
/// error reporting anyway (QueryEngine::ApplyDelta, LoadSnapshotChain)
/// should not pay twice.
Graph ApplyValidatedDelta(const Graph& g, const GraphDelta& delta);

/// Parses a text delta file. One mutation per line:
///   + u v       insert edge {u, v}
///   - u v       delete edge {u, v}
///   w v 3.25    set weight of vertex v
/// Blank lines and lines starting with '#' are skipped. Returns false and
/// sets *error (with a line number) on malformed input.
bool LoadDeltaText(const std::string& path, GraphDelta* delta,
                   std::string* error);

/// Generates a reproducible random churn delta against `g`: `deletes`
/// distinct existing edges, `inserts` distinct absent edges, and
/// `weight_updates` distinct vertex reweights (uniform in [0, 2 * current
/// max weight]; requires weights when weight_updates > 0). Used by the
/// randomized equivalence tests and bench_delta, and handy for load
/// drills against a real snapshot. Requires enough edges/non-edges to
/// satisfy the counts (TICL_CHECKed).
GraphDelta RandomDelta(const Graph& g, std::uint64_t seed,
                       std::size_t inserts, std::size_t deletes,
                       std::size_t weight_updates);

}  // namespace ticl

#endif  // TICL_GRAPH_GRAPH_DELTA_H_
