#include "graph/graph.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace ticl {

namespace {

inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/// FNV-1a over the array viewed as little-endian uint64 words (tail
/// zero-padded), chained through `h`. 8x fewer multiplies than the
/// byte-serial variant — the fingerprint is computed eagerly for every
/// Graph, including solver-internal induced subgraphs, so the constant
/// matters. Not interchangeable with the byte-serial file checksum; this
/// hash only ever meets other fingerprints.
std::uint64_t HashWords(std::uint64_t h, const void* data,
                        std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (bytes > 0) {
    std::uint64_t word = 0;
    const std::size_t take = bytes < 8 ? bytes : 8;
    std::memcpy(&word, p, take);
    h ^= word;
    h *= 0x100000001b3ULL;
    p += take;
    bytes -= take;
  }
  return h;
}

}  // namespace

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adjacency)
    : owned_offsets_(std::move(offsets)),
      owned_adjacency_(std::move(adjacency)),
      offsets_(owned_offsets_),
      adjacency_(owned_adjacency_) {
  InitTopology();
}

Graph Graph::FromExternal(std::span<const EdgeIndex> offsets,
                          std::span<const VertexId> adjacency,
                          std::span<const Weight> weights) {
  Graph g;
  g.offsets_ = offsets;
  g.adjacency_ = adjacency;
  g.InitTopology();
  if (!weights.empty()) {
    TICL_CHECK(weights.size() == g.num_vertices());
    g.weights_ = weights;
    g.InitWeights();
  }
  return g;
}

Graph::Graph(const Graph& other) { *this = other; }

Graph& Graph::operator=(const Graph& other) {
  if (this == &other) return *this;
  // Deep copy through the views: the copy is self-contained regardless of
  // whether `other` owned its storage or wrapped external memory.
  owned_offsets_.assign(other.offsets_.begin(), other.offsets_.end());
  owned_adjacency_.assign(other.adjacency_.begin(), other.adjacency_.end());
  owned_weights_.assign(other.weights_.begin(), other.weights_.end());
  offsets_ = owned_offsets_;
  adjacency_ = owned_adjacency_;
  weights_ = owned_weights_;
  total_weight_ = other.total_weight_;
  max_degree_ = other.max_degree_;
  fingerprint_ = other.fingerprint_;
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : owned_offsets_(std::move(other.owned_offsets_)),
      owned_adjacency_(std::move(other.owned_adjacency_)),
      owned_weights_(std::move(other.owned_weights_)),
      // Vector moves keep the heap buffers alive at the same addresses, so
      // spans into owned storage stay valid; spans over external memory are
      // unaffected either way.
      offsets_(other.offsets_),
      adjacency_(other.adjacency_),
      weights_(other.weights_),
      total_weight_(other.total_weight_),
      max_degree_(other.max_degree_),
      fingerprint_(other.fingerprint_) {
  other.Clear();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this == &other) return *this;
  owned_offsets_ = std::move(other.owned_offsets_);
  owned_adjacency_ = std::move(other.owned_adjacency_);
  owned_weights_ = std::move(other.owned_weights_);
  offsets_ = other.offsets_;
  adjacency_ = other.adjacency_;
  weights_ = other.weights_;
  total_weight_ = other.total_weight_;
  max_degree_ = other.max_degree_;
  fingerprint_ = other.fingerprint_;
  other.Clear();
  return *this;
}

void Graph::Clear() {
  owned_offsets_.clear();
  owned_adjacency_.clear();
  owned_weights_.clear();
  offsets_ = {};
  adjacency_ = {};
  weights_ = {};
  total_weight_ = 0.0;
  max_degree_ = 0;
  fingerprint_ = {};
}

void Graph::InitTopology() {
  TICL_CHECK(!offsets_.empty());
  TICL_CHECK(offsets_.front() == 0);
  TICL_CHECK(offsets_.back() == adjacency_.size());
  const VertexId n = num_vertices();
  max_degree_ = 0;
  for (VertexId v = 0; v < n; ++v) {
    TICL_CHECK(offsets_[v] <= offsets_[v + 1]);
    max_degree_ = std::max(max_degree_, degree(v));
  }
  fingerprint_.num_vertices = n;
  fingerprint_.adjacency_len = adjacency_.size();
  std::uint64_t h =
      HashWords(kFnvBasis, offsets_.data(), offsets_.size() * sizeof(EdgeIndex));
  fingerprint_.csr_hash =
      HashWords(h, adjacency_.data(), adjacency_.size() * sizeof(VertexId));
}

void Graph::InitWeights() {
  total_weight_ = 0.0;
  for (const Weight w : weights_) {
    TICL_CHECK_MSG(w >= 0.0, "vertex weights must be non-negative");
    total_weight_ += w;
  }
}

void Graph::SetWeights(std::vector<Weight> weights) {
  TICL_CHECK(weights.size() == num_vertices());
  owned_weights_ = std::move(weights);
  weights_ = owned_weights_;
  InitWeights();
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u == v) return false;
  // Search the shorter adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::average_degree() const {
  const VertexId n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(n);
}

InducedSubgraph ExtractInducedSubgraph(const Graph& g,
                                       const VertexList& members) {
  VertexList sorted = members;
  std::sort(sorted.begin(), sorted.end());
  TICL_CHECK_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "duplicate vertex in induced-subgraph member list");
  if (!sorted.empty()) {
    TICL_CHECK(sorted.back() < g.num_vertices());
  }

  const auto local_n = static_cast<VertexId>(sorted.size());
  // Map original -> local via binary search (member lists are usually tiny
  // relative to n, so a dense map would waste O(n) per call).
  const auto local_id = [&sorted](VertexId original) -> VertexId {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), original);
    if (it == sorted.end() || *it != original) return kInvalidVertex;
    return static_cast<VertexId>(it - sorted.begin());
  };

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(local_n) + 1, 0);
  std::vector<VertexId> adjacency;
  for (VertexId lv = 0; lv < local_n; ++lv) {
    const VertexId original = sorted[lv];
    for (const VertexId nbr : g.neighbors(original)) {
      const VertexId lnbr = local_id(nbr);
      if (lnbr != kInvalidVertex) adjacency.push_back(lnbr);
    }
    offsets[lv + 1] = adjacency.size();
  }

  InducedSubgraph out;
  out.graph = Graph(std::move(offsets), std::move(adjacency));
  out.to_original = std::move(sorted);
  if (g.has_weights()) {
    std::vector<Weight> weights(local_n);
    for (VertexId lv = 0; lv < local_n; ++lv) {
      weights[lv] = g.weight(out.to_original[lv]);
    }
    out.graph.SetWeights(std::move(weights));
  }
  return out;
}

}  // namespace ticl
