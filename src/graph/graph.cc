#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace ticl {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<VertexId> adjacency)
    : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
  TICL_CHECK(!offsets_.empty());
  TICL_CHECK(offsets_.front() == 0);
  TICL_CHECK(offsets_.back() == adjacency_.size());
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    TICL_CHECK(offsets_[v] <= offsets_[v + 1]);
    max_degree_ = std::max(max_degree_, degree(v));
  }
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u == v) return false;
  // Search the shorter adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::average_degree() const {
  const VertexId n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(adjacency_.size()) / static_cast<double>(n);
}

void Graph::SetWeights(std::vector<Weight> weights) {
  TICL_CHECK(weights.size() == num_vertices());
  total_weight_ = 0.0;
  for (const Weight w : weights) {
    TICL_CHECK_MSG(w >= 0.0, "vertex weights must be non-negative");
    total_weight_ += w;
  }
  weights_ = std::move(weights);
}

InducedSubgraph ExtractInducedSubgraph(const Graph& g,
                                       const VertexList& members) {
  VertexList sorted = members;
  std::sort(sorted.begin(), sorted.end());
  TICL_CHECK_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "duplicate vertex in induced-subgraph member list");
  if (!sorted.empty()) {
    TICL_CHECK(sorted.back() < g.num_vertices());
  }

  const auto local_n = static_cast<VertexId>(sorted.size());
  // Map original -> local via binary search (member lists are usually tiny
  // relative to n, so a dense map would waste O(n) per call).
  const auto local_id = [&sorted](VertexId original) -> VertexId {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), original);
    if (it == sorted.end() || *it != original) return kInvalidVertex;
    return static_cast<VertexId>(it - sorted.begin());
  };

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(local_n) + 1, 0);
  std::vector<VertexId> adjacency;
  for (VertexId lv = 0; lv < local_n; ++lv) {
    const VertexId original = sorted[lv];
    for (const VertexId nbr : g.neighbors(original)) {
      const VertexId lnbr = local_id(nbr);
      if (lnbr != kInvalidVertex) adjacency.push_back(lnbr);
    }
    offsets[lv + 1] = adjacency.size();
  }

  InducedSubgraph out;
  out.graph = Graph(std::move(offsets), std::move(adjacency));
  out.to_original = std::move(sorted);
  if (g.has_weights()) {
    std::vector<Weight> weights(local_n);
    for (VertexId lv = 0; lv < local_n; ++lv) {
      weights[lv] = g.weight(out.to_original[lv]);
    }
    out.graph.SetWeights(std::move(weights));
  }
  return out;
}

}  // namespace ticl
