// Fundamental graph scalar types shared by every layer.

#ifndef TICL_GRAPH_TYPES_H_
#define TICL_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace ticl {

/// Vertex identifier. 32 bits covers every dataset in the paper's class of
/// laptop-scale stand-ins while halving adjacency memory vs 64-bit ids.
using VertexId = std::uint32_t;

/// Index into the CSR adjacency array (2 * undirected edge count entries).
using EdgeIndex = std::uint64_t;

/// Vertex influence weight (PageRank value, citation index, ...).
using Weight = double;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// An undirected edge as an unordered pair (stored u < v after
/// normalization).
struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using VertexList = std::vector<VertexId>;

}  // namespace ticl

#endif  // TICL_GRAPH_TYPES_H_
