#include "graph/graph_builder.h"

#include <algorithm>

#include "util/check.h"

namespace ticl {

void GraphBuilder::SetNumVertices(VertexId n) {
  fixed_n_ = n;
  has_fixed_n_ = true;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) return;  // simple graph: ignore self-loops
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v});
  max_seen_id_ = std::max(max_seen_id_, v);
  saw_vertex_ = true;
}

Graph GraphBuilder::Build() {
  VertexId n = 0;
  if (has_fixed_n_) {
    n = fixed_n_;
    TICL_CHECK_MSG(!saw_vertex_ || max_seen_id_ < n,
                   "edge endpoint exceeds declared vertex count");
  } else if (saw_vertex_) {
    n = max_seen_id_ + 1;
  }

  // Dedup normalized edges.
  std::sort(edges_.begin(), edges_.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  // Counting sort into CSR, both directions.
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> adjacency(edges_.size() * 2);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges_) {
    adjacency[cursor[e.u]++] = e.v;
    adjacency[cursor[e.v]++] = e.u;
  }
  // Neighbour lists must be sorted for HasEdge's binary search. Each list
  // received its entries in increasing order of the *other* endpoint only
  // for the u side; sort every list to be safe.
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  edges_.clear();
  saw_vertex_ = false;
  max_seen_id_ = 0;
  has_fixed_n_ = false;
  fixed_n_ = 0;
  return Graph(std::move(offsets), std::move(adjacency));
}

}  // namespace ticl
