// Text edge-list input/output in the SNAP convention: one `u v` pair per
// line, `#`-prefixed comment lines ignored. Vertex weights travel in a
// sibling text file with one `vertex weight` pair per line.

#ifndef TICL_GRAPH_EDGE_LIST_IO_H_
#define TICL_GRAPH_EDGE_LIST_IO_H_

#include <string>

#include "graph/graph.h"

namespace ticl {

/// Parses a SNAP-style edge list. On failure returns false and describes the
/// problem in *error (first offending line included). Self-loops are
/// dropped and duplicate edges merged, matching GraphBuilder semantics.
bool LoadEdgeList(const std::string& path, Graph* out, std::string* error);

/// Writes `g` as an edge list (one normalized `u v` per line, header
/// comment with counts). Returns false on IO failure.
bool SaveEdgeList(const std::string& path, const Graph& g,
                  std::string* error);

/// Parses `vertex weight` lines into g's weights. Vertices absent from the
/// file default to 0. Fails on out-of-range ids or negative weights.
bool LoadWeights(const std::string& path, Graph* g, std::string* error);

/// Writes g's weights as `vertex weight` lines.
bool SaveWeights(const std::string& path, const Graph& g,
                 std::string* error);

}  // namespace ticl

#endif  // TICL_GRAPH_EDGE_LIST_IO_H_
