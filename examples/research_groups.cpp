// Influential research-group identification — the paper's case study
// (§VI.C, Fig. 14) on a synthetic Aminer-like co-authorship network.
//
// Five research fields, dense research groups, citation-metric weights.
// We extract the top-3 NON-OVERLAPPING 4-influential communities under
// min, avg and sum and print the member researchers, mirroring Fig. 14's
// nine panels. The qualitative story reproduces the paper's:
//   * min  surfaces groups whose *weakest* member is still strong,
//   * avg  surfaces small elite senior clusters,
//   * sum  surfaces large productive groups with more diversity.
//
// Run:  ./build/examples/research_groups

#include <cstdio>

#include "core/search.h"
#include "core/verification.h"
#include "gen/coauthor_network.h"

namespace {

void PrintCommunity(const ticl::CoauthorNetwork& net,
                    const ticl::Community& community, std::size_t rank) {
  std::printf("    top-%zu (f = %.3f, %zu researchers):\n", rank,
              community.influence, community.members.size());
  for (const ticl::VertexId v : community.members) {
    std::printf("      %-22s  %-20s w=%.0f\n", net.names[v].c_str(),
                net.field_names[net.field[v]].c_str(), net.graph.weight(v));
  }
}

}  // namespace

int main() {
  // The paper's Aminer dump is not redistributable; this generator plants
  // the same recoverable structure (see DESIGN.md §4).
  ticl::CoauthorNetworkOptions options;
  options.num_fields = 5;
  options.groups_per_field = 8;
  options.metric = ticl::CitationMetric::kHIndex;
  options.seed = 2022;
  const ticl::CoauthorNetwork net = ticl::GenerateCoauthorNetwork(options);
  std::printf("co-authorship network: %u researchers, %llu collaborations, "
              "%zu planted groups\n",
              net.graph.num_vertices(),
              static_cast<unsigned long long>(net.graph.num_edges()),
              net.group_members.size());

  const ticl::AggregationSpec specs[] = {ticl::AggregationSpec::Min(),
                                         ticl::AggregationSpec::Avg(),
                                         ticl::AggregationSpec::Sum()};
  for (const ticl::AggregationSpec& spec : specs) {
    ticl::Query query;
    query.k = 4;  // the case study's degree bound
    query.r = 3;
    query.non_overlapping = true;
    query.aggregation = spec;
    // min has an exact polynomial solver; avg and sum (size-constrained to
    // group scale) go through the paper's local search heuristic.
    if (spec.kind != ticl::Aggregation::kMin) query.size_limit = 12;

    const ticl::SearchResult result = ticl::Solve(net.graph, query);
    std::printf("\n== f = %s ==\n",
                ticl::AggregationName(spec.kind).c_str());
    for (std::size_t i = 0; i < result.communities.size(); ++i) {
      PrintCommunity(net, result.communities[i], i + 1);
    }
    const std::string problem =
        ticl::ValidateResult(net.graph, query, result);
    if (!problem.empty()) {
      std::printf("  VALIDATION FAILED: %s\n", problem.c_str());
      return 1;
    }
  }
  std::printf("\nall results validated (connected k-cores, disjoint)\n");
  return 0;
}
