// Group recommendation — the paper's second motivating application (§I).
//
// A social-network user searches for cohesive groups of similar-interest
// users to join. Interest similarity is the vertex weight; the influence
// of a group is the AVERAGE similarity of its members (the paper argues
// avg is the right aggregation here: a huge group of mildly similar users
// should not beat a tight group of very similar ones). Group sizes are
// bounded — nobody wants a 10,000-member "community".
//
// avg is NP-hard (paper Theorem 1), so this runs the paper's local search
// heuristic, greedy vs random, and also shows the non-overlapping variant
// that yields a diversified slate of suggestions.
//
// Run:  ./build/examples/group_recommendation

#include <cstdio>

#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"
#include "util/rng.h"

int main() {
  // A 20k-user power-law social graph.
  ticl::ChungLuOptions topology;
  topology.num_vertices = 20000;
  topology.target_average_degree = 12.0;
  topology.gamma = 2.3;
  topology.seed = 99;
  ticl::Graph social = ticl::GenerateChungLu(topology);

  // Interest similarity to the querying user in [0, 1): in a real system
  // this comes from an embedding model; here it is synthetic but seeded.
  {
    ticl::Rng rng(1234);
    std::vector<ticl::Weight> similarity(social.num_vertices());
    for (auto& s : similarity) s = rng.NextDouble();
    social.SetWeights(std::move(similarity));
  }
  std::printf("social graph: n=%u m=%llu\n", social.num_vertices(),
              static_cast<unsigned long long>(social.num_edges()));

  // "Suggest 5 groups of at most 12 users, each user having >= 4 friends
  // inside the group, maximizing average similarity."
  ticl::Query query;
  query.k = 4;
  query.r = 5;
  query.size_limit = 12;
  query.aggregation = ticl::AggregationSpec::Avg();

  for (const auto solver :
       {ticl::SolverKind::kLocalGreedy, ticl::SolverKind::kLocalRandom}) {
    ticl::SolveOptions options;
    options.solver = solver;
    const ticl::SearchResult result = ticl::Solve(social, query, options);
    std::printf("\n%s (%s): %.2f ms, %llu seeds\n",
                ticl::QueryToString(query).c_str(),
                ticl::SolverKindName(solver).c_str(),
                result.stats.elapsed_seconds * 1e3,
                static_cast<unsigned long long>(
                    result.stats.seeds_processed));
    for (std::size_t i = 0; i < result.communities.size(); ++i) {
      std::printf("  suggestion %zu: %s\n", i + 1,
                  ticl::CommunityToString(result.communities[i], 6).c_str());
    }
    const std::string bad = ticl::ValidateResult(social, query, result);
    if (!bad.empty()) {
      std::printf("validation FAILED: %s\n", bad.c_str());
      return 1;
    }
  }

  // Diversified slate: disjoint groups so each suggestion is genuinely new
  // (Problem 2, TONIC).
  query.non_overlapping = true;
  const ticl::SearchResult slate = ticl::Solve(social, query);
  std::printf("\nnon-overlapping slate:\n");
  for (std::size_t i = 0; i < slate.communities.size(); ++i) {
    std::printf("  suggestion %zu: %s\n", i + 1,
                ticl::CommunityToString(slate.communities[i], 6).c_str());
  }
  const std::string problem = ticl::ValidateResult(social, query, slate);
  std::printf("validation: %s\n", problem.empty() ? "OK" : problem.c_str());
  // Non-zero exit on failure so the example doubles as a smoke test.
  return problem.empty() ? 0 : 1;
}
