// Quickstart: the five-minute tour of the TICL public API.
//
//   1. build a weighted graph (here: a generated power-law network with
//      PageRank weights, the paper's experimental setup),
//   2. describe what you want as a Query (k, r, optional s, aggregation f),
//   3. call Solve() — the facade picks the right algorithm from the
//      hardness map — and read back ranked communities.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/chung_lu.h"

int main() {
  // 1. A 5000-vertex power-law graph (Chung–Lu, gamma = 2.5), weighted by
  //    PageRank with damping 0.85 — exactly how the paper weights SNAP
  //    graphs. Swap in LoadEdgeList()/LoadWeights() to use your own data.
  ticl::ChungLuOptions topology;
  topology.num_vertices = 5000;
  topology.target_average_degree = 10.0;
  topology.gamma = 2.5;
  topology.seed = 42;
  ticl::Graph graph = ticl::GenerateChungLu(topology);
  ticl::AssignWeights(&graph, ticl::WeightScheme::kPageRank);
  std::printf("graph: n=%u m=%llu avg_deg=%.2f\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.average_degree());

  // 2. "Give me the top-5 communities where everyone has >= 4 in-community
  //    collaborators, ranked by total influence."
  ticl::Query query;
  query.k = 4;
  query.r = 5;
  query.aggregation = ticl::AggregationSpec::Sum();

  // 3. Solve. For sum without a size bound this dispatches to the paper's
  //    Algorithm 2 ("Improve", exact).
  ticl::SearchResult result = ticl::Solve(graph, query);
  std::printf("\n%s -> %zu communities in %.2f ms\n",
              ticl::QueryToString(query).c_str(), result.communities.size(),
              result.stats.elapsed_seconds * 1e3);
  for (std::size_t i = 0; i < result.communities.size(); ++i) {
    const ticl::Community& c = result.communities[i];
    std::printf("  #%zu  %s\n", i + 1,
                ticl::CommunityToString(c, 8).c_str());
  }

  // Results are machine-checkable: every community is a connected k-core.
  // Exiting non-zero on failure makes this example usable as a smoke test.
  std::string problem = ticl::ValidateResult(graph, query, result);
  std::printf("\nvalidation: %s\n", problem.empty() ? "OK" : problem.c_str());
  if (!problem.empty()) return 1;

  // Variations on the same graph: a size cap makes the problem NP-hard and
  // routes to the paper's local search; avg prefers small elite groups.
  query.size_limit = 20;
  query.aggregation = ticl::AggregationSpec::Avg();
  result = ticl::Solve(graph, query);
  std::printf("\n%s -> top community %s\n",
              ticl::QueryToString(query).c_str(),
              result.communities.empty()
                  ? "(none)"
                  : ticl::CommunityToString(result.communities[0], 8).c_str());
  problem = ticl::ValidateResult(graph, query, result);
  if (!problem.empty()) {
    std::printf("validation FAILED: %s\n", problem.c_str());
    return 1;
  }
  return 0;
}
