// Engagement / downsizing — the paper's first motivating application (§I).
//
// A team's collaboration graph must shrink during a financial crisis, but
// every retained member should keep at least k collaborators (engagement,
// k-core) and the retained squad should be as strong as possible. That is
// exactly the top-1 size-constrained k-influential community problem:
// the community is who stays, everyone else is laid off.
//
// We compare three aggregation choices the paper's §I discusses for this
// scenario: sum (total strength), max (keep the single most critical
// member), and weight density (strength minus a per-head cost).
//
// Run:  ./build/examples/team_engagement

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/weights.h"
#include "core/search.h"
#include "core/verification.h"
#include "gen/barabasi_albert.h"

namespace {

/// Prints the plan; returns false (after reporting) when the result fails
/// validation, so the example exits non-zero and works as a smoke test.
bool ReportPlan(const ticl::Graph& team, const ticl::Query& query,
                const char* label, const ticl::SearchResult& result) {
  const std::string problem = ticl::ValidateResult(team, query, result);
  if (!problem.empty()) {
    std::printf("%-16s validation FAILED: %s\n", label, problem.c_str());
    return false;
  }
  if (result.communities.empty()) {
    std::printf("%-16s no feasible squad\n", label);
    return true;
  }
  const ticl::Community& keep = result.communities.front();
  double kept_ability = 0.0;
  for (const ticl::VertexId v : keep.members) kept_ability += team.weight(v);
  std::printf("%-16s keep %2zu of %u  f=%8.3f  ability kept %5.1f%%  "
              "members:",
              label, keep.members.size(), team.num_vertices(),
              keep.influence,
              100.0 * kept_ability / team.total_weight());
  for (std::size_t i = 0; i < std::min<std::size_t>(keep.members.size(), 10);
       ++i) {
    std::printf(" %u", keep.members[i]);
  }
  if (keep.members.size() > 10) std::printf(" ...");
  std::printf("\n");
  return true;
}

}  // namespace

int main() {
  // A 60-person organically grown team (preferential attachment: early
  // hires are the best-connected) with log-normal ability scores.
  ticl::Graph team = ticl::GenerateBarabasiAlbert(60, 3, 7);
  ticl::AssignWeights(&team, ticl::WeightScheme::kLogNormal, 7);
  std::printf("team: %u members, %llu collaboration edges, "
              "total ability %.1f\n\n",
              team.num_vertices(),
              static_cast<unsigned long long>(team.num_edges()),
              team.total_weight());

  // The budget allows at most 15 people; engagement requires everyone to
  // keep >= 3 collaborators.
  ticl::Query query;
  query.k = 3;
  query.r = 1;
  query.size_limit = 15;

  bool ok = true;
  query.aggregation = ticl::AggregationSpec::Sum();
  ok &= ReportPlan(team, query, "sum:", ticl::Solve(team, query));

  query.aggregation = ticl::AggregationSpec::Max();
  ok &= ReportPlan(team, query, "max:", ticl::Solve(team, query));

  // Each retained member costs 0.5 ability units per head (weight
  // density): favours smaller squads unless a member pulls their weight.
  query.aggregation = ticl::AggregationSpec::WeightDensity(0.5);
  ok &= ReportPlan(team, query, "density(0.5):", ticl::Solve(team, query));

  // Tighter budget: the squad must shrink to 8.
  query.size_limit = 8;
  query.aggregation = ticl::AggregationSpec::Sum();
  ok &= ReportPlan(team, query, "sum, s=8:", ticl::Solve(team, query));

  return ok ? 0 : 1;
}
